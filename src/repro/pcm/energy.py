"""Energy and latency accounting for scrub and demand operations.

The paper's third headline number (37.8 % scrub-energy reduction) is the sum
of four per-line costs that the proposed mechanisms shift between:

* **read** - sensing the line out of the array (cheap),
* **detect** - verifying a lightweight checksum (nearly free),
* **decode** - running the multi-bit ECC decoder (scales superlinearly with
  correction strength t),
* **write** - program-and-verify write-back (dominant, SET-limited).

:class:`OperationCosts` turns a :class:`repro.params.EnergySpec` plus a line
geometry and ECC strength into per-operation joule/second figures, and
:class:`EnergyLedger` accumulates them by category so every benchmark can
print the same breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..params import EnergySpec, LineSpec


#: Decode energy/latency grows ~t^1.3 with correction strength for serial
#: BM+Chien decoders; a gentle superlinear exponent keeps the shape without
#: pretending to circuit-level accuracy.
DECODE_SCALING_EXPONENT = 1.3


@dataclass(frozen=True)
class OperationCosts:
    """Per-operation energy (J) and latency (s) for one line geometry."""

    read_energy: float
    write_energy: float
    detect_energy: float
    decode_energy: float
    read_latency: float
    write_latency: float
    decode_latency: float
    #: Energy to re-program a single cell (partial write-back); latency is
    #: unchanged (cells program in parallel; the iterative pulse train of
    #: the slowest cell sets the line write time either way).
    write_energy_per_cell: float = 0.0

    @classmethod
    def for_line(
        cls,
        energy: EnergySpec,
        line: LineSpec,
        ecc_bits: int,
        ecc_strength: int,
    ) -> "OperationCosts":
        """Costs for a line carrying ``ecc_bits`` of check data.

        Check bits live in the same array and are read/written along with
        the data, so read/write energy covers ``data_bits + ecc_bits``.
        ``ecc_strength`` (t) scales the decoder cost; t=0 (detection-only or
        no code) makes decoding free.
        """
        if ecc_bits < 0:
            raise ValueError("ecc_bits must be >= 0")
        if ecc_strength < 0:
            raise ValueError("ecc_strength must be >= 0")
        total_bits = line.data_bits + ecc_bits
        scale = float(ecc_strength) ** DECODE_SCALING_EXPONENT if ecc_strength else 0.0
        return cls(
            read_energy=energy.read_energy_per_bit * total_bits,
            write_energy=energy.write_energy_per_bit * total_bits,
            detect_energy=energy.detect_energy_per_line,
            decode_energy=energy.decode_energy_per_line_t1 * scale,
            read_latency=energy.read_latency,
            write_latency=energy.write_latency,
            decode_latency=energy.decode_latency_t1 * scale,
            write_energy_per_cell=(
                energy.write_energy_per_bit * line.cell.bits_per_cell
            ),
        )


#: Categories tracked by the ledger, in the order benchmarks print them.
LEDGER_CATEGORIES = (
    "scrub_read",
    "scrub_detect",
    "scrub_decode",
    "scrub_write",
    "demand_read",
    "demand_write",
)


@dataclass
class EnergyLedger:
    """Counts and joules per operation category.

    The ledger is pure bookkeeping: simulators call :meth:`add` with a
    category and the per-op cost; benchmarks read :attr:`totals` and
    :meth:`breakdown`.
    """

    counts: dict[str, int] = field(
        default_factory=lambda: {cat: 0 for cat in LEDGER_CATEGORIES}
    )
    energy: dict[str, float] = field(
        default_factory=lambda: {cat: 0.0 for cat in LEDGER_CATEGORIES}
    )

    def add(self, category: str, energy_per_op: float, count: int = 1) -> None:
        """Record ``count`` operations of ``category``."""
        if category not in self.counts:
            raise KeyError(f"unknown ledger category {category!r}")
        if count < 0:
            raise ValueError("count must be >= 0")
        self.counts[category] += count
        self.energy[category] += energy_per_op * count

    def add_repeated(
        self, category: str, energy_per_op: float, count: int, repeats: int
    ) -> None:
        """Record ``repeats`` separate :meth:`add` calls of the same shape.

        Bit-identical to calling ``add(category, energy_per_op, count)``
        ``repeats`` times: the float accumulator is advanced by the same
        iterated additions rather than one fused ``repeats * count`` term,
        which would round differently.  This is what lets the fast-forward
        path charge a block of identical zero-error visits without
        perturbing the energy ledger by a single ULP.
        """
        if category not in self.counts:
            raise KeyError(f"unknown ledger category {category!r}")
        if count < 0 or repeats < 0:
            raise ValueError("count and repeats must be >= 0")
        delta = energy_per_op * count
        energy = self.energy[category]
        for _ in range(repeats):
            energy += delta
        self.energy[category] = energy
        self.counts[category] += count * repeats

    def add_sequence(
        self, category: str, energy_per_op: float, counts
    ) -> None:
        """Record one :meth:`add` per entry of ``counts``, in order.

        The batch engine's per-cohort bulk charge for categories whose
        per-visit count varies (decodes, write-backs): bit-identical to the
        scalar walk's sequence of ``add(category, energy_per_op, c)`` calls
        because the float accumulator is advanced by the same per-visit
        additions in the same order, never by one fused dot product.
        """
        if category not in self.counts:
            raise KeyError(f"unknown ledger category {category!r}")
        total = 0
        energy = self.energy[category]
        for count in counts:
            count = int(count)
            if count < 0:
                raise ValueError("counts must be >= 0")
            energy += energy_per_op * count
            total += count
        self.energy[category] = energy
        self.counts[category] += total

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger into this one."""
        for cat in LEDGER_CATEGORIES:
            self.counts[cat] += other.counts[cat]
            self.energy[cat] += other.energy[cat]

    @property
    def scrub_energy(self) -> float:
        """Total joules attributable to the scrub mechanism."""
        return sum(
            self.energy[cat] for cat in LEDGER_CATEGORIES if cat.startswith("scrub_")
        )

    @property
    def total_energy(self) -> float:
        return sum(self.energy.values())

    @property
    def scrub_writes(self) -> int:
        """Scrub-related write-back count - the paper's 24.4x metric."""
        return self.counts["scrub_write"]

    def breakdown(self) -> dict[str, float]:
        """Energy per category (copy, safe to mutate)."""
        return dict(self.energy)

    def reset(self) -> None:
        for cat in LEDGER_CATEGORIES:
            self.counts[cat] = 0
            self.energy[cat] = 0.0
