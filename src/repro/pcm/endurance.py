"""Write endurance and stuck-at hard faults.

PCM cells wear out: after ~1e8 programming cycles the heater/GST interface
degrades and the cell freezes ("stuck-at") in its last state.  Per-cell
lifetime scatters lognormally around the mean.  This is the *hard*-error
half of the soft-vs-hard trade-off the paper's adaptive scrub navigates:
every scrub write-back costs one cycle of every cell in the line, so
scrubbing too aggressively converts soft-error margin into permanent faults
that consume ECC correction budget forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..params import EnduranceSpec


@dataclass
class WearState:
    """Mutable wear bookkeeping for a population of cells.

    ``lifetime`` is fixed at draw time; ``writes`` accumulates; a cell is
    stuck once ``writes >= lifetime``.  ``stuck_symbol`` records the state
    the cell froze in (-1 while healthy).
    """

    lifetime: np.ndarray
    writes: np.ndarray
    stuck_symbol: np.ndarray

    @property
    def num_cells(self) -> int:
        return self.lifetime.shape[0]

    @property
    def stuck_mask(self) -> np.ndarray:
        return self.stuck_symbol >= 0

    @property
    def num_stuck(self) -> int:
        return int(self.stuck_mask.sum())


class EnduranceModel:
    """Draws lifetimes and applies wear.

    The lognormal is parameterized so the *mean* of the distribution equals
    ``spec.mean_writes`` (mu is shifted by -sigma^2/2 in ln space).
    """

    def __init__(self, spec: EnduranceSpec):
        self.spec = spec
        # Convert log10 sigma to natural-log sigma.
        self._sigma_ln = spec.sigma_log10 * math.log(10.0)
        self._mu_ln = math.log(spec.mean_writes) - 0.5 * self._sigma_ln**2

    def draw_lifetimes(self, num_cells: int, rng: np.random.Generator) -> np.ndarray:
        """Per-cell write lifetimes (cycles)."""
        if num_cells < 0:
            raise ValueError("num_cells must be >= 0")
        if self._sigma_ln == 0:
            return np.full(num_cells, self.spec.mean_writes)
        return rng.lognormal(self._mu_ln, self._sigma_ln, num_cells)

    def new_state(self, num_cells: int, rng: np.random.Generator) -> WearState:
        """Fresh wear state for ``num_cells`` healthy cells."""
        return WearState(
            lifetime=self.draw_lifetimes(num_cells, rng),
            writes=np.zeros(num_cells, dtype=np.float64),
            stuck_symbol=np.full(num_cells, -1, dtype=np.int8),
        )

    def apply_write(
        self,
        state: WearState,
        written_symbols: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Record one write cycle on (a mask of) cells.

        Cells whose cumulative writes reach their lifetime freeze in the
        symbol just written.  Returns a boolean array of cells that became
        stuck *during this write* (they did accept the new data - the wear-out
        mechanism is the reset of the programmed state failing on some later
        cycle - which matches the usual fail-on-next-write abstraction).
        """
        written_symbols = np.asarray(written_symbols)
        if written_symbols.shape[0] != state.num_cells:
            raise ValueError("written_symbols must cover the whole population")
        if mask is None:
            mask = np.ones(state.num_cells, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)

        healthy = mask & ~state.stuck_mask
        state.writes[healthy] += 1.0
        newly_stuck = healthy & (state.writes >= state.lifetime)
        state.stuck_symbol[newly_stuck] = written_symbols[newly_stuck]
        return newly_stuck

    @staticmethod
    def hard_error_mask(state: WearState, desired_symbols: np.ndarray) -> np.ndarray:
        """Cells whose stuck state disagrees with the data they should hold."""
        desired_symbols = np.asarray(desired_symbols)
        return state.stuck_mask & (state.stuck_symbol != desired_symbols)

    def expected_stuck_fraction(self, writes: float) -> float:
        """Closed-form P(cell stuck after ``writes`` cycles).

        The CDF of the lognormal lifetime at ``writes``; used by analytic
        soft-vs-hard trade-off curves (experiment E8).
        """
        if writes <= 0:
            return 0.0
        if self._sigma_ln == 0:
            return 1.0 if writes >= self.spec.mean_writes else 0.0
        z = (math.log(writes) - self._mu_ln) / self._sigma_ln
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
