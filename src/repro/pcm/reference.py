"""Drift-compensated (time-aware) read references.

A complementary drift countermeasure from the device literature: if the
read circuitry knows how long ago a line was written, it can slide each
read boundary upward by the *expected* drift of the level below it,

    B_L(a) = B_L + nu_bar_L * log10(a / t0)

so a mean-drifting cell stays centered in its (moving) band forever.  What
remains is the *spread*: a cell misreads upward only when its drift
exponent exceeds the tracked mean by the guard band over ``log10(a)`` -
and, the qualitatively new failure mode, a slow cell (``nu`` well below
the mean of the level beneath its lower boundary) is eventually *overtaken
by the moving reference* and misreads downward.

Costs and caveats (why this complements rather than replaces scrub):

* the controller must track per-line (in practice per-region) write ages -
  metadata and a lookup on every read;
* compensation helps only while the age estimate is right: a region-level
  age is the *oldest* line's age, so hot lines are over-compensated
  (modelled here as exact ages, the optimistic bound);
* the spread still wins eventually: errors are delayed by orders of
  magnitude, not eliminated, so scrub remains the backstop.

:class:`CompensatedSensing` exposes the same ``spec`` /
``error_probability`` / ``sample_crossing_times`` surface as
:class:`~repro.pcm.drift.DriftModel`, so every engine (analytic mixture,
population Monte Carlo, renewal) runs unmodified on top of it.
"""

from __future__ import annotations

import math

import numpy as np

from ..params import CellSpec
from .drift import (
    DriftModel,
    _truncated_normal_pdf,
    _truncnorm_upper_tail,
)


class CompensatedSensing:
    """Drift model under time-aware read references.

    Boundary ``B_L`` (between levels ``L`` and ``L+1``) moves with the
    tracked mean exponent of level ``L`` - the level whose upward drift
    that boundary guards against.
    """

    def __init__(self, spec: CellSpec | None = None, temperature_k: float | None = None):
        self.spec = spec if spec is not None else CellSpec()
        self._base = DriftModel(self.spec, temperature_k=temperature_k)
        self.acceleration = self._base.acceleration
        self.temperature_k = self._base.temperature_k

    def boundary_shift(self, boundary_index: int, elapsed: float) -> float:
        """Log-resistance shift applied to boundary ``boundary_index``."""
        if not 0 <= boundary_index < self.spec.num_levels - 1:
            raise ValueError("boundary index out of range")
        effective = elapsed * self.acceleration
        if effective <= self.spec.t0:
            return 0.0
        return self.spec.drift[boundary_index].nu_mean * math.log10(
            effective / self.spec.t0
        )

    # -- analytic error probability ----------------------------------------------

    def error_probability(self, symbol: int, elapsed: float) -> float:
        """P(cell at ``symbol`` misreads at age ``elapsed``), two-sided.

        Upward: ``(nu - nu_bar_L) * s > B_L - r0`` with ``s = log10`` age.
        Downward: ``(nu_bar_{L-1} - nu) * s > r0 - B_{L-1}``.
        The two events are disjoint for any realistic spread (they require
        ``nu`` in opposite tails), so their probabilities add.
        """
        if not 0 <= symbol < self.spec.num_levels:
            raise ValueError(f"symbol {symbol} out of range")
        if elapsed < 0:
            raise ValueError("elapsed time must be >= 0")
        effective = elapsed * self.acceleration
        if effective <= self.spec.t0:
            return 0.0
        shift = math.log10(effective / self.spec.t0)
        band = self.spec.levels[symbol]
        drift = self.spec.drift[symbol]

        grid = np.linspace(band.program_low, band.program_high, 257)
        r0_pdf = _truncated_normal_pdf(
            grid, band.program_center, self.spec.program_sigma,
            band.program_low, band.program_high,
        )

        total = np.zeros_like(grid)
        if symbol < self.spec.num_levels - 1:
            # Upward escape past the moving upper boundary.
            tracked = self.spec.drift[symbol].nu_mean
            threshold = tracked + (band.read_high - grid) / shift
            if drift.nu_sigma == 0:
                total += (drift.nu_mean > threshold).astype(float)
            else:
                total += _truncnorm_upper_tail(
                    threshold, drift.nu_mean, drift.nu_sigma
                )
        if symbol > 0:
            # Overtaken from below by the boundary tracking level L-1.
            tracked_below = self.spec.drift[symbol - 1].nu_mean
            # Misread iff nu < tracked_below - (r0 - B_{L-1}) / s.
            ceiling = tracked_below - (grid - band.read_low) / shift
            if drift.nu_sigma == 0:
                total += (drift.nu_mean < ceiling).astype(float)
            else:
                # P(nu < ceiling) for nu ~ N truncated at 0.
                total += 1.0 - _truncnorm_upper_tail(
                    ceiling, drift.nu_mean, drift.nu_sigma
                )
        integrand = r0_pdf * np.clip(total, 0.0, 1.0)
        return float(np.trapezoid(integrand, grid))

    # -- Monte-Carlo sampling ---------------------------------------------------------

    def sample_crossing_times(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-cell first-misread times under compensated sensing."""
        symbols = np.asarray(symbols)
        r0 = self._base.sample_programmed_resistance(symbols, rng)
        nu = self._base.sample_drift_exponent(symbols, rng)
        out = np.full(symbols.shape, np.inf)

        tracked = np.array([d.nu_mean for d in self.spec.drift])
        upper = np.array(
            [band.read_high for band in self.spec.levels], dtype=np.float64
        )
        lower = np.array(
            [band.read_low for band in self.spec.levels], dtype=np.float64
        )

        # Upward: relative exponent nu - tracked[L] against the margin.
        has_upper = symbols < self.spec.num_levels - 1
        relative_up = nu - tracked[symbols]
        can_up = has_upper & (relative_up > 0)
        if can_up.any():
            margin = np.maximum(upper[symbols[can_up]] - r0[can_up], 0.0)
            exponent = np.minimum(margin / relative_up[can_up], 300.0)
            out[can_up] = self.spec.t0 * np.power(10.0, exponent) / self.acceleration

        # Downward: overtaken when tracked[L-1] - nu > 0.
        has_lower = symbols > 0
        tracked_below = tracked[np.maximum(symbols - 1, 0)]
        relative_down = tracked_below - nu
        can_down = has_lower & (relative_down > 0)
        if can_down.any():
            margin = np.maximum(r0[can_down] - lower[symbols[can_down]], 0.0)
            exponent = np.minimum(margin / relative_down[can_down], 300.0)
            down_time = (
                self.spec.t0 * np.power(10.0, exponent) / self.acceleration
            )
            out[can_down] = np.minimum(out[can_down], down_time)
        return out
