"""Level coding: bits <-> MLC symbols, and resistance -> level thresholding.

Two concerns live here:

* **Gray coding.**  Drift moves a cell's resistance monotonically upward, so
  the overwhelmingly common misread is "level k read as level k+1".  With a
  Gray code, adjacent symbols differ in exactly one bit, so one drifted cell
  costs one *bit* error - which is what makes per-bit ECC strength directly
  comparable to per-cell drift error counts.  This is the standard MLC
  allocation and the one the paper assumes.

* **Thresholding.**  Mapping an analog (log-)resistance to the stored symbol
  using the read-band boundaries of the cell spec.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from ..params import CellSpec


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``.

    >>> [gray_encode(i) for i in range(4)]
    [0, 1, 3, 2]
    """
    if value < 0:
        raise ValueError("gray_encode expects a non-negative integer")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`.

    >>> [gray_decode(gray_encode(i)) for i in range(8)]
    [0, 1, 2, 3, 4, 5, 6, 7]
    """
    if code < 0:
        raise ValueError("gray_decode expects a non-negative integer")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


class LevelCoder:
    """Translate between bit patterns, MLC symbols, and resistances.

    The *symbol* is the physical level index (0 = lowest resistance); the
    *pattern* is the ``bits_per_cell``-bit user data stored in the cell.
    Patterns are assigned to symbols in Gray order so adjacent levels differ
    by one bit.
    """

    def __init__(self, spec: CellSpec):
        self.spec = spec
        self.bits_per_cell = spec.bits_per_cell
        n = spec.num_levels
        # pattern_for_symbol[s] = Gray code of s; symbol_for_pattern inverts.
        self._pattern_for_symbol = [gray_encode(s) for s in range(n)]
        self._symbol_for_pattern = [0] * n
        for symbol, pattern in enumerate(self._pattern_for_symbol):
            self._symbol_for_pattern[pattern] = symbol
        # Ascending read-band boundaries between level k and k+1.
        self._boundaries = [band.read_high for band in spec.levels[:-1]]

    # -- bit/symbol translation ------------------------------------------------

    def pattern_to_symbol(self, pattern: int) -> int:
        """Physical level that stores bit ``pattern``."""
        self._check_pattern(pattern)
        return self._symbol_for_pattern[pattern]

    def symbol_to_pattern(self, symbol: int) -> int:
        """Bit pattern represented by physical level ``symbol``."""
        self._check_symbol(symbol)
        return self._pattern_for_symbol[symbol]

    def patterns_to_symbols(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pattern_to_symbol`."""
        table = np.asarray(self._symbol_for_pattern, dtype=np.int8)
        return table[np.asarray(patterns)]

    def symbols_to_patterns(self, symbols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`symbol_to_pattern`."""
        table = np.asarray(self._pattern_for_symbol, dtype=np.int8)
        return table[np.asarray(symbols)]

    def bit_errors_between(self, pattern_a: int, pattern_b: int) -> int:
        """Hamming distance between two stored patterns.

        One drift step (symbol k -> k+1) always yields 1 here, by Gray
        construction.
        """
        self._check_pattern(pattern_a)
        self._check_pattern(pattern_b)
        return (pattern_a ^ pattern_b).bit_count()

    # -- bit packing -------------------------------------------------------------

    def bits_to_symbols(self, bits: Sequence[int]) -> np.ndarray:
        """Pack a bit sequence (MSB-first per cell) into physical symbols.

        ``len(bits)`` must be a multiple of ``bits_per_cell``.
        """
        if len(bits) % self.bits_per_cell:
            raise ValueError(
                f"bit count {len(bits)} not a multiple of {self.bits_per_cell}"
            )
        arr = np.asarray(bits, dtype=np.int8)
        if arr.size and (arr.min() < 0 or arr.max() > 1):
            raise ValueError("bits must be 0 or 1")
        grouped = arr.reshape(-1, self.bits_per_cell)
        weights = 1 << np.arange(self.bits_per_cell - 1, -1, -1)
        patterns = (grouped * weights).sum(axis=1)
        return self.patterns_to_symbols(patterns)

    def symbols_to_bits(self, symbols: np.ndarray) -> np.ndarray:
        """Unpack physical symbols back into a bit array (MSB-first)."""
        patterns = self.symbols_to_patterns(np.asarray(symbols))
        shifts = np.arange(self.bits_per_cell - 1, -1, -1)
        bits = (patterns[:, None] >> shifts[None, :]) & 1
        return bits.reshape(-1).astype(np.int8)

    # -- resistance thresholding ---------------------------------------------------

    def sense(self, log_resistance: float) -> int:
        """Map an analog log10 resistance to the symbol the sense amp reads."""
        return bisect.bisect_right(self._boundaries, log_resistance)

    def sense_many(self, log_resistances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sense`."""
        edges = np.asarray(self._boundaries)
        return np.searchsorted(edges, np.asarray(log_resistances), side="right").astype(
            np.int8
        )

    def upper_boundary(self, symbol: int) -> float:
        """Read-band upper boundary for ``symbol`` (inf for the top level)."""
        self._check_symbol(symbol)
        if symbol == self.spec.num_levels - 1:
            return float("inf")
        return self._boundaries[symbol]

    # -- helpers -------------------------------------------------------------------

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self.spec.num_levels:
            raise ValueError(
                f"symbol {symbol} out of range 0..{self.spec.num_levels - 1}"
            )

    def _check_pattern(self, pattern: int) -> None:
        if not 0 <= pattern < self.spec.num_levels:
            raise ValueError(
                f"pattern {pattern} out of range 0..{self.spec.num_levels - 1}"
            )
