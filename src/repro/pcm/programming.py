"""Iterative program-and-verify for MLC PCM writes.

MLC PCM cannot hit an intermediate resistance band in one pulse: the write
circuitry applies a partial-SET/RESET pulse, reads the cell back, and
iterates until the resistance verifies inside the target band.  The paper's
energy model (and the write-latency asymmetry every PCM paper leans on)
comes from this loop, so we model it explicitly rather than folding it into
a constant:

* each iteration narrows the spread of the achieved resistance by a fixed
  convergence factor,
* iterations stop when the cell verifies in-band (or a safety cap is hit,
  after which the cell is forced in-band and the event is counted as a
  marginal write).

The per-write iteration counts feed the energy ledger; their long-run mean
is what :class:`repro.params.EnergySpec` folds into ``write_energy_per_bit``
for the fast population engine, and the bit-exact engine uses the real loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import CellSpec


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of programming a vector of cells."""

    #: Achieved log10 resistance per cell (verified in-band).
    log_resistance: np.ndarray
    #: Program-and-verify iterations used per cell.
    iterations: np.ndarray
    #: Cells that hit the iteration cap and were forced in-band.
    forced: np.ndarray

    @property
    def total_iterations(self) -> int:
        return int(self.iterations.sum())

    @property
    def mean_iterations(self) -> float:
        if self.iterations.size == 0:
            return 0.0
        return float(self.iterations.mean())


class ProgramAndVerify:
    """Iterative write model.

    Parameters
    ----------
    spec:
        Cell specification (bands and programming precision).
    initial_sigma:
        Spread of the first pulse's landing point around the band center.
        The first pulse is coarse; 0.3 decades is a typical figure.
    convergence:
        Factor by which each subsequent corrective pulse shrinks the
        remaining error.  Must be in (0, 1).
    max_iterations:
        Safety cap; cells still out of band afterwards are clamped in-band
        and flagged ``forced``.
    """

    def __init__(
        self,
        spec: CellSpec,
        initial_sigma: float = 0.3,
        convergence: float = 0.5,
        max_iterations: int = 16,
    ):
        if initial_sigma <= 0:
            raise ValueError("initial_sigma must be positive")
        if not 0 < convergence < 1:
            raise ValueError("convergence must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.spec = spec
        self.initial_sigma = initial_sigma
        self.convergence = convergence
        self.max_iterations = max_iterations

    def program(
        self,
        symbols: np.ndarray,
        rng: np.random.Generator,
        resistance_offset: np.ndarray | None = None,
    ) -> ProgramResult:
        """Program each cell to its target symbol's band.

        ``resistance_offset`` is the static process-variation shift of each
        cell (see :mod:`repro.pcm.variation`): the verify loop compensates
        for it, but it costs extra iterations for badly-shifted cells.
        """
        symbols = np.asarray(symbols)
        n = symbols.shape[0]
        offsets = (
            np.zeros(n)
            if resistance_offset is None
            else np.asarray(resistance_offset, dtype=np.float64)
        )
        if offsets.shape != symbols.shape:
            raise ValueError("resistance_offset shape must match symbols")

        centers = np.array(
            [band.program_center for band in self.spec.levels], dtype=np.float64
        )
        lows = np.array(
            [band.program_low for band in self.spec.levels], dtype=np.float64
        )
        highs = np.array(
            [band.program_high for band in self.spec.levels], dtype=np.float64
        )
        target = centers[symbols]
        low = lows[symbols]
        high = highs[symbols]

        # First pulse: coarse landing around the (offset-shifted) target.
        achieved = target + offsets + rng.normal(0.0, self.initial_sigma, n)
        iterations = np.ones(n, dtype=np.int64)
        pending = (achieved < low) | (achieved > high)
        sigma = self.initial_sigma

        while pending.any() and iterations.max() < self.max_iterations:
            sigma *= self.convergence
            idx = np.flatnonzero(pending)
            # Corrective pulse: move toward target, residual error shrinks.
            error = achieved[idx] - target[idx]
            achieved[idx] = target[idx] + error * self.convergence + rng.normal(
                0.0, sigma, idx.size
            )
            iterations[idx] += 1
            pending[idx] = (achieved[idx] < low[idx]) | (achieved[idx] > high[idx])

        forced = pending.copy()
        if forced.any():
            idx = np.flatnonzero(forced)
            achieved[idx] = np.clip(achieved[idx], low[idx], high[idx])

        return ProgramResult(
            log_resistance=achieved, iterations=iterations, forced=forced
        )
