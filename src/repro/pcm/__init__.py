"""MLC PCM device substrate.

This package models everything below the memory controller: multi-level
resistance allocation and Gray coding (:mod:`repro.pcm.levels`), power-law
resistance drift (:mod:`repro.pcm.drift`), bit-exact cells and line arrays
(:mod:`repro.pcm.cell`, :mod:`repro.pcm.array`), iterative program-and-verify
(:mod:`repro.pcm.programming`), process variation draws
(:mod:`repro.pcm.variation`), write endurance and stuck-at hard faults
(:mod:`repro.pcm.endurance`), and the per-operation energy/latency ledger
(:mod:`repro.pcm.energy`).
"""

from __future__ import annotations

from ..params import CellSpec, DriftParams, EnduranceSpec, EnergySpec, LevelBand, LineSpec
from .drift import DriftModel
from .levels import LevelCoder
from .cell import Cell
from .array import LineArray
from .endurance import EnduranceModel
from .energy import EnergyLedger, OperationCosts

__all__ = [
    "Cell",
    "CellSpec",
    "DriftModel",
    "DriftParams",
    "EnduranceModel",
    "EnduranceSpec",
    "EnergyLedger",
    "EnergySpec",
    "LevelBand",
    "LevelCoder",
    "LineArray",
    "LineSpec",
    "OperationCosts",
]
