"""Bit-exact array of MLC lines.

:class:`LineArray` models ``num_lines`` lines of ``cells_per_line`` cells
each, with full per-cell state: achieved programmed resistance (via the real
program-and-verify loop), drawn drift exponent, static process variation,
wall-clock write time, and wear.  Reads evaluate the drift power law and
overlay stuck-at faults.

This engine is exact but O(cells) per operation, so it backs the device
validation experiments and the test suite; year-scale reliability runs use
the crossing-time population engine in :mod:`repro.sim.population`, which is
validated against this one (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import CellSpec, EnduranceSpec
from .drift import DriftModel
from .endurance import EnduranceModel, WearState
from .levels import LevelCoder
from .programming import ProgramAndVerify
from .variation import VariationSpec, draw_variation


@dataclass(frozen=True)
class ReadResult:
    """Outcome of reading one line."""

    #: Symbols the sense amps returned (drift + stuck faults applied).
    symbols: np.ndarray
    #: Symbols the line is supposed to hold.
    stored: np.ndarray
    #: Cells currently misread because of drift.
    drift_errors: np.ndarray
    #: Cells misread because they are stuck in a conflicting state.
    hard_errors: np.ndarray

    @property
    def num_drift_errors(self) -> int:
        return int(self.drift_errors.sum())

    @property
    def num_hard_errors(self) -> int:
        return int(self.hard_errors.sum())

    @property
    def num_errors(self) -> int:
        return int((self.symbols != self.stored).sum())


class LineArray:
    """Bit-exact model of a small PCM array.

    Parameters
    ----------
    num_lines, cells_per_line:
        Geometry.  64-byte lines of 2-bit cells are 256 cells per line.
    spec:
        Cell specification; defaults to the standard 4-level allocation.
    rng:
        Random generator; required for reproducibility of everything.
    temperature_k:
        Operating temperature (drift acceleration).
    variation:
        Static process-variation magnitudes.
    endurance:
        Endurance spec; pass ``None`` to disable wear-out entirely.
    """

    def __init__(
        self,
        num_lines: int,
        cells_per_line: int,
        rng: np.random.Generator,
        spec: CellSpec | None = None,
        temperature_k: float | None = None,
        variation: VariationSpec | None = None,
        endurance: EnduranceSpec | None = EnduranceSpec(),
    ):
        if num_lines <= 0 or cells_per_line <= 0:
            raise ValueError("geometry must be positive")
        self.num_lines = num_lines
        self.cells_per_line = cells_per_line
        self.spec = spec if spec is not None else CellSpec()
        self.rng = rng
        self.drift = DriftModel(self.spec, temperature_k=temperature_k)
        self.coder = LevelCoder(self.spec)
        self.programmer = ProgramAndVerify(self.spec)

        total = num_lines * cells_per_line
        self.variation = draw_variation(
            variation if variation is not None else VariationSpec(), total, rng
        )
        self.wear: WearState | None = None
        self._endurance_model: EnduranceModel | None = None
        if endurance is not None:
            self._endurance_model = EnduranceModel(endurance)
            self.wear = self._endurance_model.new_state(total, rng)

        # Per-cell state, flat [num_lines * cells_per_line].
        self.symbols = np.zeros(total, dtype=np.int8)
        self.log_r0 = np.full(total, np.nan)
        self.nu = np.zeros(total)
        self.written_at = np.full(total, np.nan)
        self._programmed = np.zeros(total, dtype=bool)

    # -- geometry ------------------------------------------------------------

    def _slice(self, line: int) -> slice:
        if not 0 <= line < self.num_lines:
            raise IndexError(f"line {line} out of range 0..{self.num_lines - 1}")
        start = line * self.cells_per_line
        return slice(start, start + self.cells_per_line)

    # -- writes --------------------------------------------------------------

    def write_line(self, line: int, symbols: np.ndarray, now: float) -> int:
        """Program a whole line at wall-clock ``now``; returns P&V iterations.

        Stuck cells ignore the pulse: their stored state stays frozen (the
        hard error surfaces at read time if the frozen state conflicts).
        """
        sl = self._slice(line)
        symbols = np.asarray(symbols, dtype=np.int8)
        if symbols.shape != (self.cells_per_line,):
            raise ValueError(
                f"expected {self.cells_per_line} symbols, got shape {symbols.shape}"
            )
        if symbols.min() < 0 or symbols.max() >= self.spec.num_levels:
            raise ValueError("symbol out of range for this cell spec")

        result = self.programmer.program(
            symbols, self.rng, resistance_offset=self.variation.resistance_offset[sl]
        )
        nu = self.drift.sample_drift_exponent(symbols, self.rng)
        nu = nu * self.variation.drift_factor[sl]

        self.symbols[sl] = symbols
        self.log_r0[sl] = result.log_resistance
        self.nu[sl] = nu
        self.written_at[sl] = now
        self._programmed[sl] = True

        if self.wear is not None and self._endurance_model is not None:
            flat_mask = np.zeros(self.symbols.shape[0], dtype=bool)
            flat_mask[sl] = True
            written = np.zeros(self.symbols.shape[0], dtype=np.int8)
            written[sl] = symbols
            self._endurance_model.apply_write(self.wear, written, flat_mask)
        return result.total_iterations

    # -- reads ---------------------------------------------------------------

    def read_line(self, line: int, now: float) -> ReadResult:
        """Sense a line at wall-clock ``now``."""
        sl = self._slice(line)
        if not self._programmed[sl].all():
            raise RuntimeError(f"line {line} read before it was written")
        elapsed = now - self.written_at[sl]
        if (elapsed < 0).any():
            raise ValueError("cannot read a line before its write time")

        # Cells in one line can have different write times only through
        # partial writes, which this model does not allow; still compute
        # per-cell to stay robust.
        resist = self.log_r0[sl].copy()
        past_t0 = elapsed * self.drift.acceleration > self.spec.t0
        if past_t0.any():
            shift = np.zeros_like(elapsed)
            shift[past_t0] = np.log10(
                elapsed[past_t0] * self.drift.acceleration / self.spec.t0
            )
            resist = resist + self.nu[sl] * shift

        sensed = self.coder.sense_many(resist)
        stored = self.symbols[sl].copy()
        drift_errors = sensed != stored

        hard_errors = np.zeros(self.cells_per_line, dtype=bool)
        if self.wear is not None:
            stuck = self.wear.stuck_mask[sl]
            if stuck.any():
                stuck_symbols = self.wear.stuck_symbol[sl]
                sensed = np.where(stuck, stuck_symbols, sensed)
                hard_errors = stuck & (stuck_symbols != stored)
                drift_errors = drift_errors & ~stuck

        return ReadResult(
            symbols=sensed.astype(np.int8),
            stored=stored,
            drift_errors=drift_errors,
            hard_errors=hard_errors,
        )

    def error_count(self, line: int, now: float) -> int:
        """Total misread cells in ``line`` at ``now``."""
        return self.read_line(line, now).num_errors

    # -- whole-array conveniences ---------------------------------------------

    def write_random(self, now: float, lines: range | None = None) -> None:
        """Fill lines with uniform random symbols (test/benchmark setup)."""
        targets = lines if lines is not None else range(self.num_lines)
        for line in targets:
            symbols = self.rng.integers(
                0, self.spec.num_levels, self.cells_per_line, dtype=np.int8
            )
            self.write_line(line, symbols, now)

    def total_errors(self, now: float) -> int:
        """Sum of misread cells across all programmed lines."""
        return sum(
            self.read_line(line, now).num_errors for line in range(self.num_lines)
        )
