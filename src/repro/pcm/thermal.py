"""Time-varying temperature: thermal profiles and effective drift age.

Constant-temperature drift is handled by a single Arrhenius acceleration
factor (:mod:`repro.pcm.drift`).  Real servers cycle: diurnal load swings,
batch jobs, seasonal setpoints.  Because drift is structural relaxation,
a varying temperature composes through the *effective age*

    age_eff(t) = integral_0^t AF(T(u)) du

where ``AF`` is the Arrhenius acceleration relative to the reference
temperature.  A cell written at wall-clock ``w`` crosses its boundary at
the wall-clock instant where the accumulated effective age since ``w``
reaches the cell's (temperature-independent) reference crossing age.

For piecewise-constant profiles ``age_eff`` is piecewise linear and
strictly increasing, so both it and its inverse are exact ``np.interp``
lookups over precomputed breakpoints - which is how the population engine
supports thermal cycling with zero per-event overhead: sample reference
crossing ages once, map through :meth:`ThermalProfile.wall_time_at`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .drift import arrhenius_acceleration


@dataclass(frozen=True)
class ThermalPhase:
    """One constant-temperature stretch of a repeating profile."""

    duration: float
    temperature_k: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if self.temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")


class ThermalProfile:
    """A repeating piecewise-constant temperature schedule.

    Parameters
    ----------
    phases:
        The cycle, e.g. ``[ThermalPhase(12h, 330), ThermalPhase(12h, 305)]``
        for a day/night server.  The profile repeats indefinitely.
    reference_temperature_k:
        Temperature the drift constants are specified at.
    activation_energy_ev:
        Arrhenius activation energy of drift.
    """

    def __init__(
        self,
        phases: list[ThermalPhase],
        reference_temperature_k: float = 300.0,
        activation_energy_ev: float = 0.2,
    ):
        if not phases:
            raise ValueError("profile needs at least one phase")
        self.phases = list(phases)
        self.reference_temperature_k = reference_temperature_k
        self.activation_energy_ev = activation_energy_ev
        self.period = sum(phase.duration for phase in phases)

        # Breakpoints over one cycle: wall time -> effective age.
        factors = [
            arrhenius_acceleration(
                phase.temperature_k, reference_temperature_k, activation_energy_ev
            )
            for phase in phases
        ]
        wall = [0.0]
        eff = [0.0]
        for phase, factor in zip(phases, factors):
            wall.append(wall[-1] + phase.duration)
            eff.append(eff[-1] + phase.duration * factor)
        self._wall = np.array(wall)
        self._eff = np.array(eff)
        #: Effective age accumulated per full cycle.
        self.effective_per_period = float(self._eff[-1])

    @classmethod
    def constant(
        cls, temperature_k: float, reference_temperature_k: float = 300.0,
        activation_energy_ev: float = 0.2,
    ) -> "ThermalProfile":
        """Degenerate single-phase profile (same as a constant model)."""
        return cls(
            [ThermalPhase(duration=86400.0, temperature_k=temperature_k)],
            reference_temperature_k=reference_temperature_k,
            activation_energy_ev=activation_energy_ev,
        )

    @property
    def mean_acceleration(self) -> float:
        """Cycle-averaged drift acceleration factor."""
        return self.effective_per_period / self.period

    # -- forward map ------------------------------------------------------------

    def effective_age_at(self, wall_time: np.ndarray) -> np.ndarray:
        """Effective (reference-temperature) age accumulated by ``wall_time``."""
        wall_time = np.asarray(wall_time, dtype=np.float64)
        if (wall_time < 0).any():
            raise ValueError("wall_time must be >= 0")
        cycles, remainder = np.divmod(wall_time, self.period)
        return cycles * self.effective_per_period + np.interp(
            remainder, self._wall, self._eff
        )

    # -- inverse map ------------------------------------------------------------------

    def wall_time_at(self, effective_age: np.ndarray) -> np.ndarray:
        """Wall-clock instant at which ``effective_age`` has accumulated.

        Inverse of :meth:`effective_age_at`; ``inf`` maps to ``inf``.
        """
        effective_age = np.asarray(effective_age, dtype=np.float64)
        if (effective_age[np.isfinite(effective_age)] < 0).any():
            raise ValueError("effective_age must be >= 0")
        out = np.full(effective_age.shape, np.inf)
        finite = np.isfinite(effective_age)
        if finite.any():
            cycles, remainder = np.divmod(
                effective_age[finite], self.effective_per_period
            )
            out[finite] = cycles * self.period + np.interp(
                remainder, self._eff, self._wall
            )
        return out

    def crossing_wall_times(
        self, written_at: np.ndarray, reference_ages: np.ndarray
    ) -> np.ndarray:
        """Wall-clock crossing instants for cells written at ``written_at``.

        ``reference_ages`` are crossing times sampled at the reference
        temperature (what :class:`repro.sim.analytic.CrossingDistribution`
        produces); broadcasting follows numpy rules, e.g. per-line write
        times against per-line-per-cell ages.
        """
        written_at = np.asarray(written_at, dtype=np.float64)
        reference_ages = np.asarray(reference_ages, dtype=np.float64)
        start_eff = self.effective_age_at(written_at)
        return self.wall_time_at(start_eff + reference_ages)
