"""Resistance drift: the power law, crossing times, and temperature.

The core physical model, taken from the device literature the paper builds
on, is

    R(t) = R0 * (t / t0) ** nu            (t >= t0)

or equivalently, in log10 space,

    r(t) = r0 + nu * log10(t / t0)

where ``r0`` is the programmed log10 resistance and ``nu`` is a per-cell
drift exponent drawn from a level-dependent Gaussian, truncated at zero
(drift only ever increases resistance).  A cell stored at level ``L`` is
misread once ``r(t)`` crosses the upper read boundary ``B_L`` of its level,
which happens at the deterministic *crossing time*

    t_cross = t0 * 10 ** ((B_L - r0) / nu)

This determinism is the engine of the whole reproduction: the Monte-Carlo
population simulator draws ``(r0, nu)`` once per cell per write, converts
them to a crossing time, and then plays scrub and demand events against
sorted crossing times instead of stepping resistance forward in time.

Temperature enters through Arrhenius acceleration of structural relaxation:
at temperature ``T`` the drift clock runs faster than at the reference
temperature by

    AF(T) = exp( (Ea / k) * (1/T_ref - 1/T) )

so wall-clock crossing times shrink by ``AF``.
"""

from __future__ import annotations

import math

import numpy as np

from .. import units
from ..params import CellSpec


def arrhenius_acceleration(
    temperature_k: float,
    reference_temperature_k: float,
    activation_energy_ev: float,
) -> float:
    """Drift-clock acceleration factor at ``temperature_k``.

    Returns 1.0 at the reference temperature, > 1 above it.

    >>> round(arrhenius_acceleration(300.0, 300.0, 0.2), 6)
    1.0
    """
    if temperature_k <= 0 or reference_temperature_k <= 0:
        raise ValueError("temperatures must be positive kelvin")
    exponent = (activation_energy_ev / units.BOLTZMANN_EV) * (
        1.0 / reference_temperature_k - 1.0 / temperature_k
    )
    return math.exp(exponent)


class DriftModel:
    """Sampling and closed-form drift math for one :class:`CellSpec`.

    All randomness flows through explicit ``numpy.random.Generator`` objects
    so experiments are reproducible from a single seed.
    """

    def __init__(self, spec: CellSpec, temperature_k: float | None = None):
        self.spec = spec
        self.temperature_k = (
            spec.reference_temperature_k if temperature_k is None else temperature_k
        )
        self.acceleration = arrhenius_acceleration(
            self.temperature_k,
            spec.reference_temperature_k,
            spec.activation_energy_ev,
        )

    # -- parameter sampling ---------------------------------------------------

    def sample_programmed_resistance(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw programmed log10 resistances for an array of symbols.

        Program-and-verify iterates until the cell lands inside the program
        band, so the distribution is a Gaussian around the band center,
        truncated to the band (implemented by redraw, which is exact).
        """
        symbols = np.asarray(symbols)
        out = np.empty(symbols.shape, dtype=np.float64)
        for level, band in enumerate(self.spec.levels):
            mask = symbols == level
            count = int(mask.sum())
            if not count:
                continue
            out[mask] = _truncated_normal(
                rng,
                mean=band.program_center,
                sigma=self.spec.program_sigma,
                low=band.program_low,
                high=band.program_high,
                size=count,
            )
        return out

    def sample_drift_exponent(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw per-cell drift exponents, truncated at zero."""
        symbols = np.asarray(symbols)
        out = np.empty(symbols.shape, dtype=np.float64)
        for level, drift in enumerate(self.spec.drift):
            mask = symbols == level
            count = int(mask.sum())
            if not count:
                continue
            if drift.nu_sigma == 0:
                out[mask] = drift.nu_mean
            else:
                out[mask] = _truncated_normal(
                    rng,
                    mean=drift.nu_mean,
                    sigma=drift.nu_sigma,
                    low=0.0,
                    high=math.inf,
                    size=count,
                )
        return out

    # -- forward evolution ------------------------------------------------------

    def resistance_at(
        self,
        r0: np.ndarray,
        nu: np.ndarray,
        elapsed: float,
    ) -> np.ndarray:
        """Log10 resistance after ``elapsed`` wall-clock seconds since write."""
        if elapsed < 0:
            raise ValueError("elapsed time must be >= 0")
        effective = elapsed * self.acceleration
        if effective <= self.spec.t0:
            # The power law is anchored at t0; before that the cell has not
            # measurably relaxed.
            return np.asarray(r0, dtype=np.float64).copy()
        shift = math.log10(effective / self.spec.t0)
        return np.asarray(r0) + np.asarray(nu) * shift

    # -- crossing times ------------------------------------------------------------

    def crossing_time(
        self,
        symbols: np.ndarray,
        r0: np.ndarray,
        nu: np.ndarray,
    ) -> np.ndarray:
        """Wall-clock seconds after write at which each cell misreads.

        Cells in the top level, or with ``nu == 0``, never cross: they get
        ``inf``.  The returned times fold in the Arrhenius acceleration, so
        they are directly comparable to simulation wall-clock.
        """
        symbols = np.asarray(symbols)
        r0 = np.asarray(r0, dtype=np.float64)
        nu = np.asarray(nu, dtype=np.float64)
        boundaries = np.array(
            [band.read_high for band in self.spec.levels], dtype=np.float64
        )
        boundaries[-1] = np.inf
        upper = boundaries[symbols]

        out = np.full(symbols.shape, np.inf, dtype=np.float64)
        finite = np.isfinite(upper) & (nu > 0)
        if finite.any():
            margin = upper[finite] - r0[finite]
            # margin <= 0 would mean the cell was programmed outside its read
            # band, which program-and-verify forbids; guard anyway.
            margin = np.maximum(margin, 0.0)
            exponent = margin / nu[finite]
            # Cap the exponent so 10**x cannot overflow: beyond ~1e300 s the
            # cell is immortal for any practical horizon.
            exponent = np.minimum(exponent, 300.0)
            out[finite] = self.spec.t0 * np.power(10.0, exponent) / self.acceleration
        return out

    def sample_crossing_times(
        self, symbols: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw (r0, nu) for freshly-written cells and return crossing times.

        This is the one-call path the population engine uses on every line
        (re)write.
        """
        r0 = self.sample_programmed_resistance(symbols, rng)
        nu = self.sample_drift_exponent(symbols, rng)
        return self.crossing_time(symbols, r0, nu)

    # -- analytic error probability ---------------------------------------------

    def error_probability(self, symbol: int, elapsed: float) -> float:
        """Closed-form P(cell at ``symbol`` misreads within ``elapsed`` s).

        Integrates the truncated-Gaussian ``r0`` against the Gaussian ``nu``:
        the cell errs iff ``nu > (B - r0) / log10(t_eff / t0)``.  Used to
        validate the Monte-Carlo engine (experiment E2) and for the fast
        analytic UE model.
        """
        if not 0 <= symbol < self.spec.num_levels:
            raise ValueError(f"symbol {symbol} out of range")
        if elapsed < 0:
            raise ValueError("elapsed time must be >= 0")
        if symbol == self.spec.num_levels - 1:
            return 0.0
        effective = elapsed * self.acceleration
        if effective <= self.spec.t0:
            return 0.0
        shift = math.log10(effective / self.spec.t0)
        band = self.spec.levels[symbol]
        drift = self.spec.drift[symbol]
        boundary = band.read_high

        # Numerical integration over the truncated-normal r0 distribution.
        # 257-point Simpson over the program band is far more than enough for
        # the smooth integrand.
        grid = np.linspace(band.program_low, band.program_high, 257)
        r0_pdf = _truncated_normal_pdf(
            grid, band.program_center, self.spec.program_sigma,
            band.program_low, band.program_high,
        )
        threshold = (boundary - grid) / shift
        if drift.nu_sigma == 0:
            err_given_r0 = (threshold < drift.nu_mean).astype(float)
        else:
            # P(nu > threshold) under N(mean, sigma) truncated at 0.
            err_given_r0 = _truncnorm_upper_tail(
                threshold, drift.nu_mean, drift.nu_sigma
            )
        integrand = r0_pdf * err_given_r0
        return float(np.trapezoid(integrand, grid))


# ---------------------------------------------------------------------------
# Truncated-normal helpers
# ---------------------------------------------------------------------------


def _truncated_normal(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    low: float,
    high: float,
    size: int,
) -> np.ndarray:
    """Exact truncated-normal sampling by redraw (rejection)."""
    if sigma == 0:
        if not low <= mean <= high:
            raise ValueError("degenerate distribution outside truncation bounds")
        return np.full(size, mean)
    out = rng.normal(mean, sigma, size)
    bad = (out < low) | (out > high)
    # Rejection loop: the acceptance probability in every use here is large
    # (program band is +-2 sigma; nu truncation at 0 is >2.5 sigma away), so
    # this converges in a couple of rounds.
    while bad.any():
        out[bad] = rng.normal(mean, sigma, int(bad.sum()))
        bad = (out < low) | (out > high)
    return out


def _phi(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF."""
    from math import sqrt

    return 0.5 * (1.0 + _erf(np.asarray(x) / sqrt(2.0)))


def _erf(x: np.ndarray) -> np.ndarray:
    # numpy lacks erf outside scipy; scipy is available per the environment,
    # but keep the dependency local so repro.pcm works standalone.
    try:
        from scipy.special import erf as _scipy_erf

        return _scipy_erf(x)
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return np.vectorize(math.erf)(x)


def _truncated_normal_pdf(
    x: np.ndarray, mean: float, sigma: float, low: float, high: float
) -> np.ndarray:
    """PDF of N(mean, sigma) truncated to [low, high], evaluated on ``x``."""
    if sigma == 0:
        raise ValueError("degenerate truncated normal has no density")
    z = (np.asarray(x) - mean) / sigma
    pdf = np.exp(-0.5 * z * z) / (sigma * math.sqrt(2 * math.pi))
    mass = float(_phi(np.array([(high - mean) / sigma]))[0]) - float(
        _phi(np.array([(low - mean) / sigma]))[0]
    )
    if mass <= 0:
        raise ValueError("truncation interval has zero probability mass")
    return pdf / mass


def _truncnorm_upper_tail(
    threshold: np.ndarray, mean: float, sigma: float
) -> np.ndarray:
    """P(X > threshold) for X ~ N(mean, sigma) truncated at 0 from below."""
    threshold = np.asarray(threshold, dtype=np.float64)
    z_zero = (0.0 - mean) / sigma
    mass = 1.0 - float(_phi(np.array([z_zero]))[0])
    z = (threshold - mean) / sigma
    raw_tail = 1.0 - _phi(z)
    # For thresholds below 0 the truncated variable always exceeds them.
    tail = np.where(threshold <= 0.0, 1.0, raw_tail / mass)
    return np.clip(tail, 0.0, 1.0)
