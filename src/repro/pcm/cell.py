"""A single bit-exact MLC PCM cell.

:class:`Cell` is the pedagogical unit model - examples and device-level
tests use it to show one cell drifting across a read boundary.  Bulk
simulation uses :class:`repro.pcm.array.LineArray` (vectorized) or the
population engine (:mod:`repro.sim.population`) instead.
"""

from __future__ import annotations

import numpy as np

from ..params import CellSpec
from .drift import DriftModel
from .levels import LevelCoder


class Cell:
    """One multi-level cell with explicit programmed state and drift.

    The cell tracks the last programmed symbol, the achieved log-resistance,
    its drawn drift exponent, and the wall-clock write time.  Reads evaluate
    the power law at the requested time and threshold the result.
    """

    def __init__(
        self,
        spec: CellSpec | None = None,
        rng: np.random.Generator | None = None,
        temperature_k: float | None = None,
    ):
        self.spec = spec if spec is not None else CellSpec()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.drift = DriftModel(self.spec, temperature_k=temperature_k)
        self.coder = LevelCoder(self.spec)
        self.symbol: int | None = None
        self.log_r0: float | None = None
        self.nu: float | None = None
        self.written_at: float | None = None
        self.write_count = 0

    @property
    def is_programmed(self) -> bool:
        return self.symbol is not None

    def write(self, symbol: int, now: float = 0.0) -> None:
        """Program the cell to ``symbol`` at wall-clock ``now`` seconds."""
        if not 0 <= symbol < self.spec.num_levels:
            raise ValueError(f"symbol {symbol} out of range")
        if self.written_at is not None and now < self.written_at:
            raise ValueError("time must not run backwards")
        symbols = np.array([symbol])
        self.log_r0 = float(
            self.drift.sample_programmed_resistance(symbols, self.rng)[0]
        )
        self.nu = float(self.drift.sample_drift_exponent(symbols, self.rng)[0])
        self.symbol = symbol
        self.written_at = now
        self.write_count += 1

    def resistance_at(self, now: float) -> float:
        """Log10 resistance at wall-clock ``now``."""
        self._require_programmed()
        elapsed = now - self.written_at
        if elapsed < 0:
            raise ValueError("cannot read before the cell was written")
        return float(
            self.drift.resistance_at(
                np.array([self.log_r0]), np.array([self.nu]), elapsed
            )[0]
        )

    def read(self, now: float) -> int:
        """Symbol the sense amplifier returns at wall-clock ``now``."""
        return self.coder.sense(self.resistance_at(now))

    def has_drift_error(self, now: float) -> bool:
        """True if the cell currently misreads."""
        self._require_programmed()
        return self.read(now) != self.symbol

    def crossing_time(self) -> float:
        """Wall-clock time at which this cell will first misread (inf if never)."""
        self._require_programmed()
        relative = float(
            self.drift.crossing_time(
                np.array([self.symbol]),
                np.array([self.log_r0]),
                np.array([self.nu]),
            )[0]
        )
        return self.written_at + relative

    def _require_programmed(self) -> None:
        if not self.is_programmed:
            raise RuntimeError("cell has never been written")
