"""Generalized MLC construction: build cell specs for any bits-per-cell.

The default :class:`repro.params.CellSpec` is the paper's 2-bit/4-level
cell.  Density scaling is the whole reason MLC exists - and the whole
reason drift hurts: packing more levels into the same resistance window
shrinks every guard band while the drift exponents stay put.  This module
builds consistent N-level allocations so that density-vs-reliability
studies (benchmark A7) compare like for like:

* levels are spaced evenly in log-resistance across a fixed window,
* each level's read band spans to the midpoint toward its neighbours,
* program bands occupy a fixed fraction of the read band around its
  center (narrower bands = more program-and-verify iterations, captured
  by :mod:`repro.pcm.programming`),
* drift exponents interpolate the crystalline->amorphous physics: the
  mean drift exponent rises with the amorphous fraction, which grows with
  the level's target resistance.
"""

from __future__ import annotations

import numpy as np

from ..params import CellSpec, DriftParams, LevelBand


def make_mlc_spec(
    bits_per_cell: int = 2,
    window_low: float = 3.1,
    window_high: float = 6.1,
    program_band_fraction: float = 0.25,
    nu_crystalline: float = 0.001,
    nu_amorphous: float = 0.10,
    nu_sigma_ratio: float = 0.4,
    program_sigma: float = 0.05,
) -> CellSpec:
    """Build an N-level cell spec over a log-resistance window.

    Parameters
    ----------
    bits_per_cell:
        1 (SLC) to 4; the level count is ``2 ** bits_per_cell``.
    window_low, window_high:
        Log10 resistance of the lowest and highest level centers.  The
        default 3-decade window matches the stock 4-level allocation.
    program_band_fraction:
        Fraction of each level's read band the verify loop targets.
    nu_crystalline, nu_amorphous:
        Mean drift exponents of the extreme levels; intermediate levels
        interpolate linearly in level index (amorphous fraction).
    nu_sigma_ratio:
        sigma_nu / mean_nu for every level.
    program_sigma:
        Programming noise (see :class:`repro.params.CellSpec`).

    >>> make_mlc_spec(3).num_levels
    8
    """
    if not 1 <= bits_per_cell <= 4:
        raise ValueError("bits_per_cell must be in 1..4")
    if window_high <= window_low:
        raise ValueError("window_high must exceed window_low")
    if not 0 < program_band_fraction <= 1:
        raise ValueError("program_band_fraction must be in (0, 1]")
    if nu_crystalline < 0 or nu_amorphous < nu_crystalline:
        raise ValueError("need 0 <= nu_crystalline <= nu_amorphous")
    if nu_sigma_ratio < 0:
        raise ValueError("nu_sigma_ratio must be >= 0")

    num_levels = 1 << bits_per_cell
    centers = np.linspace(window_low, window_high, num_levels)
    # Read-band edges at midpoints between neighbouring centers; the
    # bottom and top bands extend outward generously.
    midpoints = (centers[:-1] + centers[1:]) / 2
    read_lows = np.concatenate([[window_low - 4.0], midpoints])
    read_highs = np.concatenate([midpoints, [window_high + 6.0]])

    levels = []
    drift = []
    for symbol in range(num_levels):
        center = centers[symbol]
        # Program band: a centered slice of the read band (the top band's
        # effective width uses the same pitch as the others so SLC/MLC
        # verify effort is comparable).
        pitch = (
            (read_highs[symbol] - read_lows[symbol])
            if 0 < symbol < num_levels - 1
            else (centers[1] - centers[0] if num_levels > 1 else 1.0)
        )
        half = pitch * program_band_fraction / 2
        levels.append(
            LevelBand(
                name=f"L{symbol}",
                symbol=symbol,
                program_low=center - half,
                program_high=center + half,
                read_low=float(read_lows[symbol]),
                read_high=float(read_highs[symbol]),
            )
        )
        fraction = symbol / (num_levels - 1) if num_levels > 1 else 0.0
        nu_mean = nu_crystalline + fraction * (nu_amorphous - nu_crystalline)
        drift.append(DriftParams(nu_mean=nu_mean, nu_sigma=nu_mean * nu_sigma_ratio))

    return CellSpec(
        levels=tuple(levels),
        drift=tuple(drift),
        program_sigma=program_sigma,
    )
