"""Process variation: static per-cell parameter perturbations.

Cell-to-cell fabrication variation perturbs two things the drift model
cares about:

* a static log-resistance offset (geometry/composition variation shifts the
  whole R-vs-state curve of a cell), and
* a multiplicative factor on the cell's drift-exponent mean (local
  composition fluctuation changes how fast the amorphous phase relaxes).

The bit-exact array draws these once per cell at construction; the
population Monte-Carlo engine folds the same variances into its per-write
draws (variation there is absorbed into the sigma of ``r0`` and ``nu``,
which is statistically equivalent for population-level metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VariationSpec:
    """Magnitudes of static process variation.

    The defaults are small relative to band widths, matching a mature
    process; experiments can widen them to study marginal devices.
    """

    #: Std-dev of the per-cell static log10-resistance offset.
    resistance_offset_sigma: float = 0.02
    #: Std-dev of the multiplicative drift-exponent factor (mean 1.0).
    drift_factor_sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.resistance_offset_sigma < 0:
            raise ValueError("resistance_offset_sigma must be >= 0")
        if self.drift_factor_sigma < 0:
            raise ValueError("drift_factor_sigma must be >= 0")


@dataclass(frozen=True)
class CellVariation:
    """Static variation drawn for a population of cells."""

    resistance_offset: np.ndarray
    drift_factor: np.ndarray

    @property
    def num_cells(self) -> int:
        return self.resistance_offset.shape[0]


def draw_variation(
    spec: VariationSpec, num_cells: int, rng: np.random.Generator
) -> CellVariation:
    """Draw static per-cell variation for ``num_cells`` cells.

    Drift factors are truncated below at 0.1 so no cell is drift-immune by
    fabrication accident - the physical lower bound is "slow", not "frozen".
    """
    if num_cells < 0:
        raise ValueError("num_cells must be >= 0")
    offsets = rng.normal(0.0, spec.resistance_offset_sigma, num_cells)
    factors = rng.normal(1.0, spec.drift_factor_sigma, num_cells)
    factors = np.maximum(factors, 0.1)
    return CellVariation(resistance_offset=offsets, drift_factor=factors)
