"""Command-line experiment driver.

Installed as ``pcm-scrub``; also runnable as ``python -m repro``.

Subcommands::

    pcm-scrub drift-curve                 # per-level error probability vs time
    pcm-scrub compare --interval 3600     # all mechanisms head-to-head
    pcm-scrub headline                    # the abstract's three numbers
    pcm-scrub sweep --policy basic ...    # UE/writes/energy vs interval
    pcm-scrub trace --policy combined ... # full-telemetry run -> trace.jsonl
    pcm-scrub verify --quick              # invariants + metamorphic + models
    pcm-scrub fleet campaign.json         # datacenter campaign -> FIT report

Every command prints a deterministic fixed-width table; ``--seed``,
``--lines``, ``--horizon`` control the Monte-Carlo configuration.
``sweep`` and ``headline`` accept ``--timeseries``/``--profile`` to collect
telemetry (see :mod:`repro.obs`) without changing any simulated result.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import units
from .analysis.tables import format_series, format_table
from .core import (
    adaptive_scrub,
    basic_scrub,
    combined_scrub,
    light_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from .analysis.sweeps import provision_grid, sweep_policies
from .obs import ObsConfig, merge_profiles, write_trace
from .params import CellSpec
from .pcm.drift import DriftModel
from .sim import RunSpec, SimulationConfig, default_jobs, run_experiment, run_many
from .sim.parallel import POLICY_FACTORIES, parallel_map
from .workloads import uniform_rates, zipf_rates

#: Time-series samples taken over the horizon when ``--timeseries`` or the
#: ``trace`` subcommand's default sampling is in effect.
DEFAULT_SAMPLES = 64


def _add_screen_arguments(parser: argparse.ArgumentParser) -> None:
    """The surrogate-screening flag group shared by ``fleet`` and ``submit``."""
    group = parser.add_argument_group(
        "screening",
        "classify devices through the exact finite-horizon renewal "
        "surrogate and Monte-Carlo only the uncertain ones "
        "(docs/screening.md)",
    )
    group.add_argument(
        "--screen", action="store_true",
        help="enable surrogate screening (requires --fit-limit and/or "
        "--availability-limit)",
    )
    group.add_argument(
        "--fit-limit", type=float, default=None, metavar="FIT",
        help="per-device budget on capacity-scaled FIT",
    )
    group.add_argument(
        "--availability-limit", type=float, default=None, metavar="P",
        help="per-device floor on the probability of a UE-free horizon",
    )
    group.add_argument(
        "--screen-confidence", type=float, default=0.95, metavar="C",
        help="central coverage of the Poisson predictive interval "
        "(default 0.95)",
    )
    group.add_argument(
        "--availability-margin", type=float, default=0.02, metavar="M",
        help="band around --availability-limit that escalates to MC "
        "(default 0.02)",
    )


def _screen_constraints(args: argparse.Namespace):
    """Build ScreenConstraints from CLI flags, or None when not screening."""
    if not args.screen:
        if args.fit_limit is not None or args.availability_limit is not None:
            raise SystemExit(
                "pcm-scrub: --fit-limit/--availability-limit require --screen"
            )
        return None
    from .screen import ScreenConstraints, ScreenError

    try:
        return ScreenConstraints(
            fit_limit=args.fit_limit,
            min_availability=args.availability_limit,
            confidence=args.screen_confidence,
            availability_margin=args.availability_margin,
        )
    except ScreenError as error:
        raise SystemExit(f"pcm-scrub: {error}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pcm-scrub",
        description="Drift-aware scrub mechanisms for MLC PCM (HPCA 2012 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--lines", type=int, default=8192, help="Monte-Carlo lines")
    parser.add_argument(
        "--horizon-days", type=float, default=14.0, help="simulated days"
    )
    parser.add_argument(
        "--temperature", type=float, default=300.0, help="kelvin"
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sweeps, campaigns, and surrogate "
        "screening/provisioning (default: CPU-count aware)",
    )
    parser.add_argument(
        "--no-fast-forward", action="store_true",
        help="run the naive per-visit event loop instead of fast-forwarding "
        "quiescent visits (results are bit-identical either way)",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "batch"), default="scalar",
        help="visit engine: 'scalar' walks one region per event, 'batch' "
        "evaluates whole scheduler cohorts / device rounds as array ops "
        "(see docs/performance.md for when results are bit-identical)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    drift = sub.add_parser("drift-curve", help="per-level error probability vs time")
    drift.add_argument("--points", type=int, default=9)

    compare = sub.add_parser("compare", help="all mechanisms at one interval")
    compare.add_argument("--interval", type=float, default=units.HOUR)
    compare.add_argument("--strength", type=int, default=4)
    compare.add_argument(
        "--workload", choices=["idle", "uniform", "zipf"], default="idle"
    )
    compare.add_argument("--write-rate", type=float, default=100.0)
    compare.add_argument(
        "--compensated", action="store_true",
        help="use drift-compensated (time-aware) read references",
    )

    headline = sub.add_parser("headline", help="combined vs basic, abstract style")
    headline.add_argument("--interval", type=float, default=units.HOUR)
    _add_obs_flags(headline)

    sweep = sub.add_parser("sweep", help="one policy across intervals")
    sweep.add_argument("--policy", choices=sorted(POLICY_FACTORIES), default="basic")
    sweep.add_argument("--strength", type=int, default=4)
    sweep.add_argument(
        "--intervals",
        type=float,
        nargs="+",
        default=[0.25 * units.HOUR, 0.5 * units.HOUR, units.HOUR, 2 * units.HOUR],
    )
    _add_obs_flags(sweep)

    trace = sub.add_parser(
        "trace",
        help="run one experiment with full telemetry and write the artifacts",
    )
    trace.add_argument(
        "--policy", choices=sorted(POLICY_FACTORIES), default="combined"
    )
    trace.add_argument("--interval", type=float, default=units.HOUR)
    trace.add_argument("--strength", type=int, default=4)
    trace.add_argument(
        "--workload", choices=["idle", "uniform", "zipf"], default="idle"
    )
    trace.add_argument("--write-rate", type=float, default=100.0)
    trace.add_argument(
        "--samples", type=int, default=DEFAULT_SAMPLES,
        help="time-series samples over the horizon",
    )
    trace.add_argument(
        "--out", default="obs-out",
        help="output directory for trace.jsonl / timeseries.json",
    )

    provision = sub.add_parser(
        "provision",
        help="reliability each ECC strength buys at a bank-time budget",
    )
    provision.add_argument(
        "--budget", type=float, nargs="+", default=[1e-3, 1e-4, 1e-5],
        help="bank-time fractions granted to scrub",
    )
    provision.add_argument(
        "--lines-per-bank", type=int, default=1 << 22,
        help="bank capacity in 64B lines",
    )
    provision.add_argument(
        "--strengths", type=int, nargs="+", default=[1, 2, 4, 8]
    )

    lifetime = sub.add_parser(
        "lifetime", help="projected years to wear-out per scrub configuration"
    )
    lifetime.add_argument("--interval", type=float, default=units.HOUR)
    lifetime.add_argument(
        "--demand-writes-per-hour", type=float, default=1.0,
        help="demand writes per line per hour",
    )
    lifetime.add_argument(
        "--endurance", type=float, default=1e8, help="mean cell endurance"
    )

    export = sub.add_parser(
        "export", help="run the mechanism comparison and write CSV/JSONL"
    )
    export.add_argument("--interval", type=float, default=units.HOUR)
    export.add_argument("--strength", type=int, default=4)
    export.add_argument("output", help="path ending in .csv or .jsonl")

    verify = sub.add_parser(
        "verify",
        help="run the verification harness: invariants, metamorphic "
        "properties, model equivalence",
    )
    verify.add_argument(
        "--quick", action="store_true",
        help="reduced grids and populations (CI-sized, ~1 min)",
    )
    verify.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full report as JSON",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a datacenter-scale campaign over a heterogeneous device "
        "fleet (spec file in, FIT/availability report out)",
    )
    fleet.add_argument("spec", help="JSON campaign spec (see docs/fleet.md)")
    fleet.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="durable JSONL journal; completed devices survive a kill",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="continue an existing checkpoint (validates the spec hash)",
    )
    fleet.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="checkpoint and exit after N devices this invocation",
    )
    fleet.add_argument(
        "--until", type=int, default=None, metavar="N",
        help="incremental stop: complete devices with index < N, journal "
        "the rest as pending, exit without aggregating",
    )
    fleet.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the fleet report as JSON",
    )
    _add_screen_arguments(fleet)

    submit = sub.add_parser(
        "submit",
        help="create a campaign directory for the sharded service "
        "(spec + deterministic shard plan; workers drain it)",
    )
    submit.add_argument("spec", help="JSON campaign spec (see docs/fleet.md)")
    submit.add_argument("root", help="campaign directory to create")
    submit.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard count (default: CPU-count aware)",
    )
    _add_screen_arguments(submit)

    serve = sub.add_parser(
        "serve",
        help="run a submitted campaign under a supervised worker pool "
        "(crashed workers are repaired and replaced)",
    )
    serve.add_argument("root", help="campaign directory from 'submit'")
    serve.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    serve.add_argument(
        "--max-restarts", type=int, default=3,
        help="replacement workers before giving up",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat age after which a shard lease is presumed dead",
    )
    serve.add_argument(
        "--snapshot-budget", type=int, default=256, metavar="EVENTS",
        help="engine events between mid-horizon device snapshots",
    )
    serve.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the final fleet report as JSON",
    )

    status = sub.add_parser(
        "status",
        help="one streaming progress snapshot of a campaign directory "
        "(shard states + partial fleet report)",
    )
    status.add_argument("root", help="campaign directory")
    status.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
    )
    status.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full status (including the partial report) as JSON",
    )

    watch = sub.add_parser(
        "watch",
        help="poll a campaign until it finishes, streaming progress lines",
    )
    watch.add_argument("root", help="campaign directory")
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
    )
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit nonzero) after this long",
    )
    watch.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
    )

    repair = sub.add_parser(
        "repair",
        help="re-queue dead workers' shards (break stale leases) and "
        "sweep snapshots of already-journaled devices",
    )
    repair.add_argument("root", help="campaign directory")
    repair.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
    )

    provision_fleet = sub.add_parser(
        "provision-fleet",
        help="search per-lot scrub assignments: candidate grid in, "
        "cost/energy/carbon Pareto frontiers and a recommended per-lot "
        "spec out (see docs/provisioning.md)",
    )
    provision_fleet.add_argument(
        "spec", help="JSON campaign spec (see docs/fleet.md)"
    )
    provision_fleet.add_argument(
        "--policies", nargs="+", default=["threshold"],
        help="candidate scrub policies (POLICY_FACTORIES names)",
    )
    provision_fleet.add_argument(
        "--intervals", type=float, nargs="+",
        default=[1800.0, 3600.0, 7200.0],
        help="candidate scrub intervals, seconds",
    )
    provision_fleet.add_argument(
        "--strengths", type=int, nargs="+", default=[2, 4],
        help="candidate ECC correction strengths t",
    )
    provision_fleet.add_argument(
        "--thresholds", type=int, nargs="+", default=None,
        help="candidate write-back thresholds (default: per-strength auto)",
    )
    provision_fleet.add_argument(
        "--with-detector", action="store_true",
        help="keep the CRC detector on threshold candidates (forces MC)",
    )
    provision_fleet.add_argument(
        "--fit-limit", type=float, default=None, metavar="FIT",
        help="per-device capacity-scaled FIT budget; violating candidates "
        "are infeasible and excluded from the frontier",
    )
    provision_fleet.add_argument(
        "--confidence", type=float, default=0.95,
        help="Poisson predictive interval coverage for the FIT screen",
    )
    provision_fleet.add_argument(
        "--exhaustive", action="store_true",
        help="Monte-Carlo every candidate on every device (ground truth; "
        "the default surrogate-first search is far cheaper)",
    )
    provision_fleet.add_argument(
        "--dollars-per-gib", type=float, default=4.0,
        help="raw array cost, $/GiB of stored bits",
    )
    provision_fleet.add_argument(
        "--carbon-intensity", type=float, default=0.4, metavar="KG_PER_KWH",
        help="grid carbon intensity, kgCO2e/kWh",
    )
    provision_fleet.add_argument(
        "--embodied-carbon", type=float, default=0.03, metavar="KG_PER_GIB",
        help="embodied manufacturing carbon, kgCO2e per raw GiB",
    )
    provision_fleet.add_argument(
        "--amortization-years", type=float, default=5.0,
        help="years the embodied carbon is amortized over",
    )
    provision_fleet.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full provisioning report as JSON",
    )
    provision_fleet.add_argument(
        "--frontier-csv", metavar="PATH", default=None,
        help="write every frontier point as CSV",
    )
    provision_fleet.add_argument(
        "--assignments", metavar="PATH", default=None,
        help="write the recommended per-lot fleet spec as JSON "
        "(submittable via 'pcm-scrub fleet' / 'pcm-scrub submit')",
    )
    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeseries", metavar="PATH", default=None,
        help="sample metrics over simulated time and write them as JSON",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect per-phase wall-time spans and print the profile",
    )


def _jobs(args: argparse.Namespace) -> int:
    if args.jobs is None:
        return default_jobs()
    return max(1, args.jobs)


def _obs_config(args: argparse.Namespace, horizon: float) -> ObsConfig:
    """Telemetry selection from CLI flags (everything off by default)."""
    return ObsConfig(
        trace=getattr(args, "trace", False),
        sample_every=(
            horizon / DEFAULT_SAMPLES
            if getattr(args, "timeseries", None)
            else None
        ),
        profile=getattr(args, "profile", False),
    )


def _config(args: argparse.Namespace) -> SimulationConfig:
    region = 512 if args.lines % 512 == 0 else args.lines
    horizon = args.horizon_days * units.DAY
    return SimulationConfig(
        num_lines=args.lines,
        region_size=region,
        horizon=horizon,
        seed=args.seed,
        temperature_k=args.temperature,
        compensated_sensing=getattr(args, "compensated", False),
        obs=_obs_config(args, horizon),
        fast_forward=not getattr(args, "no_fast_forward", False),
        engine=getattr(args, "engine", "scalar"),
    )


def _profile_table(profile: dict[str, dict[str, float]], title: str) -> str:
    rows = [
        [name, entry["calls"], f"{entry['seconds']:.3f}s"]
        for name, entry in profile.items()
    ]
    return format_table(["phase", "calls", "wall time"], rows, title=title)


def _write_timeseries(path: str, labels: list[str], results: list) -> None:
    from .analysis.export import write_timeseries

    write_timeseries(path, labels, results)
    print(f"wrote time series for {len(results)} runs to {path}")


def _workload(args: argparse.Namespace, num_lines: int):
    if args.workload == "idle":
        return None
    if args.workload == "uniform":
        return uniform_rates(num_lines, args.write_rate)
    return zipf_rates(
        num_lines, args.write_rate, alpha=1.0, rng=np.random.default_rng(args.seed)
    )


def cmd_drift_curve(args: argparse.Namespace) -> int:
    model = DriftModel(CellSpec(), temperature_k=args.temperature)
    times = np.logspace(0, 7.5, args.points)
    series = {
        f"L{level}": [model.error_probability(level, t) for t in times]
        for level in range(4)
    }
    print(
        format_series(
            "seconds",
            [units.format_seconds(t) for t in times],
            series,
            title="Per-level drift soft-error probability vs time since write",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args)
    rates = _workload(args, config.num_lines)
    policies = [
        basic_scrub(args.interval),
        strong_ecc_scrub(args.interval, args.strength),
        light_scrub(args.interval, args.strength),
        threshold_scrub(args.interval, args.strength),
        adaptive_scrub(args.interval, args.strength),
        combined_scrub(args.interval),
    ]
    rows = []
    for result in sweep_policies(policies, config, rates, jobs=_jobs(args)):
        rows.append(
            [
                result.policy_name,
                result.uncorrectable,
                result.scrub_writes,
                units.format_energy(result.scrub_energy),
                f"{result.runtime_seconds:.2f}s",
            ]
        )
    print(
        format_table(
            ["policy", "UE", "scrub writes", "scrub energy", "runtime"],
            rows,
            title=(
                f"Mechanism comparison @ interval {units.format_seconds(args.interval)}, "
                f"{config.num_lines} lines, {units.format_seconds(config.horizon)}"
            ),
        )
    )
    return 0


def _reduction_cell(compute, paper: str) -> str:
    """A '<x>% reduction' cell, or 'n/a' when the baseline count is zero.

    Short horizons (or tiny populations) can leave the baseline with zero
    uncorrectable errors or zero scrub energy; that makes the *ratio*
    undefined, not the run invalid, so the table degrades gracefully.
    """
    try:
        return f"{compute():.1%} reduction (paper: {paper})"
    except ZeroDivisionError:
        return f"n/a - baseline saw none (paper: {paper})"


def cmd_headline(args: argparse.Namespace) -> int:
    config = _config(args)
    base, ours = sweep_policies(
        [basic_scrub(args.interval), combined_scrub(args.interval)],
        config,
        jobs=_jobs(args),
    )
    rows = [
        ["uncorrectable errors", base.uncorrectable, ours.uncorrectable,
         _reduction_cell(lambda: ours.ue_reduction_vs(base), "96.5%")],
        ["scrub writes", base.scrub_writes, ours.scrub_writes,
         f"{ours.write_factor_vs(base):.1f}x fewer (paper: 24.4x)"],
        ["scrub energy", units.format_energy(base.scrub_energy),
         units.format_energy(ours.scrub_energy),
         _reduction_cell(lambda: ours.energy_reduction_vs(base), "37.8%")],
    ]
    print(
        format_table(
            ["metric", "basic", "combined", "comparison"],
            rows,
            title="Headline comparison (abstract of the paper)",
        )
    )
    if args.timeseries:
        _write_timeseries(args.timeseries, ["basic", "combined"], [base, ours])
    if args.profile:
        print(
            _profile_table(
                merge_profiles([base.profile, ours.profile]),
                "Wall-time profile (both runs merged)",
            )
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    config = _config(args)
    specs = []
    for interval in args.intervals:
        kwargs = {"interval": interval}
        if args.policy != "basic":
            kwargs["strength"] = args.strength
        specs.append(RunSpec(policy=args.policy, config=config, policy_kwargs=kwargs))
    results = run_many(specs, jobs=_jobs(args))
    rows = []
    for interval, result in zip(args.intervals, results):
        rows.append(
            [
                units.format_seconds(interval),
                result.uncorrectable,
                result.scrub_writes,
                units.format_energy(result.scrub_energy),
            ]
        )
    print(
        format_table(
            ["interval", "UE", "scrub writes", "scrub energy"],
            rows,
            title=f"Interval sweep for {args.policy}",
        )
    )
    if args.timeseries:
        labels = [units.format_seconds(i) for i in args.intervals]
        _write_timeseries(args.timeseries, labels, results)
    if args.profile:
        print(
            _profile_table(
                merge_profiles([r.profile for r in results]),
                f"Wall-time profile ({len(results)} runs merged)",
            )
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    horizon = args.horizon_days * units.DAY
    config = SimulationConfig(
        num_lines=args.lines,
        region_size=512 if args.lines % 512 == 0 else args.lines,
        horizon=horizon,
        seed=args.seed,
        temperature_k=args.temperature,
        obs=ObsConfig(
            trace=True, sample_every=horizon / args.samples, profile=True
        ),
        fast_forward=not getattr(args, "no_fast_forward", False),
        engine=getattr(args, "engine", "scalar"),
    )
    rates = _workload(args, config.num_lines)
    kwargs: dict = {"interval": args.interval}
    if args.policy != "basic":
        kwargs["strength"] = args.strength
    spec = RunSpec(
        policy=args.policy, config=config, policy_kwargs=kwargs, rates=rates
    )
    result = spec.run()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    events = write_trace(result.trace, out / "trace.jsonl")
    result.timeseries.write(out / "timeseries.json")

    print(
        format_table(
            ["artifact", "contents"],
            [
                [str(out / "trace.jsonl"), f"{events} events"],
                [str(out / "timeseries.json"),
                 f"{len(result.timeseries)} samples"],
            ],
            title=(
                f"Telemetry for {result.policy_name} @ "
                f"{units.format_seconds(args.interval)}, "
                f"{config.num_lines} lines, "
                f"{units.format_seconds(config.horizon)}"
            ),
        )
    )
    final = result.timeseries.final
    print(
        format_table(
            ["metric", "value"],
            [
                ["uncorrectable", int(final["uncorrectable"])],
                ["scrub writes", int(final["scrub_writes"])],
                ["scrub energy", units.format_energy(final["scrub_energy_j"])],
                ["stuck cells", int(final["stuck_cells"])],
            ],
            title="Final time-series sample (== end-of-run aggregates)",
        )
    )
    print(_profile_table(result.profile, "Wall-time profile"))
    return 0


def cmd_provision(args: argparse.Namespace) -> int:
    grid = provision_grid(
        args.budget,
        args.strengths,
        args.lines_per_bank,
        temperature_k=args.temperature,
        jobs=_jobs(args),
    )
    rows = []
    for budget, strength, interval, failure in grid:
        if interval is None:
            rows.append([f"{budget:.0e}", f"bch{strength}", "infeasible", "-"])
        else:
            rows.append(
                [f"{budget:.0e}", f"bch{strength}",
                 units.format_seconds(interval), f"{failure:.3e}"]
            )
    print(
        format_table(
            ["bank budget", "code", "affordable interval", "P(UE per visit)"],
            rows,
            title=(
                "Reliability a bank-time budget buys "
                f"({args.lines_per_bank} lines/bank @ {args.temperature:.0f}K)"
            ),
        )
    )
    return 0


def _lifetime_task(
    task: tuple[float, int, int, float, float, float],
) -> tuple[int, int, float, float, float]:
    from .params import EnduranceSpec
    from .sim.lifetime import project_lifetime
    from .sim.renewal import RenewalModel
    from .sim.runner import cached_crossing_distribution

    interval, strength, theta, endurance_mean, demand, temperature = task
    renewal = RenewalModel(
        cached_crossing_distribution(CellSpec(), temperature), 256
    )
    report = project_lifetime(
        renewal, interval, strength, theta,
        EnduranceSpec(mean_writes=endurance_mean),
        demand_write_rate=demand,
    )
    return (
        strength,
        theta,
        report.scrub_write_rate,
        report.soft_ue_rate,
        report.years_to_wearout,
    )


def cmd_lifetime(args: argparse.Namespace) -> int:
    demand = args.demand_writes_per_hour / units.HOUR
    tasks = [
        (args.interval, strength, theta, args.endurance, demand, args.temperature)
        for strength, theta in [(4, 1), (4, 3), (8, 1), (8, 6)]
    ]
    rows = []
    for strength, theta, write_rate, ue_rate, years in parallel_map(
        _lifetime_task, tasks, jobs=_jobs(args)
    ):
        rows.append(
            [
                f"bch{strength} theta={theta}",
                f"{write_rate:.2e}",
                f"{ue_rate:.2e}",
                f"{years:.0f}",
            ]
        )
    print(
        format_table(
            ["config", "scrub wr/line/s", "soft UE/line/s", "years to wear-out"],
            rows,
            title=(
                f"Lifetime projection @ interval "
                f"{units.format_seconds(args.interval)}, "
                f"{args.demand_writes_per_hour:g} demand wr/line/h, "
                f"endurance {args.endurance:g}"
            ),
        )
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .analysis.export import write_results

    config = _config(args)
    policies = [
        basic_scrub(args.interval),
        strong_ecc_scrub(args.interval, args.strength),
        light_scrub(args.interval, args.strength),
        threshold_scrub(args.interval, args.strength),
        combined_scrub(args.interval),
    ]
    results = [run_experiment(policy, config) for policy in policies]
    write_results(args.output, results)
    print(f"wrote {len(results)} runs to {args.output}")
    return 0


def _verdict(ok: bool) -> str:
    return "pass" if ok else "FAIL"


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import run_verification

    report = run_verification(
        seed=args.seed, jobs=_jobs(args), quick=args.quick
    )

    inv_rows = [
        [case.name, case.visits, case.uncorrectable,
         _verdict(case.passed) if case.passed
         else f"FAIL: {case.violation['invariant']}"]
        for case in report.invariants.cases
    ]
    print(
        format_table(
            ["configuration", "visits", "UE", "invariants"],
            inv_rows,
            title="Invariant sweep (conservation laws, armed per visit)",
        )
    )

    meta_rows = [
        [result.name,
         " -> ".join(f"{case.value:g}" for case in result.cases),
         _verdict(result.passed)]
        for result in report.metamorphic.results
    ]
    print(
        format_table(
            ["property", "values", "verdict"],
            meta_rows,
            title="Metamorphic properties (paired-seed ordering laws)",
        )
    )

    eq_rows = [
        [row.check, row.label, row.metric, f"{row.observed:g}",
         f"{row.expected:.1f}", f"[{row.low:.1f}, {row.high:.1f}]",
         _verdict(row.passed)]
        for row in report.equivalence.rows
    ]
    print(
        format_table(
            ["model", "point", "metric", "MC", "expected", "band", "verdict"],
            eq_rows,
            title="Model equivalence (MC vs analytic / renewal)",
        )
    )

    if args.json:
        import json

        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote report to {path}")

    print(f"verification: {'PASSED' if report.passed else 'FAILED'}")
    return 0 if report.passed else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetSpec, run_campaign

    spec = FleetSpec.from_file(args.spec)
    constraints = _screen_constraints(args)
    if constraints is not None:
        return _cmd_fleet_screened(args, spec, constraints)
    outcome = run_campaign(
        spec,
        jobs=_jobs(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
        stop_after=args.stop_after,
        until=args.until,
    )

    if not outcome.finished:
        print(
            format_table(
                ["campaign", "completed", "executed now", "wall"],
                [[spec.name, f"{outcome.completed}/{outcome.total}",
                  outcome.executed, f"{outcome.wall_seconds:.1f}s"]],
                title="Campaign checkpointed (re-run with --resume to finish)",
            )
        )
        return 0

    report = outcome.report
    horizon = spec.base_config.horizon
    print(
        format_table(
            ["devices", "lots", "lines/device", "horizon", "policy",
             "executed now", "wall"],
            [[report.devices, len(spec.lots), spec.base_config.num_lines,
              units.format_seconds(horizon), spec.policy, outcome.executed,
              f"{outcome.wall_seconds:.1f}s"]],
            title=f"Fleet campaign '{spec.name}'",
        )
    )
    _print_fleet_report(report)

    if args.json:
        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json() + "\n")
        print(f"wrote fleet report to {path}")
    return 0


def _cmd_fleet_screened(args: argparse.Namespace, spec, constraints) -> int:
    from .screen import run_screened_campaign

    if args.until is not None:
        raise SystemExit("pcm-scrub: --until is not supported with --screen")
    outcome = run_screened_campaign(
        spec,
        constraints,
        jobs=_jobs(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
        stop_after=args.stop_after,
    )
    plan = outcome.plan
    counts = plan.counts()
    print(
        format_table(
            ["devices", "pass", "fail", "uncertain", "MC escalated",
             "MC fraction"],
            [[plan.devices, counts["pass"], counts["fail"],
              counts["uncertain"], len(plan.escalated),
              f"{plan.mc_fraction:.1%}"]],
            title=f"Screen plan for '{spec.name}'",
        )
    )
    if not outcome.finished:
        mc = outcome.mc_outcome
        print(
            format_table(
                ["campaign", "MC completed", "executed now", "wall"],
                [[spec.name, f"{mc.completed}/{mc.total}", mc.executed,
                  f"{mc.wall_seconds:.1f}s"]],
                title="Screened campaign checkpointed "
                "(re-run with --resume to finish)",
            )
        )
        return 0

    report = outcome.report
    _print_screened_report(report)
    if args.json:
        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json() + "\n")
        print(f"wrote screened fleet report to {path}")
    return 0


def _band(low: float, high: float, fmt: str = "{:.3g}") -> str:
    return f"[{fmt.format(low)}, {fmt.format(high)}]"


def _print_screened_report(report) -> None:
    """The composed surrogate+MC tables for screened campaigns."""
    print(
        format_table(
            ["metric", "value", "95% interval"],
            [
                ["surrogate devices", report.surrogate_devices,
                 "exact expectations"],
                ["MC devices", report.mc_devices,
                 f"{report.mc_fraction:.1%} of fleet"],
                ["surrogate expected UE", f"{report.surrogate_expected_ue:.3g}",
                 ""],
                ["MC observed UE", report.mc_uncorrectable, ""],
                ["FIT (simulated pop.)", f"{report.fit:.3g}",
                 _band(report.fit_low, report.fit_high)],
                [f"FIT ({report.capacity_gib_per_device:g} GiB device)",
                 f"{report.fit_scaled:.3g}",
                 _band(report.fit_scaled_low, report.fit_scaled_high)],
                ["availability (UE-free)", f"{report.availability:.1%}",
                 _band(report.availability_low, report.availability_high,
                       "{:.3f}")],
            ],
            title=f"Screened fleet reliability over "
            f"{report.device_hours:.3g} device-hours "
            f"({report.escalation_ratio:.1f}x fewer MC device-runs)",
        )
    )
    if report.mc_report is not None:
        mc = report.mc_report
        print(
            f"MC subset: {mc.devices} devices, {mc.uncorrectable} UE, "
            f"scrub energy {units.format_energy(mc.scrub_energy_j)}"
        )


def _print_any_report(report) -> None:
    """Dispatch on report type (serve/watch can yield either kind)."""
    from .screen import ScreenedFleetReport

    if isinstance(report, ScreenedFleetReport):
        _print_screened_report(report)
    else:
        _print_fleet_report(report)


def _print_fleet_report(report) -> None:
    """The reliability/lot/survival tables shared by fleet, serve, watch."""

    metric_rows = [
        ["uncorrectable errors", report.uncorrectable, ""],
        ["scrub writes", report.counts["scrub_writes"], ""],
        ["scrub energy", units.format_energy(report.scrub_energy_j),
         f"{units.format_energy(report.energy_per_gib_j)}/GiB simulated"],
        ["FIT (simulated pop.)", f"{report.fit:.3g}",
         _band(report.fit_low, report.fit_high)],
        [f"FIT ({report.capacity_gib_per_device:g} GiB device)",
         f"{report.fit_scaled:.3g}",
         _band(report.fit_scaled_low, report.fit_scaled_high)],
        ["availability (UE-free)", f"{report.availability:.1%}",
         _band(report.availability_low, report.availability_high, "{:.3f}")],
    ]
    print(
        format_table(
            ["metric", "value", "95% interval"],
            metric_rows,
            title=f"Fleet reliability over {report.device_hours:.3g} device-hours",
        )
    )

    lot_rows = [
        [lot.name, lot.devices, lot.counts["uncorrectable"],
         lot.counts["scrub_writes"], units.format_energy(lot.scrub_energy_j),
         f"{lot.fit:.3g}"]
        for lot in report.lots
    ]
    print(
        format_table(
            ["lot", "devices", "UE", "scrub writes", "scrub energy", "FIT"],
            lot_rows,
            title="Per-lot breakdown",
        )
    )

    survival_rows = [
        [f">= {threshold}", f"{fraction:.1%}"]
        for threshold, fraction in report.survival
    ]
    print(
        format_table(
            ["UE count", "fraction of devices"],
            survival_rows,
            title="Uncorrectable-error survival curve",
        )
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from .fleet import FleetSpec
    from .service import submit_campaign

    spec = FleetSpec.from_file(args.spec)
    constraints = _screen_constraints(args)
    shards = args.shards if args.shards is not None else default_jobs()
    campaign = submit_campaign(
        spec, args.root, shards=shards, constraints=constraints
    )
    rows = [[spec.name, spec.devices, len(campaign.shards),
             campaign.spec_hash[:12], str(campaign.root)]]
    print(
        format_table(
            ["campaign", "devices", "shards", "spec hash", "root"],
            rows,
            title="Campaign submitted",
        )
    )
    if campaign.screen is not None:
        counts = campaign.screen.counts()
        print(
            format_table(
                ["pass", "fail", "uncertain", "MC escalated", "MC fraction"],
                [[counts["pass"], counts["fail"], counts["uncertain"],
                  len(campaign.screen.escalated),
                  f"{campaign.screen.mc_fraction:.1%}"]],
                title="Screen plan (workers Monte-Carlo only the escalated "
                "subset)",
            )
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import final_report, serve_campaign

    summary = serve_campaign(
        args.root,
        workers=args.workers,
        max_restarts=args.max_restarts,
        lease_timeout=args.lease_timeout,
        snapshot_budget=args.snapshot_budget,
    )
    print(
        format_table(
            ["devices", "workers", "deaths", "restarts", "finished"],
            [[f"{summary['devices_done']}/{summary['devices_total']}",
              summary["workers"], summary["worker_deaths"],
              summary["restarts"], summary["finished"]]],
            title="Serve summary",
        )
    )
    if not summary["finished"]:
        return 1
    report = final_report(args.root)
    _print_any_report(report)
    if args.json:
        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json() + "\n")
        print(f"wrote fleet report to {path}")
    return 0


def _status_line(status: dict) -> str:
    states = [row["state"] for row in status["shards"]]
    return (
        f"{status['name']}: {status['devices_done']}/{status['devices_total']} "
        f"devices | shards {states.count('complete')} done, "
        f"{states.count('running')} running, {states.count('queued')} queued, "
        f"{states.count('stalled')} stalled"
    )


def cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from .service import campaign_status

    status = campaign_status(args.root, lease_timeout=args.lease_timeout)
    print(_status_line(status))
    shard_rows = [
        [row["shard"], f"{row['range'][0]}..{row['range'][1] - 1}",
         f"{row['done']}/{row['total']}", row["state"],
         row["worker"] or "-",
         "-" if row["heartbeat_age"] is None else f"{row['heartbeat_age']:.1f}s",
         "-" if row["wall_seconds"] is None else f"{row['wall_seconds']:.1f}s"]
        for row in status["shards"]
    ]
    print(
        format_table(
            ["shard", "devices", "done", "state", "worker", "heartbeat",
             "wall"],
            shard_rows,
            title=f"Campaign '{status['name']}' ({status['spec_hash'][:12]})",
        )
    )
    if status.get("screen") is not None:
        screen = status["screen"]
        counts = screen["counts"]
        print(
            f"screened campaign: {screen['devices']} devices "
            f"({counts['pass']} pass, {counts['fail']} fail, "
            f"{counts['uncertain']} escalated to MC, "
            f"{screen['mc_fraction']:.1%} MC fraction)"
        )
    if status["report"] is not None:
        partial = status["report"]
        if "surrogate_expected_ue" in partial:
            print(
                f"screened report: FIT {partial['fit']:.3g} "
                f"[{partial['fit_low']:.3g}, {partial['fit_high']:.3g}], "
                f"availability {partial['availability']:.1%}"
            )
        else:
            print(
                f"partial report over {partial['devices']} completed devices: "
                f"{partial['uncorrectable']} UE, FIT {partial['fit']:.3g}"
            )
    if args.json:
        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(status, indent=2) + "\n")
        print(f"wrote status to {path}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from .service import final_report, watch_campaign

    try:
        watch_campaign(
            args.root,
            interval=args.interval,
            timeout=args.timeout,
            lease_timeout=args.lease_timeout,
            on_status=lambda status: print(_status_line(status), flush=True),
        )
    except TimeoutError as error:
        print(f"watch: {error}")
        return 1
    _print_any_report(final_report(args.root))
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    from .service import repair_campaign

    outcome = repair_campaign(args.root, lease_timeout=args.lease_timeout)
    for broken in outcome["leases_broken"]:
        print(
            f"re-queued shard {broken['shard']} (lease held by "
            f"{broken['worker']}, heartbeat {broken['heartbeat_age']:.1f}s ago)"
        )
    if outcome["snapshots_swept"]:
        print(
            f"swept {len(outcome['snapshots_swept'])} snapshot(s) of "
            "already-journaled devices"
        )
    if not outcome["leases_broken"] and not outcome["snapshots_swept"]:
        print("nothing to repair")
    return 0


def cmd_provision_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetSpec
    from .provision import CandidateSpace, CostModel, ProvisionSearch

    spec = FleetSpec.from_file(args.spec)
    thresholds: tuple = (
        (None,) if args.thresholds is None else tuple(args.thresholds)
    )
    space = CandidateSpace(
        policies=tuple(args.policies),
        intervals=tuple(args.intervals),
        strengths=tuple(args.strengths),
        thresholds=thresholds,
        with_detector=args.with_detector,
    )
    cost_model = CostModel(
        dollars_per_gib=args.dollars_per_gib,
        carbon_intensity_kg_per_kwh=args.carbon_intensity,
        embodied_kg_per_gib=args.embodied_carbon,
        amortization_years=args.amortization_years,
    )
    report = ProvisionSearch(
        spec,
        space=space,
        cost_model=cost_model,
        fit_limit=args.fit_limit,
        confidence=args.confidence,
        jobs=_jobs(args),
        exhaustive=args.exhaustive,
    ).run()

    candidates = report.candidates_evaluated
    mc_runs = report.mc_device_runs
    surrogate_runs = sum(
        e.surrogate_devices for lot in report.lots for e in lot.evaluations
    )
    print(
        format_table(
            ["lots", "candidates", "surrogate device-evals",
             "MC device-runs", "frontier points"],
            [[len(report.lots), candidates, surrogate_runs, mc_runs,
              report.frontier_size]],
            title=f"Provisioning search for '{spec.name}'"
            + (" (exhaustive MC)" if args.exhaustive else ""),
        )
    )
    for lot in report.lots:
        rows = []
        for key in lot.frontier:
            evaluation = lot.evaluation(key)
            rows.append([
                key + (" *" if key == lot.recommended else ""),
                f"{evaluation.fit_scaled:.3g}",
                units.format_energy(evaluation.energy_per_gib_j),
                f"{evaluation.writes_per_device:.3g}",
                f"${evaluation.dollars_per_gib:.3f}",
                f"{evaluation.carbon_per_gib_kg:.3g}",
                evaluation.method,
            ])
        print(
            format_table(
                ["candidate", "FIT", "energy/GiB", "writes/dev",
                 "$/GiB", "kgCO2e/GiB", "method"],
                rows,
                title=f"Lot '{lot.lot}' Pareto frontier "
                f"({lot.devices} devices; * = recommended)",
            )
        )
        if lot.recommended is None:
            print(
                f"lot '{lot.lot}': no feasible candidate under "
                f"--fit-limit {args.fit_limit:g}; keeping its current "
                "assignment"
            )

    def _write(path_str: str, text: str, what: str) -> None:
        path = Path(path_str)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {what} to {path}")

    if args.json:
        _write(args.json, report.to_json() + "\n", "provisioning report")
    if args.frontier_csv:
        _write(args.frontier_csv, report.frontier_csv(), "frontier CSV")
    if args.assignments:
        assignments = report.assignments_spec()
        _write(
            args.assignments,
            json.dumps(assignments.to_dict(), indent=2, sort_keys=True) + "\n",
            "recommended per-lot spec",
        )
    return 0


COMMANDS = {
    "drift-curve": cmd_drift_curve,
    "compare": cmd_compare,
    "headline": cmd_headline,
    "sweep": cmd_sweep,
    "trace": cmd_trace,
    "provision": cmd_provision,
    "lifetime": cmd_lifetime,
    "export": cmd_export,
    "verify": cmd_verify,
    "fleet": cmd_fleet,
    "submit": cmd_submit,
    "serve": cmd_serve,
    "status": cmd_status,
    "watch": cmd_watch,
    "repair": cmd_repair,
    "provision-fleet": cmd_provision_fleet,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
