"""Durable campaign checkpoints: an append-only JSONL journal.

A campaign writes one journal per run: a header record binding the file
to the spec's content hash, then one record per completed device, in
completion order.  Appends are atomic at the line level (single
``write`` of a full line, flushed and fsynced), so a killed campaign
leaves at worst one torn trailing line - which :func:`load_journal`
detects and drops, everything before it being intact.

On ``--resume`` the header hash is revalidated against the spec, so a
journal can never silently mix devices from two different campaigns; a
mismatch is a hard :class:`CheckpointError`.  Resume aggregation reads
completed devices back *from the journal* (not from memory), which is
what makes a resumed campaign's report bit-identical to an
uninterrupted one: both aggregate the same serialized records.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Journal format version (independent of the spec version).
JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """The journal is unusable: wrong spec, wrong version, or corrupt."""


def write_header(path: str | Path, spec_hash: str, name: str) -> None:
    """Create (truncate) the journal and write its header record."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "kind": "header",
        "version": JOURNAL_VERSION,
        "name": name,
        "spec_hash": spec_hash,
    }
    with open(path, "w") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def append_device(path: str | Path, record: dict) -> None:
    """Append one completed-device record as a single flushed line."""
    line = json.dumps({"kind": "device", **record}, sort_keys=True) + "\n"
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def append_pending(path: str | Path, indices: list[int]) -> None:
    """Journal the device indices an ``--until`` stop left unfinished.

    Purely informational: :func:`load_journal` skips ``pending`` records,
    so a later resume recomputes the remaining set from the spec exactly
    as it would after a crash.  The record exists so ``status`` tooling
    (and humans reading the journal) can tell a deliberate early stop
    from an interrupted run.
    """
    line = (
        json.dumps(
            {"kind": "pending", "indices": sorted(int(i) for i in indices)},
            sort_keys=True,
        )
        + "\n"
    )
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def load_journal(
    path: str | Path, expected_hash: str | None = None
) -> tuple[dict, dict[int, dict]]:
    """Parse a journal into ``(header, {device_index: record})``.

    A torn *final* line (the kill-mid-append case) is dropped silently;
    corruption anywhere else, a missing or alien header, an unsupported
    version, or a ``spec_hash`` mismatch raise :class:`CheckpointError`.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise CheckpointError(f"checkpoint {path} is empty")

    parsed: list[dict] = []
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                break  # torn tail from a killed append; everything before is good
            raise CheckpointError(
                f"checkpoint {path} line {number + 1} is corrupt "
                "(not the final line, so this is not a torn append)"
            ) from None

    if not parsed or parsed[0].get("kind") != "header":
        raise CheckpointError(f"checkpoint {path} does not start with a header")
    header = parsed[0]
    if header.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has journal version {header.get('version')!r}; "
            f"this build reads version {JOURNAL_VERSION}"
        )
    if expected_hash is not None and header.get("spec_hash") != expected_hash:
        raise CheckpointError(
            f"checkpoint {path} was written for a different campaign spec "
            f"(journal {header.get('spec_hash')!r}, expected {expected_hash!r}); "
            "refusing to mix campaigns"
        )

    devices: dict[int, dict] = {}
    for number, record in enumerate(parsed[1:], start=2):
        if record.get("kind") == "pending":
            continue  # informational --until marker; remaining work is recomputed
        if record.get("kind") != "device" or "index" not in record:
            raise CheckpointError(
                f"checkpoint {path} line {number} is not a device record"
            )
        devices[int(record["index"])] = record
    return header, devices
