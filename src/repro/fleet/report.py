"""Fleet-level aggregation: FIT rates, availability, survival, energy.

Per-device :class:`repro.core.stats.ScrubStats` summaries roll up into
the numbers datacenter reliability budgets are written in:

* **FIT** - uncorrectable errors per 10^9 device-hours, with an exact
  Poisson (Garwood) confidence band, both for the simulated population
  and scaled linearly to the spec's real per-device capacity (per-line
  independence makes UE counts linear in capacity; see
  ``SimulationConfig.num_lines``);
* **availability** - the fraction of devices that survive the horizon
  with zero uncorrectable errors, with a Wilson binomial interval;
* the **UE survival curve** - the fraction of devices with at least
  ``k`` uncorrectables, at every observed count;
* **energy** - total scrub energy, per device, and per simulated GiB.

Aggregation is pure and order-fixed (records sorted by device index),
so a report is a deterministic function of the device records - the
property the checkpoint/resume machinery relies on.  Every report is
*invariant-checked* on construction: fleet totals must equal both the
direct per-device sum and the sum of the per-lot partial sums, the
device index set must be exactly ``0..devices-1``, and per-lot device
counts must match the spec's apportionment.  A mismatch raises
:class:`FleetInvariantError` rather than producing a silently wrong
report.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..analysis.stats import binomial_interval, poisson_interval
from ..sim.results import RunResult
from .spec import DeviceSpec, FleetSpec

#: Per-10^9-hours scale that defines the FIT unit.
FIT_HOURS = 1e9

#: Integer counters summed exactly across devices and lots.
_COUNT_KEYS = (
    "uncorrectable",
    "scrub_reads",
    "scrub_decodes",
    "scrub_writes",
    "visits",
    "detector_misses",
    "retired",
    "demand_writes",
)


class FleetInvariantError(RuntimeError):
    """A fleet aggregate failed its internal cross-check."""


def per_gib(value: float, gib: float, what: str) -> float:
    """``value / gib`` with a guarded zero-capacity denominator.

    Per-GiB metrics (energy/GiB, $/GiB, carbon/GiB) divide by simulated
    or provisioned capacity.  A zero-device lot in a partial aggregate
    legitimately has zero capacity *and* zero accumulated totals - that
    reads as ``0.0`` per GiB.  Zero capacity with a *nonzero* total means
    the aggregate is inconsistent (records without capacity to carry
    them), so rather than a bare ``ZeroDivisionError`` deep in a report,
    it raises :class:`FleetInvariantError` naming the metric.
    """
    if gib > 0:
        return value / gib
    if value == 0:
        return 0.0
    raise FleetInvariantError(
        f"{what}: nonzero total {value!r} over zero GiB of capacity; "
        "per-GiB metrics need a positive denominator"
    )


@dataclass(frozen=True)
class DeviceRecord:
    """One completed device, as persisted in the checkpoint journal."""

    index: int
    lot: str
    seed: int
    temperature_k: float
    nu_mu_scale: float
    nu_sigma_scale: float
    endurance_mean: float | None
    #: ``ScrubStats.summary()`` of the device run.
    summary: dict = field(default_factory=dict)
    final_state: dict = field(default_factory=dict)
    #: Wall-clock seconds the device simulation took.  Operational
    #: metadata only - never aggregated into the report, which must be
    #: bit-identical across reruns.
    runtime_seconds: float = 0.0

    @property
    def uncorrectable(self) -> int:
        return int(self.summary.get("uncorrectable", 0.0))

    @classmethod
    def from_result(cls, device: DeviceSpec, result: RunResult) -> "DeviceRecord":
        return cls(
            index=device.index,
            lot=device.lot,
            seed=device.seed,
            temperature_k=device.temperature_k,
            nu_mu_scale=device.nu_mu_scale,
            nu_sigma_scale=device.nu_sigma_scale,
            endurance_mean=device.endurance_mean,
            summary=result.stats.summary(),
            final_state=dict(result.final_state),
            runtime_seconds=result.runtime_seconds,
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "lot": self.lot,
            "seed": self.seed,
            "temperature_k": self.temperature_k,
            "nu_mu_scale": self.nu_mu_scale,
            "nu_sigma_scale": self.nu_sigma_scale,
            "endurance_mean": self.endurance_mean,
            "summary": dict(self.summary),
            "final_state": dict(self.final_state),
            "runtime_seconds": self.runtime_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceRecord":
        return cls(
            index=int(data["index"]),
            lot=str(data["lot"]),
            seed=int(data["seed"]),
            temperature_k=float(data["temperature_k"]),
            nu_mu_scale=float(data["nu_mu_scale"]),
            nu_sigma_scale=float(data["nu_sigma_scale"]),
            endurance_mean=(
                None
                if data.get("endurance_mean") is None
                else float(data["endurance_mean"])
            ),
            summary=dict(data.get("summary", {})),
            final_state=dict(data.get("final_state", {})),
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
        )

    def normalized(self) -> "DeviceRecord":
        """The record as it reads back from a JSON journal.

        JSON round-trips finite floats exactly, so this is value-identity;
        it exists so fresh in-memory records and journal-loaded records
        aggregate from byte-identical structures.
        """
        return DeviceRecord.from_dict(json.loads(json.dumps(self.to_dict())))


def _sum_counts(records: Sequence[DeviceRecord]) -> dict[str, int]:
    totals = dict.fromkeys(_COUNT_KEYS, 0)
    for record in records:
        for key in _COUNT_KEYS:
            totals[key] += int(record.summary.get(key, 0.0))
    return totals


def _sum_energy(records: Sequence[DeviceRecord]) -> float:
    return math.fsum(record.summary.get("scrub_energy_j", 0.0) for record in records)


@dataclass(frozen=True)
class LotSummary:
    """Per-lot aggregate row of a fleet report."""

    name: str
    devices: int
    counts: dict[str, int]
    scrub_energy_j: float
    fit: float
    #: Scrub energy per simulated GiB of this lot's devices (0.0 for an
    #: empty lot in a partial aggregate; the provisioning cost model
    #: prices lots off this figure).
    energy_per_gib_j: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "devices": self.devices,
            **self.counts,
            "scrub_energy_j": self.scrub_energy_j,
            "fit": self.fit,
            "energy_per_gib_j": self.energy_per_gib_j,
        }


@dataclass(frozen=True)
class FleetReport:
    """The deterministic aggregate of one completed campaign."""

    name: str
    devices: int
    device_hours: float
    capacity_gib_per_device: float
    simulated_gib_per_device: float
    counts: dict[str, int]
    scrub_energy_j: float
    #: Simulated-population FIT (UE per 1e9 device-hours) and Garwood band.
    fit: float
    fit_low: float
    fit_high: float
    #: FIT scaled to the real per-device capacity.
    fit_scaled: float
    fit_scaled_low: float
    fit_scaled_high: float
    #: Fraction of devices with zero uncorrectables, with Wilson band.
    availability: float
    availability_low: float
    availability_high: float
    #: Scrub energy per simulated GiB over the horizon.
    energy_per_gib_j: float
    #: ``[(ue_threshold, fraction of devices with >= threshold UEs), ...]``.
    survival: tuple[tuple[int, float], ...]
    lots: tuple[LotSummary, ...]

    @property
    def uncorrectable(self) -> int:
        return self.counts["uncorrectable"]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "devices": self.devices,
            "device_hours": self.device_hours,
            "capacity_gib_per_device": self.capacity_gib_per_device,
            "simulated_gib_per_device": self.simulated_gib_per_device,
            **self.counts,
            "scrub_energy_j": self.scrub_energy_j,
            "fit": self.fit,
            "fit_low": self.fit_low,
            "fit_high": self.fit_high,
            "fit_scaled": self.fit_scaled,
            "fit_scaled_low": self.fit_scaled_low,
            "fit_scaled_high": self.fit_scaled_high,
            "availability": self.availability,
            "availability_low": self.availability_low,
            "availability_high": self.availability_high,
            "energy_per_gib_j": self.energy_per_gib_j,
            "survival": [[k, fraction] for k, fraction in self.survival],
            "lots": [lot.to_dict() for lot in self.lots],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def merge_records(
    *record_sets: Iterable[DeviceRecord] | dict[int, DeviceRecord],
) -> dict[int, DeviceRecord]:
    """Associative, commutative merge of per-shard device records.

    The shard-merge layer deliberately unions *records*, not pre-summed
    partial reports: ``math.fsum`` partial sums do not recombine exactly,
    but a union of records followed by one :func:`aggregate` pass is a
    pure function of the record set - so ``merge(merge(A, B), C)`` and
    ``merge(A, merge(B, C))`` (and any other bracketing of any partition)
    aggregate to byte-identical reports.

    Identical duplicates are tolerated (a shard rerun after a worker
    death re-journals its devices); conflicting duplicates raise
    :class:`FleetInvariantError` - two different results for one device
    index mean the journals mix campaigns or spec evaluation broke.
    """
    merged: dict[int, DeviceRecord] = {}
    for records in record_sets:
        if isinstance(records, dict):
            records = records.values()
        for record in records:
            existing = merged.get(record.index)
            if existing is None:
                merged[record.index] = record
            elif existing != record:
                raise FleetInvariantError(
                    f"conflicting records for device {record.index}: shard "
                    "journals disagree (mixed campaigns?)"
                )
    return merged


def aggregate(spec: FleetSpec, records: Iterable[DeviceRecord]) -> FleetReport:
    """Roll per-device records up into a :class:`FleetReport`.

    Raises :class:`FleetInvariantError` when the records are not exactly
    one per device of ``spec``, when the per-lot partial sums do not
    re-add to the fleet totals, or when lot populations disagree with
    the spec's apportionment.
    """
    ordered = sorted(records, key=lambda record: record.index)
    indices = [record.index for record in ordered]
    if indices != list(range(spec.devices)):
        raise FleetInvariantError(
            f"expected device records 0..{spec.devices - 1}, got "
            f"{len(indices)} records"
            + (f" (first mismatch near index {next((i for i, v in enumerate(indices) if i != v), len(indices))})" if indices else "")
        )
    return _aggregate(spec, ordered, complete=True)


def aggregate_partial(
    spec: FleetSpec, records: Iterable[DeviceRecord]
) -> FleetReport:
    """Aggregate whatever device records exist *so far* into a report.

    The streaming-``status`` view: any non-empty subset of the fleet's
    devices produces a report over the completed population (``devices``,
    device-hours, availability, and survival denominators are the
    completed count, not the fleet size).  Apportionment checks are
    relaxed - an in-flight campaign legitimately has lots mid-fill - but
    the summation cross-checks still run.  A *complete* record set takes
    the exact :func:`aggregate` path, so the final streamed report is
    byte-identical to the batch one.
    """
    ordered = sorted(records, key=lambda record: record.index)
    if not ordered:
        raise FleetInvariantError(
            "aggregate_partial needs at least one device record"
        )
    indices = [record.index for record in ordered]
    if len(set(indices)) != len(indices):
        raise FleetInvariantError("duplicate device indices in partial records")
    if indices[0] < 0 or indices[-1] >= spec.devices:
        raise FleetInvariantError(
            f"device indices {indices[0]}..{indices[-1]} outside the spec's "
            f"0..{spec.devices - 1}"
        )
    if len(ordered) == spec.devices:
        return _aggregate(spec, ordered, complete=True)
    return _aggregate(spec, ordered, complete=False)


def _aggregate(
    spec: FleetSpec, ordered: Sequence[DeviceRecord], complete: bool
) -> FleetReport:
    counts = _sum_counts(ordered)
    scrub_energy = _sum_energy(ordered)

    # Per-lot partials, then the cross-check: lot sums must re-add to the
    # fleet totals (exactly for counters, to rounding for energy).  This
    # is what the acceptance invariant "fleet UE total equals the sum of
    # per-device UEs" rides on - two independent summation orders.
    by_lot: dict[str, list[DeviceRecord]] = {}
    for record in ordered:
        by_lot.setdefault(record.lot, []).append(record)
    expected_counts = {
        lot.name: count for lot, count in zip(spec.lots, spec.lot_counts())
    }
    horizon_hours = spec.base_config.horizon / 3600.0
    lot_rows = []
    for lot in spec.lots:
        members = by_lot.get(lot.name, [])
        if complete and len(members) != expected_counts[lot.name]:
            raise FleetInvariantError(
                f"lot {lot.name!r} has {len(members)} device records but the "
                f"spec apportions {expected_counts[lot.name]}"
            )
        lot_counts = _sum_counts(members)
        lot_hours = len(members) * horizon_hours
        lot_energy = _sum_energy(members)
        lot_rows.append(
            LotSummary(
                name=lot.name,
                devices=len(members),
                counts=lot_counts,
                scrub_energy_j=lot_energy,
                fit=(
                    lot_counts["uncorrectable"] / lot_hours * FIT_HOURS
                    if lot_hours > 0
                    else 0.0
                ),
                energy_per_gib_j=per_gib(
                    lot_energy,
                    len(members) * spec.simulated_gib_per_device,
                    f"lot {lot.name!r} energy/GiB",
                ),
            )
        )
    unknown = set(by_lot) - set(expected_counts)
    if unknown:
        raise FleetInvariantError(f"records name lots absent from the spec: {sorted(unknown)}")
    for key in _COUNT_KEYS:
        refolded = sum(row.counts[key] for row in lot_rows)
        if refolded != counts[key]:
            raise FleetInvariantError(
                f"lot partial sums for {key!r} re-add to {refolded}, "
                f"fleet total is {counts[key]}"
            )
    refolded_energy = math.fsum(row.scrub_energy_j for row in lot_rows)
    if not math.isclose(refolded_energy, scrub_energy, rel_tol=1e-9, abs_tol=0.0):
        raise FleetInvariantError(
            f"lot scrub-energy partial sums re-add to {refolded_energy!r}, "
            f"fleet total is {scrub_energy!r}"
        )

    # Denominators cover the aggregated population: the whole fleet for a
    # complete record set (``spec.device_hours`` exactly, so the complete
    # path is byte-identical to historical reports), the completed device
    # count for a streaming partial view.
    population = spec.devices if complete else len(ordered)
    device_hours = (
        spec.device_hours if complete else population * horizon_hours
    )
    total_ue = counts["uncorrectable"]
    ue_low, ue_high = poisson_interval(total_ue)
    fit = total_ue / device_hours * FIT_HOURS
    fit_low = ue_low / device_hours * FIT_HOURS
    fit_high = ue_high / device_hours * FIT_HOURS
    scale = spec.capacity_scale

    survivors = sum(1 for record in ordered if record.uncorrectable == 0)
    availability = survivors / population
    availability_low, availability_high = binomial_interval(
        survivors, population
    )

    ue_counts = [record.uncorrectable for record in ordered]
    thresholds = sorted({0, *ue_counts})[:32]
    survival = tuple(
        (k, sum(1 for ue in ue_counts if ue >= k) / population)
        for k in thresholds
    )

    simulated_gib_total = population * spec.simulated_gib_per_device
    return FleetReport(
        name=spec.name,
        devices=population,
        device_hours=device_hours,
        capacity_gib_per_device=spec.capacity_gib_per_device,
        simulated_gib_per_device=spec.simulated_gib_per_device,
        counts=counts,
        scrub_energy_j=scrub_energy,
        fit=fit,
        fit_low=fit_low,
        fit_high=fit_high,
        fit_scaled=fit * scale,
        fit_scaled_low=fit_low * scale,
        fit_scaled_high=fit_high * scale,
        availability=availability,
        availability_low=availability_low,
        availability_high=availability_high,
        energy_per_gib_j=per_gib(
            scrub_energy, simulated_gib_total, "fleet energy/GiB"
        ),
        survival=survival,
        lots=tuple(lot_rows),
    )
