"""Campaign execution: fan a fleet out over the process pool, durably.

:class:`CampaignRunner` turns a :class:`repro.fleet.spec.FleetSpec` into
per-device :class:`repro.sim.parallel.RunSpec` work units and executes
them in batches over :func:`repro.sim.parallel.run_many` - inheriting
the pool's bit-identical-for-any-``jobs`` guarantee and the persistent
crossing-distribution cache (devices from the same lot corner share a
tabulation).

With a checkpoint path, every completed device is appended to the JSONL
journal (:mod:`repro.fleet.checkpoint`) before the next batch starts,
so a killed campaign loses at most one in-flight batch.  ``resume=True``
validates the journal's spec hash, skips every journaled device, and -
crucially - aggregates *from the journal records*, so an interrupted and
resumed campaign produces a report bit-identical to an uninterrupted
one.  Without a checkpoint the runner keeps records in memory but
normalizes them through the same JSON round-trip, so the report is
byte-for-byte the same either way.
"""

from __future__ import annotations

import logging
import time as _time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.parallel import run_many
from ..sim.runner import crossing_distribution_for
from .checkpoint import (
    CheckpointError,
    append_device,
    append_pending,
    load_journal,
    write_header,
)
from .report import DeviceRecord, FleetReport, aggregate
from .spec import FleetSpec

logger = logging.getLogger(__name__)

#: Devices dispatched per pool round: enough to amortize pool start-up,
#: small enough that a kill between batches forfeits little work.
BATCH_PER_JOB = 4


@dataclass(frozen=True)
class CampaignOutcome:
    """What one :meth:`CampaignRunner.run` invocation accomplished."""

    #: The fleet report; ``None`` when the campaign was checkpointed
    #: before completion (``stop_after``) and needs a resume, or when the
    #: runner covered only a subset of the fleet (``indices``) - a subset
    #: cannot aggregate into a full :class:`FleetReport`.
    report: FleetReport | None
    #: Devices completed across all invocations (journal + this run).
    completed: int
    #: Devices simulated by *this* invocation (excludes resumed ones).
    executed: int
    #: Devices this runner is responsible for (the fleet size, or the
    #: subset length when ``indices`` was given).
    total: int
    #: Wall-clock seconds of this invocation.
    wall_seconds: float
    #: The completed device records, in index order, once finished
    #: (empty until then).  This is what subset runs - the screening
    #: escalation path - aggregate from.
    records: tuple[DeviceRecord, ...] = field(default=())

    @property
    def finished(self) -> bool:
        return self.completed == self.total


class CampaignRunner:
    """Execute a fleet campaign, optionally durable and resumable.

    Parameters
    ----------
    spec:
        The campaign description.
    jobs:
        Worker processes for the device fan-out (1 = inline).
    checkpoint:
        JSONL journal path; ``None`` runs in memory only.
    resume:
        Continue an existing journal (required when ``checkpoint``
        already exists; forbidden when it does not).
    stop_after:
        Checkpoint and return after completing this many devices in
        this invocation - the programmatic form of killing a campaign
        mid-flight, used by the resume round-trip tests and by
        operators slicing a long campaign across maintenance windows.
    until:
        Incremental stop by device *index*: complete every device with
        index < ``until``, journal the remainder as a ``pending`` record,
        and return without aggregating.  Unlike ``stop_after`` (a
        per-invocation work budget), ``until`` is an absolute position in
        the campaign, so repeated invocations with growing ``until``
        values walk the fleet front-to-back.
    indices:
        Restrict the run to this subset of device indices (sorted,
        deduplicated internally).  Devices are simulated exactly as they
        would be in a full run - per-device seeding makes results
        independent of which subset they execute in - but the outcome
        carries no :class:`FleetReport` (a subset cannot aggregate);
        callers compose from :attr:`CampaignOutcome.records`.  This is
        the MC-escalation path of :mod:`repro.screen`.
    """

    def __init__(
        self,
        spec: FleetSpec,
        jobs: int = 1,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        stop_after: int | None = None,
        until: int | None = None,
        indices: Sequence[int] | None = None,
    ):
        if stop_after is not None and stop_after <= 0:
            raise ValueError("stop_after must be positive (or None)")
        if until is not None and until <= 0:
            raise ValueError("until must be positive (or None)")
        if resume and checkpoint is None:
            raise ValueError("resume requires a checkpoint path")
        if indices is not None:
            indices = sorted(set(int(i) for i in indices))
            bad = [i for i in indices if not 0 <= i < spec.devices]
            if bad:
                raise ValueError(
                    f"subset indices {bad[:4]} outside fleet of {spec.devices}"
                )
        self.spec = spec
        self.jobs = max(1, jobs)
        self.checkpoint = None if checkpoint is None else Path(checkpoint)
        self.resume = resume
        self.stop_after = stop_after
        self.until = until
        self.indices = None if indices is None else tuple(indices)

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignOutcome:
        """Run (or continue) the campaign; see :class:`CampaignOutcome`."""
        started = _time.perf_counter()
        spec = self.spec
        spec_hash = spec.content_hash()

        done: dict[int, DeviceRecord] = {}
        if self.checkpoint is not None:
            if self.checkpoint.exists():
                if not self.resume:
                    raise CheckpointError(
                        f"checkpoint {self.checkpoint} already exists; pass "
                        "resume=True to continue it or remove it to restart"
                    )
                _, journaled = load_journal(self.checkpoint, expected_hash=spec_hash)
                done = {
                    index: DeviceRecord.from_dict(record)
                    for index, record in journaled.items()
                }
                logger.info(
                    "campaign %s: resuming with %d/%d devices journaled",
                    spec.name, len(done), spec.devices,
                )
            else:
                write_header(self.checkpoint, spec_hash, spec.name)

        targets = (
            list(range(spec.devices)) if self.indices is None else list(self.indices)
        )
        pending = [i for i in targets if i not in done]
        if self.until is not None:
            pending = [i for i in pending if i < self.until]
        if self.stop_after is not None:
            pending = pending[: self.stop_after]

        # Pre-warm the distribution cache once per distinct lot corner in
        # the parent, mirroring run_many's single-config warm-up.
        if self.jobs > 1 and pending:
            seen: set = set()
            for index in pending:
                config = spec.device_spec(index).config
                key = (config.cell_spec, config.temperature_k,
                       config.compensated_sensing)
                if key not in seen:
                    seen.add(key)
                    crossing_distribution_for(config)

        executed = 0
        batch_size = max(1, self.jobs * BATCH_PER_JOB)
        for start in range(0, len(pending), batch_size):
            batch = pending[start : start + batch_size]
            devices = [spec.device_spec(index) for index in batch]
            workload = spec.workload()
            specs = [
                device.run_spec(*spec.policy_for(device.lot), workload)
                for device in devices
            ]
            results = run_many(specs, jobs=self.jobs)
            for device, result in zip(devices, results):
                record = DeviceRecord.from_result(device, result).normalized()
                if self.checkpoint is not None:
                    append_device(self.checkpoint, record.to_dict())
                done[device.index] = record
                executed += 1

        completed = sum(1 for i in targets if i in done)
        wall = _time.perf_counter() - started
        if completed < len(targets):
            if self.until is not None and self.checkpoint is not None:
                append_pending(
                    self.checkpoint,
                    [i for i in targets if i not in done],
                )
            logger.info(
                "campaign %s: checkpointed %d/%d devices (resume to finish)",
                spec.name, completed, len(targets),
            )
            return CampaignOutcome(
                report=None, completed=completed, executed=executed,
                total=len(targets), wall_seconds=wall,
            )

        records = tuple(done[i] for i in targets)
        # A subset run cannot make the full-fleet report; the caller
        # (repro.screen) composes from the records instead.
        report = aggregate(spec, records) if self.indices is None else None
        logger.info(
            "campaign %s: %d devices, %d executed this run, wall %.2fs",
            spec.name, completed, executed, wall,
        )
        return CampaignOutcome(
            report=report, completed=completed, executed=executed,
            total=len(targets), wall_seconds=wall, records=records,
        )


def run_campaign(
    spec: FleetSpec,
    jobs: int = 1,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    stop_after: int | None = None,
    until: int | None = None,
    indices: Sequence[int] | None = None,
) -> CampaignOutcome:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        spec, jobs=jobs, checkpoint=checkpoint, resume=resume,
        stop_after=stop_after, until=until, indices=indices,
    ).run()
