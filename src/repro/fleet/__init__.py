"""Datacenter-scale scrub campaigns over heterogeneous device fleets.

The single-region simulator answers "how does this scrub policy behave
on one memory array"; this package lifts it to the question reliability
budgets are actually written against: "what FIT rate and availability
does a fleet of thousands of DIMMs - drawn from different manufacturing
lots, racked at different temperatures - see under this policy?"

* :mod:`repro.fleet.spec` - declarative campaign descriptions
  (:class:`FleetSpec`, :class:`Lot`, :class:`LotParameter`), with
  deterministic per-device parameter sampling and JSON round-tripping;
* :mod:`repro.fleet.campaign` - :class:`CampaignRunner`, which fans
  devices out over the :func:`repro.sim.parallel.run_many` pool with a
  durable JSONL checkpoint journal and bit-identical resume;
* :mod:`repro.fleet.checkpoint` - the journal format;
* :mod:`repro.fleet.report` - FIT / availability / survival / energy
  aggregation with internal cross-checks
  (:class:`FleetReport`, :func:`aggregate`).

The CLI front end is ``pcm-scrub fleet``; see ``docs/fleet.md``.
"""

from __future__ import annotations

from .campaign import CampaignOutcome, CampaignRunner, run_campaign
from .checkpoint import CheckpointError, load_journal
from .report import (
    DeviceRecord,
    FleetInvariantError,
    FleetReport,
    aggregate,
    aggregate_partial,
    merge_records,
)
from .spec import DeviceSpec, FleetSpec, Lot, LotParameter

__all__ = [
    "CampaignOutcome",
    "CampaignRunner",
    "CheckpointError",
    "DeviceRecord",
    "DeviceSpec",
    "FleetInvariantError",
    "FleetReport",
    "FleetSpec",
    "Lot",
    "LotParameter",
    "aggregate",
    "aggregate_partial",
    "load_journal",
    "merge_records",
    "run_campaign",
]
