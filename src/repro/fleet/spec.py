"""Fleet specifications: heterogeneous device populations from lots.

The paper evaluates scrub policies on a single memory region; FIT budgets
and availability targets are set at *fleet* scale, where thousands of
DIMMs from different manufacturing lots age together.  A
:class:`FleetSpec` describes such a population declaratively:

* a **base configuration** - the single-device
  :class:`repro.sim.config.SimulationConfig` every device starts from
  (including its :class:`~repro.obs.config.ObsConfig` and
  :class:`~repro.verify.config.VerifyConfig`, which ride through to every
  device unchanged);
* a set of **lots** - each lot draws its devices' drift parameters
  (``nu_mean``/``nu_sigma`` scale factors), operating temperature, and
  endurance from per-lot Gaussian distributions, modelling
  lot-to-lot process variation and rack-position thermal spread;
* a **policy** (by :data:`repro.sim.parallel.POLICY_FACTORIES` name, so
  every device spec is picklable) and an optional uniform demand
  workload.

Sampling is deterministic: device ``i`` draws its parameters from
``default_rng([campaign_seed, i])`` and simulates with seed
``campaign_seed + i``, so a campaign is a pure function of its spec -
independent of worker placement, batching, or resume boundaries.  A
degenerate single-lot fleet (all spreads zero, all scales one) of size 1
reproduces the single-device ``run_experiment`` result bit-exactly.

Specs round-trip through JSON (:meth:`FleetSpec.to_dict` /
:meth:`FleetSpec.from_dict` / :meth:`FleetSpec.from_file`), and
:meth:`FleetSpec.content_hash` over the canonical JSON form is what the
checkpoint journal validates on resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import units
from ..obs.config import ObsConfig
from ..params import EnduranceSpec, replace
from ..sim.config import SimulationConfig
from ..sim.parallel import POLICY_FACTORIES, RunSpec
from ..verify.config import VerifyConfig
from ..workloads import uniform_rates
from ..workloads.generators import DemandRates

#: Journal/spec schema version (bumped on incompatible format changes).
SPEC_VERSION = 1


@dataclass(frozen=True)
class LotParameter:
    """A per-lot Gaussian over one device parameter.

    Device values are drawn as ``mean + spread * z`` with ``z`` standard
    normal, then clipped into ``[low, high]`` when bounds are set.  A
    ``spread`` of zero makes the draw exactly ``mean`` (the degenerate
    lot used for single-device equivalence).
    """

    mean: float
    spread: float = 0.0
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.spread < 0:
            raise ValueError("spread must be >= 0")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ValueError("low must not exceed high")

    def sample(self, rng: np.random.Generator) -> float:
        """One draw; always consumes exactly one normal variate."""
        value = self.mean + self.spread * float(rng.standard_normal())
        if self.low is not None:
            value = max(value, self.low)
        if self.high is not None:
            value = min(value, self.high)
        return value

    def to_dict(self) -> dict:
        # Coerced to float so int-valued inputs produce the same canonical
        # JSON (and therefore the same content hash) as their float twins.
        out: dict = {"mean": float(self.mean), "spread": float(self.spread)}
        if self.low is not None:
            out["low"] = float(self.low)
        if self.high is not None:
            out["high"] = float(self.high)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LotParameter":
        return cls(
            mean=float(data["mean"]),
            spread=float(data.get("spread", 0.0)),
            low=None if data.get("low") is None else float(data["low"]),
            high=None if data.get("high") is None else float(data["high"]),
        )


#: The identity scale: multiplying by exactly 1.0 leaves every float
#: unchanged, so a lot built from these defaults is bit-transparent.
_UNIT_SCALE = LotParameter(mean=1.0, spread=0.0, low=0.0)


@dataclass(frozen=True)
class Lot:
    """One manufacturing lot: a weighted slice of the fleet.

    ``nu_mu_scale`` / ``nu_sigma_scale`` multiply every level's drift
    ``nu_mean`` / ``nu_sigma`` (a lot-wide process corner);
    ``temperature_k``, when set, overrides the base configuration's
    operating temperature (rack-position spread); ``endurance_mean``,
    when set, replaces the base endurance spec's mean write count.

    A lot may also carry its own scrub assignment - ``policy`` (a
    :data:`repro.sim.parallel.POLICY_FACTORIES` name) and/or
    ``policy_kwargs`` (ECC strength, interval, threshold overrides).
    Both default to ``None``, meaning "inherit the fleet-wide policy";
    the serialized form omits unset overrides, so specs written before
    per-lot provisioning existed hash identically.  Resolution semantics
    live in :meth:`FleetSpec.policy_for`.
    """

    name: str
    weight: float = 1.0
    nu_mu_scale: LotParameter = field(default_factory=lambda: _UNIT_SCALE)
    nu_sigma_scale: LotParameter = field(default_factory=lambda: _UNIT_SCALE)
    temperature_k: LotParameter | None = None
    endurance_mean: LotParameter | None = None
    #: Per-lot scrub policy override (``None`` inherits the fleet's).
    policy: str | None = None
    #: Per-lot policy kwargs override; merged over the fleet kwargs when
    #: the effective policy matches the fleet's, taken verbatim otherwise.
    policy_kwargs: dict | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("lot name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"lot {self.name!r}: weight must be positive")
        if self.policy is not None and self.policy not in POLICY_FACTORIES:
            raise ValueError(
                f"lot {self.name!r}: unknown policy {self.policy!r}; "
                f"available: {sorted(POLICY_FACTORIES)}"
            )

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "weight": float(self.weight),
            "nu_mu_scale": self.nu_mu_scale.to_dict(),
            "nu_sigma_scale": self.nu_sigma_scale.to_dict(),
        }
        if self.temperature_k is not None:
            out["temperature_k"] = self.temperature_k.to_dict()
        if self.endurance_mean is not None:
            out["endurance_mean"] = self.endurance_mean.to_dict()
        # Omitted when unset: a pre-provisioning spec serializes (and
        # therefore content-hashes) exactly as it always did.
        if self.policy is not None:
            out["policy"] = self.policy
        if self.policy_kwargs is not None:
            out["policy_kwargs"] = dict(self.policy_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Lot":
        def parameter(key: str, default: LotParameter | None) -> LotParameter | None:
            if key not in data or data[key] is None:
                return default
            return LotParameter.from_dict(data[key])

        return cls(
            name=str(data["name"]),
            weight=float(data.get("weight", 1.0)),
            nu_mu_scale=parameter("nu_mu_scale", _UNIT_SCALE),
            nu_sigma_scale=parameter("nu_sigma_scale", _UNIT_SCALE),
            temperature_k=parameter("temperature_k", None),
            endurance_mean=parameter("endurance_mean", None),
            policy=(
                None if data.get("policy") is None else str(data["policy"])
            ),
            policy_kwargs=(
                None
                if data.get("policy_kwargs") is None
                else dict(data["policy_kwargs"])
            ),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """One concrete device: its lot draw, seed, and full configuration."""

    index: int
    lot: str
    seed: int
    nu_mu_scale: float
    nu_sigma_scale: float
    temperature_k: float
    endurance_mean: float | None
    config: SimulationConfig

    def run_spec(self, policy: str, policy_kwargs: dict,
                 rates: DemandRates | None) -> RunSpec:
        return RunSpec(
            policy=policy,
            config=self.config,
            policy_kwargs=dict(policy_kwargs),
            rates=rates,
        )


@dataclass(frozen=True)
class FleetSpec:
    """A reproducible datacenter-scale scrub campaign."""

    #: Campaign name (labels reports and journal headers).
    name: str
    #: Device population size.
    devices: int
    #: Key into :data:`repro.sim.parallel.POLICY_FACTORIES`.
    policy: str
    #: Per-device simulation parameters every device is derived from; the
    #: campaign seed is ``base_config.seed``.
    base_config: SimulationConfig
    lots: tuple[Lot, ...] = (Lot(name="default"),)
    policy_kwargs: dict = field(default_factory=dict)
    #: Real per-device capacity the FIT projection scales the simulated
    #: population up to (the Monte-Carlo population is far smaller than a
    #: DIMM; per-line independence makes the scaling linear).
    capacity_gib_per_device: float = 16.0
    #: Total demand write rate per device (writes/s over the whole device,
    #: uniform across lines); ``None`` simulates idle devices.
    demand_write_rate: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.devices <= 0:
            raise ValueError("devices must be positive")
        if self.policy not in POLICY_FACTORIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"available: {sorted(POLICY_FACTORIES)}"
            )
        if not self.lots:
            raise ValueError("at least one lot is required")
        names = [lot.name for lot in self.lots]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lot names: {names}")
        if self.capacity_gib_per_device <= 0:
            raise ValueError("capacity_gib_per_device must be positive")
        if self.demand_write_rate is not None and self.demand_write_rate <= 0:
            raise ValueError("demand_write_rate must be positive (or None)")
        if self.base_config.thermal_profile is not None:
            raise ValueError(
                "fleet campaigns model temperature heterogeneity through "
                "per-lot temperature_k; thermal profiles are not supported"
            )

    # -- lot assignment -------------------------------------------------------

    @property
    def seed(self) -> int:
        """The campaign seed (alias for ``base_config.seed``)."""
        return self.base_config.seed

    def lot_counts(self) -> list[int]:
        """Device count per lot via largest-remainder apportionment.

        Deterministic: quotas are ``weight / total * devices``; every lot
        gets its floor, and the leftover devices go to the largest
        fractional remainders (ties broken by lot order).
        """
        total = sum(lot.weight for lot in self.lots)
        quotas = [lot.weight / total * self.devices for lot in self.lots]
        counts = [int(q) for q in quotas]
        leftover = self.devices - sum(counts)
        remainders = sorted(
            range(len(self.lots)),
            key=lambda i: (-(quotas[i] - counts[i]), i),
        )
        for i in remainders[:leftover]:
            counts[i] += 1
        return counts

    def lot_of(self, index: int) -> Lot:
        """The lot device ``index`` belongs to (devices laid out in blocks)."""
        if not 0 <= index < self.devices:
            raise IndexError(f"device index {index} outside fleet of {self.devices}")
        cumulative = 0
        for lot, count in zip(self.lots, self.lot_counts()):
            cumulative += count
            if index < cumulative:
                return lot
        raise AssertionError("unreachable: lot_counts sums to devices")

    def lot_named(self, name: str) -> Lot:
        """The lot with this name (device records carry lot names)."""
        for lot in self.lots:
            if lot.name == name:
                return lot
        raise KeyError(f"no lot named {name!r} in fleet {self.name!r}")

    def lot_indices(self, name: str) -> tuple[int, ...]:
        """Device indices apportioned to the named lot (block layout)."""
        cumulative = 0
        for lot, count in zip(self.lots, self.lot_counts()):
            if lot.name == name:
                return tuple(range(cumulative, cumulative + count))
            cumulative += count
        raise KeyError(f"no lot named {name!r} in fleet {self.name!r}")

    # -- policy resolution ----------------------------------------------------

    def policy_for(self, lot: Lot | str) -> tuple[str, dict]:
        """The effective ``(policy, policy_kwargs)`` for a lot.

        Resolution:

        * no overrides - the fleet-wide assignment, unchanged;
        * ``policy_kwargs`` only (or ``policy`` equal to the fleet's) -
          the fleet kwargs with the lot's merged over them per key, so a
          lot can override just ``interval`` or just ``strength``;
        * a *different* ``policy`` - the lot's kwargs verbatim (fleet
          kwargs are factory-specific and do not transfer across
          factories; ``basic`` accepts only ``interval``).
        """
        if isinstance(lot, str):
            lot = self.lot_named(lot)
        policy = self.policy if lot.policy is None else lot.policy
        if policy != self.policy:
            kwargs = dict(lot.policy_kwargs or {})
        else:
            kwargs = dict(self.policy_kwargs)
            kwargs.update(lot.policy_kwargs or {})
        return policy, kwargs

    @property
    def has_lot_policies(self) -> bool:
        """Whether any lot overrides the fleet-wide scrub assignment."""
        return any(
            lot.policy is not None or lot.policy_kwargs is not None
            for lot in self.lots
        )

    # -- device derivation ----------------------------------------------------

    def device_spec(self, index: int) -> DeviceSpec:
        """Sample device ``index``'s parameters and build its configuration.

        The draw order (nu_mu scale, nu_sigma scale, temperature,
        endurance) is part of the format: it fixes which variate each
        parameter consumes, so adding lots or devices never perturbs
        other devices.
        """
        lot = self.lot_of(index)
        rng = np.random.default_rng([self.seed, index])
        nu_mu_scale = lot.nu_mu_scale.sample(rng)
        nu_sigma_scale = lot.nu_sigma_scale.sample(rng)
        temperature = (
            lot.temperature_k.sample(rng)
            if lot.temperature_k is not None
            else self.base_config.temperature_k
        )
        endurance_mean = (
            lot.endurance_mean.sample(rng)
            if lot.endurance_mean is not None
            else None
        )

        config = self.base_config
        if nu_mu_scale != 1.0 or nu_sigma_scale != 1.0:
            cell = config.line.cell
            scaled = replace(
                cell,
                drift=tuple(
                    replace(
                        d,
                        nu_mean=d.nu_mean * nu_mu_scale,
                        nu_sigma=d.nu_sigma * nu_sigma_scale,
                    )
                    for d in cell.drift
                ),
            )
            config = replace(config, line=replace(config.line, cell=scaled))
        if temperature != config.temperature_k:
            config = replace(config, temperature_k=temperature)
        if endurance_mean is not None:
            base_endurance = config.endurance
            sigma = (
                base_endurance.sigma_log10
                if base_endurance is not None
                else EnduranceSpec().sigma_log10
            )
            config = replace(
                config,
                endurance=EnduranceSpec(
                    mean_writes=endurance_mean, sigma_log10=sigma
                ),
            )
        config = replace(config, seed=self.seed + index)
        return DeviceSpec(
            index=index,
            lot=lot.name,
            seed=self.seed + index,
            nu_mu_scale=nu_mu_scale,
            nu_sigma_scale=nu_sigma_scale,
            temperature_k=temperature,
            endurance_mean=endurance_mean,
            config=config,
        )

    def workload(self) -> DemandRates | None:
        if self.demand_write_rate is None:
            return None
        return uniform_rates(self.base_config.num_lines, self.demand_write_rate)

    def run_spec(self, index: int) -> RunSpec:
        """The picklable work unit for device ``index``.

        Uses the device's lot-effective policy (see :meth:`policy_for`);
        fleets without per-lot overrides behave exactly as before.
        """
        device = self.device_spec(index)
        policy, kwargs = self.policy_for(device.lot)
        return device.run_spec(policy, kwargs, self.workload())

    # -- geometry helpers -----------------------------------------------------

    @property
    def simulated_gib_per_device(self) -> float:
        """GiB actually simulated per device (the Monte-Carlo population)."""
        return (
            self.base_config.num_lines
            * self.base_config.line.data_bytes
            / units.GIB
        )

    @property
    def capacity_scale(self) -> float:
        """Real-device lines per simulated line (the FIT scale-up factor)."""
        return self.capacity_gib_per_device / self.simulated_gib_per_device

    @property
    def device_hours(self) -> float:
        """Total simulated device-hours across the fleet."""
        return self.devices * self.base_config.horizon / units.HOUR

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON form; also the :meth:`content_hash` input."""
        config = self.base_config
        endurance = (
            None
            if config.endurance is None
            else {
                "mean_writes": config.endurance.mean_writes,
                "sigma_log10": config.endurance.sigma_log10,
            }
        )
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "devices": self.devices,
            "policy": self.policy,
            "policy_kwargs": dict(self.policy_kwargs),
            "capacity_gib_per_device": float(self.capacity_gib_per_device),
            "demand_write_rate": (
                None
                if self.demand_write_rate is None
                else float(self.demand_write_rate)
            ),
            "lots": [lot.to_dict() for lot in self.lots],
            "config": {
                "num_lines": config.num_lines,
                "region_size": config.region_size,
                "horizon": config.horizon,
                "seed": config.seed,
                "temperature_k": config.temperature_k,
                "endurance": endurance,
                "retire_hard_limit": config.retire_hard_limit,
                "read_refresh": config.read_refresh,
                "compensated_sensing": config.compensated_sensing,
                "keep": config.keep,
                "spares_per_region": config.spares_per_region,
                "engine": config.engine,
                "fast_forward": config.fast_forward,
                "obs": {
                    "trace": config.obs.trace,
                    "sample_every": config.obs.sample_every,
                    "profile": config.obs.profile,
                },
                "verify": {
                    "invariants": config.verify.invariants,
                    "check_every": config.verify.check_every,
                    "energy_rtol": config.verify.energy_rtol,
                },
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported fleet spec version {version!r} "
                f"(this build reads version {SPEC_VERSION})"
            )
        raw = dict(data.get("config", {}))
        endurance = raw.pop("endurance", "unset")
        obs = raw.pop("obs", None)
        verify = raw.pop("verify", None)
        if "horizon_days" in raw:
            raw["horizon"] = float(raw.pop("horizon_days")) * units.DAY
        kwargs: dict = dict(raw)
        if endurance != "unset":
            kwargs["endurance"] = (
                None
                if endurance is None
                else EnduranceSpec(
                    mean_writes=float(endurance["mean_writes"]),
                    sigma_log10=float(endurance.get("sigma_log10", 0.25)),
                )
            )
        if obs is not None:
            kwargs["obs"] = ObsConfig(**obs)
        if verify is not None:
            kwargs["verify"] = VerifyConfig(**verify)
        try:
            base_config = SimulationConfig(**kwargs)
        except TypeError as exc:
            raise ValueError(f"bad fleet spec config block: {exc}") from None
        return cls(
            name=str(data["name"]),
            devices=int(data["devices"]),
            policy=str(data["policy"]),
            policy_kwargs=dict(data.get("policy_kwargs", {})),
            base_config=base_config,
            lots=tuple(Lot.from_dict(lot) for lot in data.get("lots", [])),
            capacity_gib_per_device=float(
                data.get("capacity_gib_per_device", 16.0)
            ),
            demand_write_rate=(
                None
                if data.get("demand_write_rate") is None
                else float(data["demand_write_rate"])
            ),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FleetSpec":
        """Load a JSON spec file (the ``pcm-scrub fleet`` input format)."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"fleet spec {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON form (checkpoint validation)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
