"""Per-phase wall-time profiling.

A :class:`Profiler` accumulates named spans (``tabulate``, ``simulate``,
``visit``, ``demand``, ``decode``, ...) into call counts and total seconds;
its :meth:`Profiler.report` is a plain dict that rides on
:class:`repro.sim.results.RunResult` and merges across sweep runs with
:func:`merge_profiles`.

Spans nest: ``visit`` encloses ``demand`` and ``decode``, so totals are
*inclusive* - the report answers "where does wall-clock go" per phase, not
a strict flame-graph decomposition.

The shared :data:`NULL_PROFILER` keeps disabled runs cheap: its
:meth:`NullProfiler.span` hands back one reusable no-op context manager,
so a profiled-off hot path costs a method call per span.
"""

from __future__ import annotations

import time as _time
from collections.abc import Sequence


class _Span:
    """Context manager charging its elapsed wall time to one phase."""

    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add(self._name, _time.perf_counter() - self._started)


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Profiler:
    """Accumulates per-phase call counts and wall-clock seconds."""

    enabled = True

    def __init__(self) -> None:
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to phase ``name`` directly."""
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def report(self) -> dict[str, dict[str, float]]:
        """``{phase: {"calls": n, "seconds": s}}``, insertion-ordered."""
        return {
            name: {"calls": self._calls[name], "seconds": self._seconds[name]}
            for name in self._calls
        }

    def reset(self) -> None:
        self._calls.clear()
        self._seconds.clear()


class NullProfiler(Profiler):
    """Profiling off: spans are shared no-ops, nothing accumulates."""

    enabled = False

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def add(self, name: str, seconds: float) -> None:
        pass


#: Shared default instance; safe because it never accumulates state.
NULL_PROFILER = NullProfiler()


def merge_profiles(
    profiles: Sequence[dict[str, dict[str, float]] | None],
) -> dict[str, dict[str, float]]:
    """Sum per-run profile reports phase-by-phase (``None`` runs skipped)."""
    merged: dict[str, dict[str, float]] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, entry in profile.items():
            slot = merged.setdefault(name, {"calls": 0, "seconds": 0.0})
            slot["calls"] += entry["calls"]
            slot["seconds"] += entry["seconds"]
    return merged
