"""Periodic time-series sampling of a running simulation.

The engine calls :meth:`PeriodicSampler.advance_to` before processing each
event and :meth:`PeriodicSampler.finalize` after the last one; the sampler
invokes its collect callback at every multiple of ``every`` simulated
seconds that has elapsed, plus exactly once at the horizon.  Samples land
in a :class:`TimeSeries`: one ``{"t": ..., **metrics}`` dict per sample,
JSON-serializable as-is.

Because samples are taken at deterministic simulated times and read only
deterministic run state, a run's time series is bit-identical whether it
executed inline or on a worker process.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from pathlib import Path


class TimeSeries:
    """An ordered list of metric snapshots at simulated times."""

    def __init__(self, samples: list[dict] | None = None):
        self.samples: list[dict] = samples if samples is not None else []

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def append(self, t: float, values: dict) -> None:
        self.samples.append({"t": float(t), **values})

    @property
    def final(self) -> dict:
        """The last sample (taken exactly at the horizon)."""
        if not self.samples:
            raise IndexError("time series is empty")
        return self.samples[-1]

    def column(self, name: str) -> list:
        """One metric across all samples (missing values become ``None``)."""
        return [sample.get(name) for sample in self.samples]

    def to_dict(self) -> dict:
        return {"samples": self.samples}

    @classmethod
    def from_dict(cls, blob: dict) -> "TimeSeries":
        return cls(list(blob["samples"]))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self.samples == other.samples


class PeriodicSampler:
    """Drives a collect callback every ``every`` simulated seconds.

    ``collect(t)`` must return the metric dict for simulated time ``t``;
    the sampler owns *when*, the caller owns *what*.
    """

    def __init__(
        self,
        every: float,
        collect: Callable[[float], dict],
        series: TimeSeries | None = None,
    ):
        if every <= 0:
            raise ValueError("sampling period must be positive")
        self.every = every
        self.collect = collect
        self.series = series if series is not None else TimeSeries()
        self._next = every

    @property
    def next_due(self) -> float:
        """Absolute simulated time of the next pending sample.

        Fast-forward jumps must not charge visits past this instant: the
        sample taken at ``next_due`` has to see exactly the ledger state
        the naive walk would have accumulated by then.
        """
        return self._next

    def advance_to(self, now: float) -> None:
        """Take all samples due strictly before simulated time ``now``."""
        while self._next < now:
            self.series.append(self._next, self.collect(self._next))
            self._next += self.every

    def finalize(self, horizon: float) -> TimeSeries:
        """Take due samples up to the horizon plus one exactly at it."""
        while self._next < horizon:
            self.series.append(self._next, self.collect(self._next))
            self._next += self.every
        self.series.append(horizon, self.collect(horizon))
        return self.series


def merge_timeseries(series: Sequence[TimeSeries | None]) -> TimeSeries:
    """Sum per-run time series sample-by-sample into a fleet view.

    All runs must have sampled at the same simulated times (same horizon
    and ``sample_every`` - true for any sweep over one configuration).
    Numeric metrics add; histogram lists add element-wise; ``None`` entries
    (runs without sampling) are skipped.
    """
    alive = [s for s in series if s is not None and len(s)]
    if not alive:
        return TimeSeries()
    length = len(alive[0])
    if any(len(s) != length for s in alive):
        raise ValueError("cannot merge time series of different lengths")
    merged = TimeSeries()
    for index in range(length):
        rows = [s.samples[index] for s in alive]
        times = {row["t"] for row in rows}
        if len(times) != 1:
            raise ValueError("cannot merge time series sampled at different times")
        combined: dict = {}
        for row in rows:
            for key, value in row.items():
                if key == "t":
                    continue
                if isinstance(value, list):
                    previous = combined.get(key)
                    if previous is None:
                        combined[key] = list(value)
                    else:
                        combined[key] = [a + b for a, b in zip(previous, value)]
                elif isinstance(value, (int, float)):
                    combined[key] = combined.get(key, 0) + value
                else:
                    combined.setdefault(key, value)
        merged.append(times.pop(), combined)
    return merged
