"""Observability configuration.

:class:`ObsConfig` rides on :class:`repro.sim.config.SimulationConfig` and
selects which of the three pillars a run collects:

* ``trace`` - structured event tracing (:mod:`repro.obs.trace`),
* ``sample_every`` - periodic time-series sampling (:mod:`repro.obs.sampler`),
* ``profile`` - per-phase wall-time profiling (:mod:`repro.obs.profile`).

The default is everything off, which must cost (essentially) nothing: the
engine keeps a single no-op tracer/profiler check per visit and draws no
extra randomness, so disabled runs are bit-identical to runs of a build
without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObsConfig:
    """What telemetry one simulation run collects (default: nothing)."""

    #: Record structured events in memory (``RunResult.trace``).
    trace: bool = False
    #: Simulated seconds between time-series samples (``None`` disables
    #: sampling).  A final sample is always taken exactly at the horizon,
    #: so the last sample of ``RunResult.timeseries`` agrees with the
    #: end-of-run :class:`repro.core.stats.ScrubStats` aggregates.
    sample_every: float | None = None
    #: Accumulate per-phase wall-time spans (``RunResult.profile``).
    profile: bool = False

    def __post_init__(self) -> None:
        if self.sample_every is not None and self.sample_every <= 0:
            raise ValueError("sample_every must be positive (or None)")

    @property
    def enabled(self) -> bool:
        """True when any pillar is on (the engine then builds telemetry)."""
        return self.trace or self.profile or self.sample_every is not None
