"""Structured event tracing.

The simulation engine and the scrub policies emit *typed* events - each
event name has a declared field set (:data:`EVENT_FIELDS`) and tracers
validate emissions against it, so a trace is a schema'd record of what the
scrubber observed and did, not free-form logging.

Three tracer implementations share the tiny :class:`Tracer` interface:

* :class:`NullTracer` - the default; ``enabled`` is ``False`` so hot paths
  skip even building the event payload;
* :class:`RecordingTracer` - appends events to an in-memory list.  This is
  what runs inside (possibly worker) processes: the list rides back on
  :class:`repro.sim.results.RunResult` and is merged/persisted by the
  parent;
* :class:`JsonlTracer` - streams one JSON object per line to a file,
  for direct API use on long single runs.

:func:`merge_traces` interleaves per-run event lists deterministically
(by time, then run order, then per-run sequence), so a sweep's merged
trace is identical whether the runs executed serially or on a pool.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import IO

#: Event schema: required payload fields per event type (beyond the
#: implicit ``event``/``t``/``seq`` every record carries).  Emissions may
#: add extra fields; missing required fields or unknown event names raise.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    #: One scrub pass over a region: what the hardware observed and did.
    "scrub_visit": (
        "region",
        "lines",
        "errors",
        "max_errors",
        "decoded",
        "written_back",
        "uncorrectable",
        "next_interval",
    ),
    #: Lines found uncorrectable (at a scrub visit or a demand read).
    "uncorrectable": ("region", "count"),
    #: Lines retired to spares.
    "retire": ("region", "count"),
    #: Spare-pool grant for a retirement request.
    "spare_allocated": ("region", "requested", "granted"),
    #: Poisson demand writes replayed against a region since its last visit.
    "demand_burst": ("region", "lines", "writes"),
    #: An adaptive policy moved a region's scrub interval.
    "interval_adapted": ("region", "action", "interval", "worst"),
    #: Fast-forward folded ``skipped`` consecutive zero-error visits of a
    #: region into one bulk charge and resumed at ``to_time``.
    "fast_forward": ("region", "skipped", "to_time"),
    #: Fast-forward stood down (once per run per cause: ``read_refresh``,
    #: ``policy``, ``demand``, ``detector_interleaving``).
    "fast_forward_disabled": ("reason",),
    #: Trace header (once per run, at t=0): which visit engine produced the
    #: run (``scalar`` or ``batch``), so downstream tooling can tell traces
    #: apart.
    "engine_mode": ("engine",),
}


def _validate(event: str, fields: dict) -> None:
    try:
        required = EVENT_FIELDS[event]
    except KeyError:
        raise ValueError(
            f"unknown trace event {event!r}; known: {sorted(EVENT_FIELDS)}"
        ) from None
    missing = [name for name in required if name not in fields]
    if missing:
        raise ValueError(f"event {event!r} missing fields {missing}")


class Tracer:
    """No-op base tracer.

    ``enabled`` is the hot-path guard: emitters check it before building
    the event payload, so a disabled tracer costs one attribute read.
    """

    enabled: bool = False

    def emit(self, event: str, time: float, **fields) -> None:
        """Record one event at simulated ``time``."""


#: Shared default instance; safe because the null tracer is stateless.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Collects events as plain dicts, in emission order.

    Each record carries ``event``, ``t`` (simulated seconds), ``seq`` (a
    per-tracer emission counter - the deterministic tiebreak for merges),
    and the event's payload fields.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: str, time: float, **fields) -> None:
        _validate(event, fields)
        self.events.append(
            {"event": event, "t": float(time), "seq": len(self.events), **fields}
        )


class JsonlTracer(Tracer):
    """Streams events to a JSONL sink (a path or an open text file)."""

    enabled = True

    def __init__(self, sink: str | Path | IO[str]):
        if isinstance(sink, (str, Path)):
            self._file: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self.emitted = 0

    def emit(self, event: str, time: float, **fields) -> None:
        _validate(event, fields)
        record = {"event": event, "t": float(time), "seq": self.emitted, **fields}
        self._file.write(json.dumps(record) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_trace(events: Iterable[dict], path: str | Path) -> int:
    """Write recorded events to ``path`` as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
            count += 1
    return count


def merge_traces(traces: Sequence[Sequence[dict] | None]) -> list[dict]:
    """Deterministically interleave per-run traces into one event list.

    Each event gains a ``run`` index (position in ``traces``); the merged
    order is by ``(t, run, seq)``, which depends only on the events
    themselves - never on worker placement - so serial and pooled sweeps
    merge identically.  ``None`` entries (runs without tracing) are skipped.
    """
    merged: list[dict] = []
    for run, events in enumerate(traces):
        if not events:
            continue
        merged.extend({**event, "run": run} for event in events)
    merged.sort(key=lambda e: (e["t"], e["run"], e["seq"]))
    return merged
