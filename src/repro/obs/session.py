"""The per-run telemetry bundle the engine threads through a simulation.

:class:`Observation` owns one run's tracer, metrics registry, time series,
and profiler, built from an :class:`repro.obs.config.ObsConfig`.  The
runner creates it (or ``None`` when observability is off), hands it to the
engine, and harvests its contents onto the :class:`RunResult` - which is
also how worker processes ship telemetry back to a sweeping parent: the
bundle's products are plain picklable data.
"""

from __future__ import annotations

from .config import ObsConfig
from .metrics import MetricsRegistry
from .profile import NULL_PROFILER, Profiler
from .sampler import TimeSeries
from .trace import NULL_TRACER, RecordingTracer, Tracer


class Observation:
    """Telemetry collectors for one simulation run."""

    def __init__(self, config: ObsConfig):
        self.config = config
        self.tracer: Tracer = RecordingTracer() if config.trace else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.timeseries = TimeSeries()
        self.profiler: Profiler = Profiler() if config.profile else NULL_PROFILER

    @classmethod
    def maybe(cls, config: ObsConfig | None) -> "Observation | None":
        """An :class:`Observation` when any pillar is enabled, else ``None``."""
        if config is None or not config.enabled:
            return None
        return cls(config)

    # -- harvesting (runner-facing) ------------------------------------------

    @property
    def trace_events(self) -> list[dict] | None:
        """Recorded events, or ``None`` when tracing is off."""
        if isinstance(self.tracer, RecordingTracer):
            return self.tracer.events
        return None

    @property
    def timeseries_or_none(self) -> TimeSeries | None:
        return self.timeseries if self.config.sample_every is not None else None

    @property
    def profile_or_none(self) -> dict[str, dict[str, float]] | None:
        return self.profiler.report() if self.config.profile else None
