"""Metrics registry: counters, gauges, histograms, and named groups.

One registry per run (or per process, for process-lifetime tallies such as
the distribution-cache hit counters) replaces the ad-hoc dicts that used to
live wherever a counter was needed.  Instruments are create-on-first-use,
and :meth:`MetricsRegistry.snapshot` flattens everything into one
JSON-serializable dict - the unit the periodic sampler stores per sample.

:class:`CounterGroup` subclasses ``dict`` so existing call sites that
treat a counter set as a plain mapping (``group["memory"] += 1``,
``dict(group)``, equality against dict literals) keep working unchanged
while the group participates in registry snapshots.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time float (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bin integer histogram (last bin absorbs the overflow)."""

    __slots__ = ("bins",)

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("histogram size must be positive")
        self.bins = np.zeros(size, dtype=np.int64)

    def observe(self, values: Iterable[int] | np.ndarray) -> None:
        values = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if values.size == 0:
            return
        capped = np.minimum(values, self.bins.size - 1)
        self.bins += np.bincount(capped, minlength=self.bins.size).astype(np.int64)

    def set_from(self, bins: np.ndarray) -> None:
        """Overwrite the bins with an externally maintained histogram."""
        bins = np.asarray(bins, dtype=np.int64)
        if bins.shape != self.bins.shape:
            raise ValueError("histogram shape mismatch")
        self.bins = bins.copy()

    def reset(self) -> None:
        self.bins[:] = 0

    def to_list(self) -> list[int]:
        return [int(v) for v in self.bins]


class CounterGroup(dict):
    """A named set of integer counters with plain-``dict`` semantics."""

    def __init__(self, keys: Iterable[str]):
        super().__init__({key: 0 for key in keys})

    def reset(self) -> None:
        for key in self:
            self[key] = 0


class MetricsRegistry:
    """Create-on-first-use instrument store with a flat snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._groups: dict[str, CounterGroup] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, size: int) -> Histogram:
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.bins.size != size:
                raise ValueError(f"histogram {name!r} already has a different size")
            return existing
        return self._histograms.setdefault(name, Histogram(size))

    def group(self, name: str, keys: Iterable[str]) -> CounterGroup:
        return self._groups.setdefault(name, CounterGroup(keys))

    # -- folding in the legacy counter homes ---------------------------------

    def observe_stats(self, stats) -> None:
        """Fold a :class:`repro.core.stats.ScrubStats` ledger into gauges.

        Every key of ``stats.summary()`` becomes a gauge, the energy
        breakdown lands under ``energy.<stage>``, and the observed
        error-count histogram is mirrored into ``observed_errors``.  Called
        at each sample, so the time series *is* the stats ledger over time
        and the final sample matches the end-of-run aggregates exactly.
        """
        for key, value in stats.summary().items():
            self.gauge(key).set(value)
        for stage, joules in stats.energy_breakdown().items():
            self.gauge(f"energy.{stage}").set(joules)
        self.histogram(
            "observed_errors", stats.error_histogram.size
        ).set_from(stats.error_histogram)

    def snapshot(self) -> dict:
        """Flat JSON-serializable view: scalars plus histogram bin lists."""
        out: dict = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, group in self._groups.items():
            for key, value in group.items():
                out[f"{name}.{key}"] = value
        for name, histogram in self._histograms.items():
            out[name] = histogram.to_list()
        return out

    def reset(self) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            for instrument in store.values():
                instrument.reset()
        for group in self._groups.values():
            group.reset()


#: Process-lifetime registry for cross-run tallies (e.g. the distribution
#: tabulation cache in :mod:`repro.sim.runner`).  Per-run telemetry uses a
#: fresh registry on its :class:`repro.obs.session.Observation`.
GLOBAL_REGISTRY = MetricsRegistry()
