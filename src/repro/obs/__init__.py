"""Observability: tracing, metrics/time-series, and profiling.

Three pillars, all zero-overhead when disabled (the default):

* **structured event tracing** (:mod:`repro.obs.trace`) - typed events
  (``scrub_visit``, ``uncorrectable``, ``retire``, ``spare_allocated``,
  ``demand_burst``, ``interval_adapted``) emitted by the population engine
  and the adaptive policies, recorded in memory or streamed as JSONL;
* **metrics + time series** (:mod:`repro.obs.metrics`,
  :mod:`repro.obs.sampler`) - a counters/gauges/histograms registry
  snapshotted every N simulated seconds, with a final sample exactly at
  the horizon that matches the run's end-of-run aggregates; process-wide
  subsystem telemetry also lands in :data:`GLOBAL_REGISTRY` (the
  distribution-cache and ``surrogate_memo`` counter groups, the
  ``screen_*`` / ``provision_*`` / ``surrogate_batch_*`` gauges);
* **profiling** (:mod:`repro.obs.profile`) - per-phase wall-time spans
  (tabulate / simulate / visit / demand / decode) collected into a report.

Enable any combination per run through
:class:`repro.obs.config.ObsConfig` on
:class:`repro.sim.config.SimulationConfig`; harvest the results from
``RunResult.trace`` / ``RunResult.timeseries`` / ``RunResult.profile``.
Sweeps merge per-run telemetry with :func:`merge_traces`,
:func:`merge_timeseries`, and :func:`merge_profiles` - deterministic
regardless of worker placement.  See ``examples/observability.py``.
"""

from __future__ import annotations

from .config import ObsConfig
from .metrics import (
    GLOBAL_REGISTRY,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import NULL_PROFILER, NullProfiler, Profiler, merge_profiles
from .sampler import PeriodicSampler, TimeSeries, merge_timeseries
from .session import Observation
from .trace import (
    EVENT_FIELDS,
    NULL_TRACER,
    JsonlTracer,
    RecordingTracer,
    Tracer,
    merge_traces,
    write_trace,
)

__all__ = [
    "EVENT_FIELDS",
    "GLOBAL_REGISTRY",
    "NULL_PROFILER",
    "NULL_TRACER",
    "Counter",
    "CounterGroup",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NullProfiler",
    "Observation",
    "ObsConfig",
    "PeriodicSampler",
    "Profiler",
    "RecordingTracer",
    "TimeSeries",
    "Tracer",
    "merge_profiles",
    "merge_timeseries",
    "merge_traces",
    "write_trace",
]
