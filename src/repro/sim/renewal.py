"""Renewal analysis of threshold scrub: exact rates and horizon counts.

Under an idle workload, one line's life under a threshold policy is a
renewal process: it is (re)written, accumulates drift errors while scrub
visits observe it every ``T`` seconds, and the cycle ends at the first
visit whose observed count reaches the write-back threshold (a write) or
exceeds the correction strength (an uncorrectable error).  Everything the
benchmarks measure - UE rate, scrub-write rate, decode fraction - is a
ratio of cycle expectations, which this module computes exactly by
propagating the error-count distribution over visit ages:

* at age ``a_n = n*T`` a cell that had not yet crossed does so within the
  next interval with the conditional probability
  ``p_n = (F(a_{n+1}) - F(a_n)) / (1 - F(a_n))`` (``F`` is the crossing
  mixture CDF), so counts evolve by independent binomial increments;
* states ``k < theta`` survive; ``theta <= k <= t`` ends the cycle in a
  write-back; ``k > t`` ends it in a UE.

Two views of the same propagation:

* :meth:`RenewalModel.solve` - steady-state per-second rates (cycle
  expectation ratios), the classic renewal-reward answer;
* :meth:`RenewalModel.finite_horizon` - *exact* expected counts over a
  finite horizon of ``V`` aligned visits, via the discrete renewal
  recursion over the per-visit cycle-resolution probabilities.  This is
  the transient-corrected form: a horizon of a few cycles carries up to
  half a cycle of bias per line when approximated by ``rate x horizon``,
  which the recursion eliminates entirely.

The model is exact for the population engine's own assumptions (idle
lines, iid uniform symbols, no wear, single region so every visit lands
on the aligned grid ``T, 2T, ...``), which makes it a second independent
implementation to validate the Monte-Carlo engine against (benchmark A6)
- and a design tool: sweeping ``(T, t, theta)`` costs microseconds per
point instead of a simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .analytic import CrossingDistribution, _binomial_pmf


def aligned_visits(horizon: float, interval: float) -> int:
    """Aligned scrub visits within ``horizon``: ``|{k >= 1 : k*T <= horizon}|``.

    Uses the engine's own float comparisons (a plain floor plus boundary
    fix-ups) so visits landing exactly on the horizon are counted
    identically by the simulation, the scalar solver, and the batched
    kernel (:mod:`repro.sim.renewal_batch`).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if interval <= 0:
        raise ValueError("interval must be positive")
    visits = int(math.floor(horizon / interval))
    while (visits + 1) * interval <= horizon:
        visits += 1
    while visits > 0 and visits * interval > horizon:
        visits -= 1
    return visits


def finite_horizon_recursion(
    u: list[float], w: list[float], visits: int
) -> tuple[float, float, float]:
    """Scalar reference for the discrete renewal recursion.

    ``u`` / ``w`` hold the probabilities that a fresh cycle resolves in a
    UE / write-back exactly at its ``m``-th visit (entry ``m - 1``), both
    padded to at least ``visits`` entries.  Returns ``(expected_ue,
    expected_writes, no_ue_probability)`` after ``visits`` aligned visits.
    This pure-Python ``O(V^2)`` loop is the oracle the vectorized kernel
    (:func:`repro.sim.renewal_batch.finite_horizon_batch`) is pinned
    against by the ``surrogate_batch`` equivalence law.
    """
    n_ue = [0.0] * (visits + 1)
    n_write = [0.0] * (visits + 1)
    no_ue = [1.0] * (visits + 1)
    for v in range(1, visits + 1):
        total_ue = 0.0
        total_write = 0.0
        survive = 1.0
        for m in range(1, v + 1):
            um, wm = u[m - 1], w[m - 1]
            tail = v - m
            total_ue += um + (um + wm) * n_ue[tail]
            total_write += wm + (um + wm) * n_write[tail]
            survive += wm * no_ue[tail] - (um + wm)
        n_ue[v] = total_ue
        n_write[v] = total_write
        no_ue[v] = min(1.0, max(0.0, survive))
    return n_ue[visits], n_write[visits], no_ue[visits]


@dataclass(frozen=True)
class RenewalSolution:
    """Steady-state per-line rates for one (T, t, theta) configuration."""

    #: Scrub interval (seconds).
    interval: float
    #: Expected visits per renewal cycle.
    expected_cycle_visits: float
    #: Probability a cycle ends in an uncorrectable error.
    ue_probability: float
    #: Uncorrectable errors per line per second.
    ue_rate: float
    #: Scrub write-backs per line per second (UE recoveries excluded).
    write_rate: float
    #: Fraction of visits whose line contains at least one error
    #: (= decode fraction under a detector-gated scheme).
    error_visit_fraction: float

    @property
    def writes_per_visit(self) -> float:
        """Scrub writes per line visit (compare against ledger ratios)."""
        return self.write_rate * self.interval


@dataclass(frozen=True)
class FiniteHorizonSolution:
    """Exact per-line expectations over a finite horizon of ``V`` visits.

    All quantities are per *line*; multiply by the population size for
    device/fleet totals.  ``expected_ue``/``expected_writes`` are exact
    expectations of the engine's ledger counters (no steady-state
    approximation), and ``no_ue_probability`` is the exact probability a
    line survives the whole horizon without an uncorrectable error.
    """

    #: Scrub interval (seconds).
    interval: float
    #: Requested horizon (seconds).
    horizon: float
    #: Aligned scrub visits within the horizon (``k*T <= horizon``).
    visits: int
    #: Expected uncorrectable errors per line over the horizon.
    expected_ue: float
    #: Expected scrub write-backs per line (UE recoveries excluded).
    expected_writes: float
    #: Probability the line sees zero uncorrectable errors.
    no_ue_probability: float

    @property
    def ue_rate(self) -> float:
        """Horizon-averaged UE rate per line per second."""
        return self.expected_ue / self.horizon if self.horizon > 0 else 0.0

    @property
    def write_rate(self) -> float:
        """Horizon-averaged write-back rate per line per second."""
        return self.expected_writes / self.horizon if self.horizon > 0 else 0.0


class RenewalModel:
    """Exact threshold-scrub renewal solver over a crossing distribution."""

    def __init__(
        self,
        distribution: CrossingDistribution,
        cells_per_line: int,
        max_visits: int = 20_000,
        tolerance: float = 1e-12,
    ):
        if cells_per_line <= 0:
            raise ValueError("cells_per_line must be positive")
        if max_visits < 1:
            raise ValueError("max_visits must be >= 1")
        self.distribution = distribution
        self.cells_per_line = cells_per_line
        self.max_visits = max_visits
        self.tolerance = tolerance

    def _propagate(
        self, interval: float, t_ecc: int, threshold: int, max_visits: int
    ) -> tuple[list[float], list[float], float, float, float, float, float]:
        """One fresh cycle's count-state propagation over visit ages.

        Returns ``(ue_by_visit, write_by_visit, end_ue, end_write,
        expected_visits, error_visits, leftover)`` where the per-visit
        lists hold the probability that the cycle resolves (in a UE /
        write-back) exactly at visit ``m`` (1-indexed; entry ``m - 1``),
        and the scalars are accumulated in the same order as always so
        :meth:`solve` stays bit-identical to its historical results.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 1 <= threshold <= t_ecc:
            raise ValueError("need 1 <= threshold <= t_ecc")
        C = self.cells_per_line

        # Surviving states: error counts 0..threshold-1.
        survive = np.zeros(threshold)
        survive[0] = 1.0

        ue_by_visit: list[float] = []
        write_by_visit: list[float] = []
        end_write = 0.0
        end_ue = 0.0
        expected_visits = 0.0
        error_visits = 0.0
        prev_f = 0.0

        for n in range(1, max_visits + 1):
            age = n * interval
            f = float(self.distribution.cdf(age))
            denom = 1.0 - prev_f
            p_step = 0.0 if denom <= 0 else min(1.0, (f - prev_f) / denom)
            prev_f = f

            alive = float(survive.sum())
            if alive <= self.tolerance:
                break
            expected_visits += alive

            visit_write = 0.0
            visit_ue = 0.0
            next_survive = np.zeros(threshold)
            for k in range(threshold):
                mass = survive[k]
                if mass <= 0:
                    continue
                remaining = C - k
                # Increments j = 0..(t_ecc - k) kept explicitly; beyond is UE.
                pmf = _binomial_pmf(remaining, p_step, t_ecc - k)
                for j, pj in enumerate(pmf):
                    total = k + j
                    share = mass * float(pj)
                    if share == 0.0:
                        continue
                    if total < threshold:
                        next_survive[total] += share
                        if total > 0:
                            error_visits += share
                    else:  # threshold <= total <= t_ecc: write-back
                        end_write += share
                        visit_write += share
                        error_visits += share
                ue_share = mass * max(0.0, 1.0 - float(pmf.sum()))
                end_ue += ue_share
                visit_ue += ue_share
                error_visits += ue_share
            ue_by_visit.append(visit_ue)
            write_by_visit.append(visit_write)
            survive = next_survive

        leftover = float(survive.sum())
        return (
            ue_by_visit, write_by_visit, end_ue, end_write,
            expected_visits, error_visits, leftover,
        )

    def solve(self, interval: float, t_ecc: int, threshold: int) -> RenewalSolution:
        """Propagate the count distribution until the cycle resolves.

        ``threshold`` in ``[1, t_ecc]`` as for the policies; ``threshold=1``
        recovers the immediate-write-back (basic/strong/light) algorithm.
        """
        (
            _, _, end_ue, end_write, expected_visits, error_visits, leftover,
        ) = self._propagate(interval, t_ecc, threshold, self.max_visits)

        resolved = end_write + end_ue
        if resolved + leftover < 1e-6:
            raise RuntimeError("renewal propagation lost probability mass")
        # Treat truncated mass as censored at max_visits (conservative: it
        # inflates the cycle length but ends in neither write nor UE).
        total_cycles = resolved if resolved > 0 else 1.0
        cycle_visits = expected_visits / total_cycles
        cycle_seconds = cycle_visits * interval
        return RenewalSolution(
            interval=interval,
            expected_cycle_visits=cycle_visits,
            ue_probability=end_ue / total_cycles,
            ue_rate=(end_ue / total_cycles) / cycle_seconds,
            write_rate=(end_write / total_cycles) / cycle_seconds,
            error_visit_fraction=error_visits / max(expected_visits, 1e-300),
        )

    def finite_horizon(
        self, interval: float, t_ecc: int, threshold: int, horizon: float
    ) -> FiniteHorizonSolution:
        """Exact expected counts over a horizon of aligned visits.

        The engine visits a single-region device at ``T, 2T, ...`` and
        includes a visit landing exactly on the horizon boundary, so the
        line sees ``V = floor(horizon / T)`` visits.  Every cycle - the
        first one included, because lines are written fresh at ``t = 0``
        and every resolution rewrites the line *at a visit* - is an iid
        copy aligned to the visit grid, so with ``u_m`` / ``w_m`` the
        probabilities that a fresh cycle resolves in a UE / write-back
        exactly at its ``m``-th visit, the expected UE count over ``v``
        remaining visits obeys the discrete renewal recursion

        ``N_ue(v) = sum_{m<=v} (u_m + (u_m + w_m) * N_ue(v - m))``

        (and symmetrically for write-backs).  Cycles still unresolved at
        the horizon contribute their resolution mass nothing - exactly
        the censoring the engine applies.  ``P(no UE in v visits)``
        satisfies the same kind of recursion with the censored mass
        surviving: ``q(v) = 1 - sum_{m<=v}(u_m + w_m) + sum_{m<=v} w_m *
        q(v - m)``.  Cost is ``O(V^2)`` on top of one cycle propagation
        capped at ``V`` visits - cheap for screening horizons (hundreds
        of visits), and much cheaper than :meth:`solve` when cycles are
        long-lived.
        """
        visits = aligned_visits(horizon, interval)
        if visits == 0:
            return FiniteHorizonSolution(
                interval=interval, horizon=horizon, visits=0,
                expected_ue=0.0, expected_writes=0.0, no_ue_probability=1.0,
            )

        ue_by_visit, write_by_visit, *_ = self._propagate(
            interval, t_ecc, threshold, min(self.max_visits, visits)
        )
        u = ue_by_visit + [0.0] * (visits - len(ue_by_visit))
        w = write_by_visit + [0.0] * (visits - len(write_by_visit))

        expected_ue, expected_writes, no_ue = finite_horizon_recursion(u, w, visits)
        return FiniteHorizonSolution(
            interval=interval,
            horizon=horizon,
            visits=visits,
            expected_ue=expected_ue,
            expected_writes=expected_writes,
            no_ue_probability=no_ue,
        )
