"""Renewal analysis of threshold scrub: steady-state rates without MC.

Under an idle workload, one line's life under a threshold policy is a
renewal process: it is (re)written, accumulates drift errors while scrub
visits observe it every ``T`` seconds, and the cycle ends at the first
visit whose observed count reaches the write-back threshold (a write) or
exceeds the correction strength (an uncorrectable error).  Everything the
benchmarks measure - UE rate, scrub-write rate, decode fraction - is a
ratio of cycle expectations, which this module computes exactly by
propagating the error-count distribution over visit ages:

* at age ``a_n = n*T`` a cell that had not yet crossed does so within the
  next interval with the conditional probability
  ``p_n = (F(a_{n+1}) - F(a_n)) / (1 - F(a_n))`` (``F`` is the crossing
  mixture CDF), so counts evolve by independent binomial increments;
* states ``k < theta`` survive; ``theta <= k <= t`` ends the cycle in a
  write-back; ``k > t`` ends it in a UE.

The model is exact for the population engine's own assumptions (idle
lines, iid uniform symbols, no wear), which makes it a second independent
implementation to validate the Monte-Carlo engine against (benchmark A6)
- and a design tool: sweeping ``(T, t, theta)`` costs microseconds per
point instead of a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .analytic import CrossingDistribution, _binomial_pmf


@dataclass(frozen=True)
class RenewalSolution:
    """Steady-state per-line rates for one (T, t, theta) configuration."""

    #: Scrub interval (seconds).
    interval: float
    #: Expected visits per renewal cycle.
    expected_cycle_visits: float
    #: Probability a cycle ends in an uncorrectable error.
    ue_probability: float
    #: Uncorrectable errors per line per second.
    ue_rate: float
    #: Scrub write-backs per line per second (UE recoveries excluded).
    write_rate: float
    #: Fraction of visits whose line contains at least one error
    #: (= decode fraction under a detector-gated scheme).
    error_visit_fraction: float

    @property
    def writes_per_visit(self) -> float:
        """Scrub writes per line visit (compare against ledger ratios)."""
        return self.write_rate * self.interval


class RenewalModel:
    """Exact threshold-scrub renewal solver over a crossing distribution."""

    def __init__(
        self,
        distribution: CrossingDistribution,
        cells_per_line: int,
        max_visits: int = 20_000,
        tolerance: float = 1e-12,
    ):
        if cells_per_line <= 0:
            raise ValueError("cells_per_line must be positive")
        if max_visits < 1:
            raise ValueError("max_visits must be >= 1")
        self.distribution = distribution
        self.cells_per_line = cells_per_line
        self.max_visits = max_visits
        self.tolerance = tolerance

    def solve(self, interval: float, t_ecc: int, threshold: int) -> RenewalSolution:
        """Propagate the count distribution until the cycle resolves.

        ``threshold`` in ``[1, t_ecc]`` as for the policies; ``threshold=1``
        recovers the immediate-write-back (basic/strong/light) algorithm.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 1 <= threshold <= t_ecc:
            raise ValueError("need 1 <= threshold <= t_ecc")
        C = self.cells_per_line

        # Surviving states: error counts 0..threshold-1.
        survive = np.zeros(threshold)
        survive[0] = 1.0

        end_write = 0.0
        end_ue = 0.0
        expected_visits = 0.0
        error_visits = 0.0
        prev_f = 0.0

        for n in range(1, self.max_visits + 1):
            age = n * interval
            f = float(self.distribution.cdf(age))
            denom = 1.0 - prev_f
            p_step = 0.0 if denom <= 0 else min(1.0, (f - prev_f) / denom)
            prev_f = f

            alive = float(survive.sum())
            if alive <= self.tolerance:
                break
            expected_visits += alive

            next_survive = np.zeros(threshold)
            for k in range(threshold):
                mass = survive[k]
                if mass <= 0:
                    continue
                remaining = C - k
                # Increments j = 0..(t_ecc - k) kept explicitly; beyond is UE.
                pmf = _binomial_pmf(remaining, p_step, t_ecc - k)
                for j, pj in enumerate(pmf):
                    total = k + j
                    share = mass * float(pj)
                    if share == 0.0:
                        continue
                    if total < threshold:
                        next_survive[total] += share
                        if total > 0:
                            error_visits += share
                    else:  # threshold <= total <= t_ecc: write-back
                        end_write += share
                        error_visits += share
                ue_share = mass * max(0.0, 1.0 - float(pmf.sum()))
                end_ue += ue_share
                error_visits += ue_share
            survive = next_survive

        resolved = end_write + end_ue
        leftover = float(survive.sum())
        if resolved + leftover < 1e-6:
            raise RuntimeError("renewal propagation lost probability mass")
        # Treat truncated mass as censored at max_visits (conservative: it
        # inflates the cycle length but ends in neither write nor UE).
        total_cycles = resolved if resolved > 0 else 1.0
        cycle_visits = expected_visits / total_cycles
        cycle_seconds = cycle_visits * interval
        return RenewalSolution(
            interval=interval,
            expected_cycle_visits=cycle_visits,
            ue_probability=end_ue / total_cycles,
            ue_rate=(end_ue / total_cycles) / cycle_seconds,
            write_rate=(end_write / total_cycles) / cycle_seconds,
            error_visit_fraction=error_visits / max(expected_visits, 1e-300),
        )
