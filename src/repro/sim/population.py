"""The population Monte-Carlo engine - the reproduction's workhorse.

Simulating a year of scrubbing over many thousands of lines is intractable
if every cell's resistance is stepped through time.  Two observations make
it cheap without approximating the physics:

1. **Crossing times are deterministic per write.**  Given the drawn
   ``(r0, nu)`` of a cell, the moment it will misread is a closed form
   (:meth:`repro.pcm.drift.DriftModel.crossing_time`), so the randomness
   can be sampled once per write instead of per time step.

2. **Only the smallest few crossing times per line matter.**  A line is
   uncorrectable once its error count exceeds the ECC strength ``t <= 8``;
   what happens after the ~24th error is irrelevant.  So each line keeps
   only its ``keep`` smallest crossing times, drawn directly as order
   statistics of the cell-crossing mixture distribution
   (:meth:`repro.sim.analytic.CrossingDistribution.sample_smallest`) -
   O(keep) per line per write, independent of cells-per-line.

The same trick handles endurance: each line keeps its ``keep`` smallest
per-cell write lifetimes (drawn once - lifetimes are physical, not
per-write), and its stuck-cell count is a lookup against the line's write
counter.

:class:`PopulationEngine` plays scrub visits (via a
:class:`repro.core.scheduler.ScrubScheduler`) and Poisson demand traffic
against this state, delegating all decisions to a
:class:`repro.core.policy.ScrubPolicy` and charging a
:class:`repro.core.stats.ScrubStats` ledger.
"""

from __future__ import annotations

import numpy as np

from ..core.policy import ScrubPolicy
from ..core.scheduler import ScrubScheduler
from ..core.stats import ScrubStats
from ..obs.profile import NULL_PROFILER
from ..obs.sampler import PeriodicSampler
from ..obs.session import Observation
from ..obs.trace import NULL_TRACER
from ..pcm.endurance import EnduranceModel
from ..pcm.thermal import ThermalProfile
from ..verify.invariants import NULL_VERIFIER, Verifier
from ..workloads.generators import DemandRates, idle_rates
from .analytic import CrossingDistribution
from .rng import RngStreams


class LinePopulation:
    """Order-statistics state for a population of lines.

    Parameters
    ----------
    num_lines, cells_per_line:
        Geometry (cells per line counts data + check cells; the check bits
        drift like any other cells and are protected by the same code).
    distribution:
        Crossing-time mixture to draw from.
    endurance:
        Endurance model, or ``None`` to disable wear-out.
    rng:
        Stream for all population draws.
    keep:
        Order statistics retained per line; must comfortably exceed the
        strongest ECC strength simulated.
    thermal:
        Optional time-varying temperature profile.  When given, the
        ``distribution`` must be tabulated at the profile's *reference*
        temperature; sampled crossing ages are mapped to wall-clock
        through the profile's effective-age inverse.
    """

    def __init__(
        self,
        num_lines: int,
        cells_per_line: int,
        distribution: CrossingDistribution,
        rng: np.random.Generator,
        endurance: EnduranceModel | None = None,
        keep: int = 24,
        thermal: "ThermalProfile | None" = None,
    ):
        if num_lines <= 0 or cells_per_line <= 0:
            raise ValueError("geometry must be positive")
        if keep <= 0 or keep > cells_per_line:
            raise ValueError("keep must be in [1, cells_per_line]")
        self.num_lines = num_lines
        self.cells_per_line = cells_per_line
        self.distribution = distribution
        self.keep = keep
        self.rng = rng
        self.thermal = thermal
        #: Stuck-cell mismatch probability on a data change: a frozen cell
        #: disagrees with fresh uniform data unless it matches by luck.
        levels = distribution.spec.num_levels
        self._mismatch_probability = (levels - 1) / levels

        #: Absolute crossing times, ascending per row, inf past the last.
        self.crossing = np.full((num_lines, keep), np.inf)
        #: Cumulative full-line writes (demand + scrub + recovery).
        self.writes = np.zeros(num_lines, dtype=np.int64)
        #: Stuck cells currently conflicting with stored data.
        self.hard_mismatch = np.zeros(num_lines, dtype=np.int16)
        #: Sub-line wear accumulated by partial rewrites (cells/C units).
        self._fractional_wear = np.zeros(num_lines)
        #: Per-region fast-forward caches; armed by
        #: :meth:`enable_region_tracking`, ``None`` keeps every mutator on
        #: its exact pre-tracking path.
        self._region_size: int | None = None

        self._endurance = endurance
        if endurance is not None:
            # Smallest `keep` of `cells_per_line` per-cell lifetimes, per
            # line, drawn once: lifetimes belong to the physical cells.
            self.lifetime = self._lifetime_order_statistics(endurance, num_lines)
        else:
            self.lifetime = np.full((num_lines, keep), np.inf)

        # Everything is freshly written at t = 0.
        self.rewrite(np.arange(num_lines), np.zeros(num_lines), data_changed=True)
        # The initial fill is not an operational write; reset the counter.
        self.writes[:] = 0

    def _lifetime_order_statistics(
        self, endurance: EnduranceModel, num_lines: int
    ) -> np.ndarray:
        """Smallest ``keep`` of ``cells_per_line`` lifetimes, per line."""
        u = np.zeros((num_lines, self.keep))
        prev = np.zeros(num_lines)
        for i in range(self.keep):
            v = self.rng.random(num_lines)
            step = 1.0 - np.power(v, 1.0 / (self.cells_per_line - i))
            prev = prev + (1.0 - prev) * step
            u[:, i] = prev
        # Invert the lognormal CDF at the uniform order statistics.
        sigma_ln = endurance.spec.sigma_log10 * np.log(10.0)
        if sigma_ln == 0:
            return np.full(u.shape, endurance.spec.mean_writes)
        mu_ln = np.log(endurance.spec.mean_writes) - 0.5 * sigma_ln**2
        from scipy.special import ndtri

        return np.exp(mu_ln + sigma_ln * ndtri(u))

    # -- queries ------------------------------------------------------------

    def drift_error_counts(
        self, idx: np.ndarray, now: float | np.ndarray
    ) -> np.ndarray:
        """Drifted cells per line at time ``now`` (capped at ``keep``).

        ``idx`` may be any integer index shape; the result matches it.  A
        2-D ``(regions, region_size)`` block with a per-region ``now``
        array evaluates a whole visit cohort in one comparison.
        """
        rows = self.crossing[idx]
        now = np.asarray(now, dtype=np.float64)
        if now.ndim:
            now = now.reshape(now.shape + (1,) * (rows.ndim - now.ndim))
        return (rows <= now).sum(axis=-1).astype(np.int64)

    def stuck_counts(self, idx: np.ndarray) -> np.ndarray:
        """Stuck (worn-out) cells per line (capped at ``keep``)."""
        return (
            (self.lifetime[idx] <= self.writes[idx][..., None])
            .sum(axis=-1)
            .astype(np.int64)
        )

    def error_counts(
        self, idx: np.ndarray, now: float | np.ndarray
    ) -> np.ndarray:
        """Total observable errors per line: drift + conflicting stuck cells."""
        return self.drift_error_counts(idx, now) + self.hard_mismatch[idx]

    # -- per-region fast-forward caches --------------------------------------

    def enable_region_tracking(self, region_size: int) -> None:
        """Arm lazily maintained per-region actionable-time caches.

        The fast-forward layer asks, per scrub visit, when a region will
        next have anything observable (:meth:`region_actionable_time`) and
        how worn its worst line is (:meth:`region_max_stuck`).  Recomputing
        either from scratch costs a full region scan, so both are cached
        per region and invalidated by the mutators (``rewrite``,
        ``partial_rewrite``, and ``retire`` through them).
        """
        if region_size <= 0 or self.num_lines % region_size:
            raise ValueError("region_size must evenly divide num_lines")
        num_regions = self.num_lines // region_size
        self._region_size = region_size
        self._region_dirty = np.ones(num_regions, dtype=bool)
        self._region_actionable = np.zeros(num_regions)
        self._region_max_stuck = np.zeros(num_regions, dtype=np.int64)

    def _mark_regions_dirty(self, idx: np.ndarray) -> None:
        if self._region_size is None:
            return
        regions = np.unique(np.asarray(idx) // self._region_size)
        self._region_dirty[regions] = True

    def _refresh_region(self, region: int) -> None:
        size = self._region_size
        sl = slice(region * size, (region + 1) * size)
        if self.hard_mismatch[sl].any():
            # A standing hard mismatch is an error at every instant.
            self._region_actionable[region] = -np.inf
        else:
            self._region_actionable[region] = float(self.crossing[sl, 0].min())
        self._region_max_stuck[region] = int(
            (self.lifetime[sl] <= self.writes[sl, None]).sum(axis=1).max()
        )
        self._region_dirty[region] = False

    def region_actionable_time(self, region: int, theta: int = 1) -> float:
        """Earliest instant any line of ``region`` reaches ``theta`` errors.

        Folds hard mismatches through the same theta-index idiom as the
        read-refresh window solver: a line with ``h`` standing hard
        mismatches reaches ``theta`` total errors at its ``(theta - h)``-th
        drift crossing, and is actionable immediately (``-inf``) once
        ``h >= theta``.  The engine's fast-forward layer always asks for
        ``theta == 1``: with decode-all schemes a single error already
        perturbs the observed histogram, and with detector gating it makes
        the detector's RNG draw significant — so only a strictly error-free
        stretch may be skipped.  The ``theta == 1`` hot path is served from
        the per-region cache.
        """
        if self._region_size is None:
            raise RuntimeError("call enable_region_tracking() first")
        if not 0 <= region < self._region_dirty.size:
            raise ValueError(f"region {region} out of range")
        if theta < 1:
            raise ValueError("theta must be >= 1")
        if theta == 1:
            if self._region_dirty[region]:
                self._refresh_region(region)
            return float(self._region_actionable[region])
        size = self._region_size
        sl = slice(region * size, (region + 1) * size)
        hard = self.hard_mismatch[sl].astype(np.int64)
        theta_index = np.clip(theta - 1 - hard, 0, self.keep - 1)
        times = self.crossing[sl][np.arange(size), theta_index]
        times = np.where(hard >= theta, -np.inf, times)
        return float(times.min())

    def region_max_stuck(self, region: int) -> int:
        """Worst per-line stuck-cell count in ``region`` (cached)."""
        if self._region_size is None:
            raise RuntimeError("call enable_region_tracking() first")
        if not 0 <= region < self._region_dirty.size:
            raise ValueError(f"region {region} out of range")
        if self._region_dirty[region]:
            self._refresh_region(region)
        return int(self._region_max_stuck[region])

    # -- mutations -----------------------------------------------------------------

    def rewrite(
        self,
        idx: np.ndarray,
        at_times: np.ndarray,
        data_changed: bool,
        extra_writes: np.ndarray | None = None,
    ) -> None:
        """Re-program whole lines at per-line times ``at_times``.

        Drift clocks reset (fresh crossing-time order statistics anchored at
        the write time).  The write counter advances by 1 plus
        ``extra_writes`` (multiple demand writes between scrub visits each
        wear the cells, but only the last one's drift clock matters).

        ``data_changed`` distinguishes demand writes and UE-recovery loads
        (new data: stuck cells re-draw whether they conflict) from scrub
        write-backs (same data: existing conflicts persist, cells that froze
        earlier while holding this data stay consistent).
        """
        idx = np.asarray(idx)
        if idx.size == 0:
            return
        at_times = np.asarray(at_times, dtype=np.float64)
        if at_times.shape != idx.shape:
            raise ValueError("at_times must match idx")
        relative = self.distribution.sample_smallest(
            idx.size, self.cells_per_line, self.keep, self.rng
        )
        if self.thermal is None:
            self.crossing[idx] = relative + at_times[:, None]
        else:
            self.crossing[idx] = self.thermal.crossing_wall_times(
                at_times[:, None], relative
            )
        # Cells stuck *before* this write may conflict with the new data;
        # cells that freeze during it hold the data just written, so they
        # start consistent.
        stuck_before = self.stuck_counts(idx) if data_changed else None
        self.writes[idx] += 1
        if extra_writes is not None:
            self.writes[idx] += np.asarray(extra_writes, dtype=np.int64)
        if data_changed:
            self.hard_mismatch[idx] = self.rng.binomial(
                stuck_before, self._mismatch_probability
            ).astype(np.int16)
        self._mark_regions_dirty(idx)

    def partial_rewrite(self, idx: np.ndarray, now: float) -> np.ndarray:
        """Re-program only the *drifted* cells of each line at time ``now``.

        PCM programs cells individually, so a scrub write-back need not
        touch the healthy cells: their programmed state (and drift clock,
        and wear) is left alone.  In the order-statistics representation
        the drifted cells are exactly the leading entries with
        ``crossing <= now``; they are replaced by fresh order statistics
        (anchored at ``now``) of that many new cell draws, merged with the
        surviving entries.

        Wear advances *fractionally*: rewriting ``j`` of ``C`` cells costs
        ``j/C`` of a line write against the per-line wear counter (the
        rewritten cells are a random subset over time, so average wear is
        the right per-line statistic).  Returns the per-line rewritten-cell
        counts so callers can charge energy proportionally.

        Truncation note: replacement cells that never cross contribute
        ``inf`` entries; untracked original cells (beyond the ``keep``
        window) are not re-promoted into the row, slightly undercounting
        errors at horizons where the count would exceed ``keep - j``
        anyway - the same order-statistics truncation class as the rest of
        the engine.
        """
        idx = np.asarray(idx)
        if idx.size == 0:
            return np.zeros(0, dtype=np.int64)
        rows = self.crossing[idx]
        crossed = (rows <= now).sum(axis=1).astype(np.int64)

        # Group lines by how many cells they replace so the fresh-draw
        # sampler runs on equal-width batches.
        for j in np.unique(crossed):
            if j == 0:
                continue
            group = np.flatnonzero(crossed == j)
            lines = idx[group]
            fresh_keep = int(min(j, self.keep))
            fresh = self.distribution.sample_smallest(
                group.size, int(j), fresh_keep, self.rng
            )
            if self.thermal is None:
                fresh = fresh + now
            else:
                fresh = self.thermal.crossing_wall_times(
                    np.full((group.size, 1), now), fresh
                )
            surviving = self.crossing[lines, int(j):]
            merged = np.sort(
                np.concatenate([surviving, fresh], axis=1), axis=1
            )[:, : self.keep]
            self.crossing[lines] = merged

        # Fractional wear: j/C of a full-line write.
        self._fractional_wear[idx] += crossed / self.cells_per_line
        whole = self._fractional_wear[idx] >= 1.0
        if whole.any():
            w_idx = idx[whole]
            increments = np.floor(self._fractional_wear[w_idx]).astype(np.int64)
            self.writes[w_idx] += increments
            self._fractional_wear[w_idx] -= increments
        self._mark_regions_dirty(idx)
        return crossed

    def retire(self, idx: np.ndarray, now: float) -> None:
        """Replace lines with fresh spares (new cells: new lifetimes)."""
        idx = np.asarray(idx)
        if idx.size == 0:
            return
        if self._endurance is not None:
            self.lifetime[idx] = self._fresh_lifetimes(idx.size)
        self.writes[idx] = 0
        self.hard_mismatch[idx] = 0
        self.rewrite(idx, np.full(idx.size, now), data_changed=True)
        self.writes[idx] = 0

    def _fresh_lifetimes(self, count: int) -> np.ndarray:
        endurance = self._endurance
        if endurance is None:
            raise RuntimeError("retirement requires an endurance model")
        return self._lifetime_order_statistics(endurance, count)


#: Chunk size for bulk RNG advancement: bounds peak memory while consuming
#: exactly the doubles the skipped per-visit detector draws would have
#: (``Generator.random`` fills sequentially, so any chunking of the same
#: total consumes an identical stream).
_RNG_ADVANCE_CHUNK = 1 << 20


def _advance_rng(rng: np.random.Generator, count: int) -> None:
    while count > 0:
        take = min(count, _RNG_ADVANCE_CHUNK)
        rng.random(take)
        count -= take


class PopulationEngine:
    """Event loop: scrub visits + Poisson demand against a population.

    Parameters
    ----------
    population:
        Device state.
    policy:
        Scrub mechanism under test.
    stats:
        Ledger to charge; typically fresh per run.
    streams:
        Named RNG family (uses the ``"engine"`` and ``"workload"`` streams).
    rates:
        Demand traffic; ``None`` means idle memory.
    region_size:
        Lines per scrub region (a bank); adaptive policies steer intervals
        at this granularity.
    horizon:
        Simulated wall-clock seconds.
    retire_hard_limit:
        Retire a line once this many of its cells are stuck (``None``
        disables retirement).
    read_refresh:
        Treat demand reads as scrub probes: the read path decodes anyway,
        so a read that observes an error count at or above the policy's
        write-back threshold triggers an immediate refresh write, and a
        read of an uncorrectable line surfaces the UE at the read instead
        of at the next scrub pass.  Modelled at the last read per line per
        inter-visit window (the one closest to the error peak).
    spare_pool:
        Optional finite spare budget behind retirement
        (:class:`repro.mem.sparing.SparePool`); retirements beyond the
        budget are refused and the broken lines stay in service.
    obs:
        Optional telemetry bundle (:class:`repro.obs.session.Observation`).
        When ``None`` (the default) the engine runs its exact
        pre-observability path: the no-op tracer/profiler guards draw no
        randomness and cost one attribute check per visit, so results are
        bit-identical with observability on or off.
    verifier:
        Optional invariant checker
        (:class:`repro.verify.invariants.InvariantChecker`).  ``None``
        (the default) installs the no-op verifier: one ``enabled`` check
        per visit, no randomness, results bit-identical with verification
        on or off.  When enabled, the engine hands every visit's decision
        counts to the checker, which raises
        :class:`repro.verify.invariants.InvariantViolation` the moment the
        stats ledger stops agreeing with them.
    """

    #: Which visit loop this engine implements; emitted once per traced run
    #: (``engine_mode`` event) so downstream tooling can tell traces apart.
    engine_mode = "scalar"

    def __init__(
        self,
        population: LinePopulation,
        policy: ScrubPolicy,
        stats: ScrubStats,
        streams: RngStreams,
        horizon: float,
        rates: DemandRates | None = None,
        region_size: int = 1024,
        retire_hard_limit: int | None = None,
        read_refresh: bool = False,
        spare_pool=None,
        obs: Observation | None = None,
        verifier: Verifier | None = None,
        fast_forward: bool = True,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if region_size <= 0:
            raise ValueError("region_size must be positive")
        if population.num_lines % region_size:
            raise ValueError("num_lines must be a multiple of region_size")
        self.population = population
        self.policy = policy
        self.stats = stats
        self.streams = streams
        self.horizon = horizon
        self.rates = rates if rates is not None else idle_rates(population.num_lines)
        if self.rates.num_lines != population.num_lines:
            raise ValueError("demand rates must cover the whole population")
        self.region_size = region_size
        self.num_regions = population.num_lines // region_size
        self.retire_hard_limit = retire_hard_limit
        self.read_refresh = read_refresh
        if spare_pool is not None and spare_pool.num_regions != self.num_regions:
            raise ValueError("spare pool must cover exactly the scrub regions")
        self.spare_pool = spare_pool
        self.obs = obs
        #: Event sink and wall-time spans; the shared no-op singletons when
        #: observability is off, so hot paths pay one ``enabled`` check.
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._profiler = obs.profiler if obs is not None else NULL_PROFILER
        #: Invariant checker; the shared no-op singleton when verification
        #: is off, so hot paths pay one ``enabled`` check.
        self._verifier = verifier if verifier is not None else NULL_VERIFIER
        # Policies emit their own events (e.g. ``interval_adapted``); bind
        # this run's tracer so a reused policy object never leaks one.
        policy.tracer = self._tracer
        #: Per-line time of the last scrub visit (or start of time).
        self._last_visit = np.zeros(population.num_lines)
        self._all_lines = np.arange(population.num_lines)
        #: Row ``r`` is region ``r``'s line indices; ``region_lines`` serves
        #: views of this instead of allocating an ``arange`` per visit.
        self._region_index = self._all_lines.reshape(
            self.num_regions, region_size
        )
        #: Scratch for per-line rewrite timestamps (``rewrite`` consumes the
        #: values within the call), replacing a ``np.full`` per mutation.
        self._fill_times = np.empty(region_size)
        #: Quiescent-visit fast-forward (bit-identical to the naive walk;
        #: see :meth:`_maybe_fast_forward`).
        self.fast_forward = fast_forward
        self.fast_forward_skipped_visits = 0
        self.fast_forward_jumps = 0
        self._ff_disabled_reported: set[str] = set()
        # A region may fast-forward only if demand never touches it: any
        # write rate perturbs state and RNG, and (under read-refresh) any
        # read rate does too, so idleness is a static per-region property.
        write = self.rates.write_rate.reshape(self.num_regions, region_size)
        read = self.rates.read_rate.reshape(self.num_regions, region_size)
        self._ff_region_idle = ~(
            (write != 0).any(axis=1) | (read != 0).any(axis=1)
        )
        self._ff_counter = (
            obs.metrics.counter("fast_forward_skipped_visits")
            if obs is not None and fast_forward
            else None
        )
        #: Loop state lives on the engine (not in :meth:`simulate` locals)
        #: so a run can suspend at an event boundary and resume - in this
        #: process or, via :mod:`repro.sim.snapshot`, in another one.
        self._scheduler: ScrubScheduler | None = None
        self._sampler: PeriodicSampler | None = None
        self._ff_active = False
        self._prepared = False
        #: True once the run reached the horizon and final accounting
        #: (demand reads, sampler flush) has been charged.
        self.complete = False

    def region_lines(self, region: int) -> np.ndarray:
        return self._region_index[region]

    def _times_filled(self, count: int, time: float) -> np.ndarray:
        """``count`` copies of ``time`` from the preallocated scratch buffer."""
        buf = self._fill_times[:count]
        buf.fill(time)
        return buf

    def _prepare(self) -> None:
        """One-time loop setup, shared by fresh starts and snapshot resumes.

        A snapshot restore pre-seeds ``self._scheduler`` before the first
        :meth:`simulate` call; everything else here is deterministic,
        draws no randomness, and is safe to recompute on resume (the
        fast-forward caches are lazily rebuilt from the restored arrays).
        """
        if self._prepared:
            return
        self._prepared = True
        self._emit_engine_mode()
        if self.obs is not None and self.obs.config.sample_every is not None:
            self._sampler = PeriodicSampler(
                self.obs.config.sample_every,
                self._collect_sample,
                self.obs.timeseries,
            )
        ff_active = self.fast_forward
        if ff_active and self.read_refresh:
            # Read-refresh plays demand probes between visits; a "quiet"
            # window is never provably event-free, so fast-forward stands
            # down for the whole run.
            self._note_fast_forward_disabled("read_refresh", 0.0)
            ff_active = False
        if ff_active:
            self.population.enable_region_tracking(self.region_size)
        self._ff_active = ff_active
        if self._scheduler is None:
            self._scheduler = ScrubScheduler(
                self.num_regions,
                [self.policy.initial_interval(r) for r in range(self.num_regions)],
            )

    def simulate(self, budget: int | None = None) -> ScrubStats:
        """Simulate to the horizon and return the (shared) stats ledger.

        ``budget`` bounds this call to that many scheduler events (scrub
        visits or fast-forward jumps).  When the budget runs out before
        the horizon, the engine returns with ``self.complete`` still
        ``False``, suspended at an event boundary: all loop state lives on
        the engine, so a later ``simulate`` call (or a snapshot taken by
        :mod:`repro.sim.snapshot` and resumed elsewhere) continues
        bit-identically.  Final accounting (bulk demand-read energy, the
        sampler's horizon flush) is charged exactly once, when the run
        actually completes.
        """
        if self.complete:
            return self.stats
        engine_rng = self.streams.get("engine")
        workload_rng = self.streams.get("workload")
        self._prepare()
        scheduler = self._scheduler
        sampler = self._sampler
        steps = 0
        with self._profiler.span("simulate"):
            while len(scheduler) and scheduler.peek_time() <= self.horizon:
                if budget is not None and steps >= budget:
                    return self.stats
                steps += 1
                visit = scheduler.pop()
                if sampler is not None:
                    sampler.advance_to(visit.time)
                if self._ff_active:
                    resumed = self._maybe_fast_forward(
                        visit.time, visit.region, engine_rng, sampler
                    )
                    if resumed is not None:
                        scheduler.advance_to(resumed, visit.region)
                        continue
                next_interval = self._process_visit(
                    visit.time, visit.region, engine_rng, workload_rng
                )
                scheduler.push(visit.time + next_interval, visit.region)
            self._account_demand_reads()
            if sampler is not None:
                sampler.finalize(self.horizon)
        self.complete = True
        return self.stats

    def _emit_engine_mode(self) -> None:
        """Trace-header record of which visit loop produced this run."""
        if self._tracer.enabled:
            self._tracer.emit("engine_mode", 0.0, engine=self.engine_mode)

    def _note_fast_forward_disabled(self, reason: str, time: float) -> None:
        """Trace (once per run per cause) why fast-forward stood down."""
        if reason in self._ff_disabled_reported:
            return
        self._ff_disabled_reported.add(reason)
        if self._tracer.enabled:
            self._tracer.emit("fast_forward_disabled", time, reason=reason)

    def _maybe_fast_forward(
        self,
        time: float,
        region: int,
        engine_rng: np.random.Generator,
        sampler: PeriodicSampler | None,
    ) -> float | None:
        """Fold a run of provably zero-error visits into one bulk charge.

        Returns the resumed visit time (push it and move on), or ``None``
        to take the naive per-visit path.  Bit-exactness argument, piece
        by piece:

        * **Eligibility** — the policy promises its zero-error decision is
          deterministic, draws no RNG beyond the fixed detector check, and
          leaves the interval unchanged; the region carries no demand
          rates (no workload-RNG draws, no state changes between visits);
          read-refresh is off (checked in :meth:`simulate`); and no line
          is at the retirement limit (wear is static without writes, so it
          stays below the limit for the whole window).
        * **Event horizon** — :meth:`LinePopulation.region_actionable_time`
          is the exact instant the region next has a nonzero error count.
          Visits strictly before it observe all-zero counts and mutate
          nothing; the cache is invalidated by every population mutator.
        * **Visit times** — the naive loop accumulates ``t + I`` per push;
          the skip loop replays the same iterated float additions, never a
          fused ``t + k*I``, so the resumed time is bitwise the naive one.
        * **Stats** — :meth:`ScrubStats.record_zero_error_visits` replays
          the per-visit float additions; interleaving with other regions'
          visits is immaterial because every zero-error visit adds the
          same per-category constant.
        * **RNG** — detector-less schemes draw nothing on any visit, so
          skipping consumes nothing.  Detector schemes draw ``n`` uniforms
          per visit on the engine stream shared by *all* regions in global
          visit order; that order is only reproducible in bulk when there
          is a single region, so multi-region detector runs stand down.
        * **Sampling** — skips stop at the sampler's next due time, so a
          sample at ``S`` sees exactly the visits at or before ``S``.
        """
        interval = self.policy.fast_forward_interval(region)
        if interval is None:
            self._note_fast_forward_disabled("policy", time)
            return None
        if not self._ff_region_idle[region]:
            self._note_fast_forward_disabled("demand", time)
            return None
        has_detector = self.policy.scheme.has_detector
        if has_detector and self.num_regions > 1:
            self._note_fast_forward_disabled("detector_interleaving", time)
            return None
        population = self.population
        actionable = population.region_actionable_time(region)
        if actionable <= time:
            return None
        if (
            self.retire_hard_limit is not None
            and population.region_max_stuck(region) >= self.retire_hard_limit
        ):
            return None

        cap = self.horizon
        if sampler is not None and sampler.next_due < cap:
            cap = sampler.next_due
        visits = 1
        last = time
        nxt = time + interval
        while nxt <= cap and nxt < actionable:
            visits += 1
            last = nxt
            nxt = last + interval
        if visits < 2:
            return None  # nothing beyond the current visit; not worth a jump

        with self._profiler.span("fastforward"):
            n = self.region_size
            self.stats.record_zero_error_visits(
                visits, n, detector=has_detector, decode_all=not has_detector
            )
            if has_detector:
                _advance_rng(engine_rng, visits * n)
            self._last_visit[region * n : (region + 1) * n] = last
            self.fast_forward_skipped_visits += visits
            self.fast_forward_jumps += 1
            if self._ff_counter is not None:
                self._ff_counter.inc(visits)
            if self._tracer.enabled:
                self._tracer.emit(
                    "fast_forward",
                    time,
                    region=region,
                    skipped=visits,
                    to_time=float(nxt),
                )
            if self._verifier.enabled:
                self._verifier.note_fast_forward(
                    visited=visits * n,
                    detected=visits * n if has_detector else 0,
                    decoded=0 if has_detector else visits * n,
                )
        return nxt

    # -- internals ----------------------------------------------------------

    def _process_visit(
        self,
        time: float,
        region: int,
        engine_rng: np.random.Generator,
        workload_rng: np.random.Generator,
    ) -> float:
        profiler = self._profiler
        tracer = self._tracer
        with profiler.span("visit"):
            idx = self.region_lines(region)
            with profiler.span("demand"):
                self._apply_demand(idx, time, workload_rng, region)
                if self.read_refresh:
                    self._apply_read_refresh(idx, time, workload_rng)

            error_counts = self.population.error_counts(idx, time)
            with profiler.span("decode"):
                decision = self.policy.visit(time, region, error_counts, engine_rng)

            # Accounting: every visited line is read; detector-equipped schemes
            # check every line; the decoder runs only where the policy engaged it.
            self.stats.record_reads(idx.size)
            if self.policy.scheme.has_detector:
                self.stats.record_detects(idx.size)
            num_decoded = int(decision.decoded.sum())
            self.stats.record_decodes(num_decoded)
            self.stats.record_error_counts(error_counts[decision.decoded])
            self.stats.detector_misses += int(decision.missed.sum())

            # Uncorrectable lines: record, then recover (the OS reloads the
            # page); recovery is a data-changing write outside the scrub budget.
            ue_idx = idx[decision.uncorrectable]
            if ue_idx.size:
                self.stats.uncorrectable += ue_idx.size
                if tracer.enabled:
                    tracer.emit(
                        "uncorrectable", time, region=region, count=int(ue_idx.size)
                    )
                self.population.rewrite(
                    ue_idx, self._times_filled(ue_idx.size, time), data_changed=True
                )

            # Write-backs: the scrub-cost metric the paper minimizes.
            partial_cells_visit: int | None = None
            wb_idx = idx[decision.written_back]
            if wb_idx.size:
                if getattr(self.policy, "partial_writeback", False):
                    cells = self.population.partial_rewrite(wb_idx, time)
                    partial_cells_visit = int(cells.sum())
                    self.stats.record_partial_scrub_writes(
                        wb_idx.size, partial_cells_visit
                    )
                else:
                    self.stats.record_scrub_writes(wb_idx.size)
                    self.population.rewrite(
                        wb_idx,
                        self._times_filled(wb_idx.size, time),
                        data_changed=False,
                    )
            elif getattr(self.policy, "partial_writeback", False):
                partial_cells_visit = 0

            retired_visit = 0
            if self.retire_hard_limit is not None:
                stuck = self.population.stuck_counts(idx)
                retire_idx = idx[stuck >= self.retire_hard_limit]
                if retire_idx.size:
                    requested = int(retire_idx.size)
                    if self.spare_pool is not None:
                        grant = self.spare_pool.request(region, requested)
                        retire_idx = retire_idx[:grant]
                        if tracer.enabled:
                            tracer.emit(
                                "spare_allocated",
                                time,
                                region=region,
                                requested=requested,
                                granted=int(grant),
                            )
                    if retire_idx.size:
                        retired_visit = int(retire_idx.size)
                        self.stats.retired += retire_idx.size
                        if tracer.enabled:
                            tracer.emit(
                                "retire",
                                time,
                                region=region,
                                count=int(retire_idx.size),
                            )
                        self.population.retire(retire_idx, time)

            if tracer.enabled:
                tracer.emit(
                    "scrub_visit",
                    time,
                    region=region,
                    lines=int(idx.size),
                    errors=int(error_counts.sum()),
                    max_errors=int(error_counts.max()) if error_counts.size else 0,
                    decoded=num_decoded,
                    written_back=int(decision.written_back.sum()),
                    uncorrectable=int(decision.uncorrectable.sum()),
                    next_interval=float(decision.next_interval),
                )

            if self._verifier.enabled:
                # The checker re-derives every ledger counter from these
                # decision counts; the error mass uses the histogram's cap
                # so it matches what ``record_error_counts`` folded in.
                capped = np.minimum(
                    error_counts, self.stats.error_histogram.size - 1
                )
                resolved_mask = decision.written_back | decision.uncorrectable
                observed = int(capped[decision.decoded].sum())
                resolved = int(capped[decision.decoded & resolved_mask].sum())
                pending = int(capped[decision.decoded & ~resolved_mask].sum())
                self._verifier.check_visit(
                    time=time,
                    region=region,
                    visited=int(idx.size),
                    detected=int(idx.size) if self.policy.scheme.has_detector else 0,
                    decoded=num_decoded,
                    written_back=int(decision.written_back.sum()),
                    partial_cells=partial_cells_visit,
                    uncorrectable=int(ue_idx.size),
                    missed=int(decision.missed.sum()),
                    retired=retired_visit,
                    errors_observed=observed,
                    errors_resolved=resolved,
                    errors_pending=pending,
                )

            self._last_visit[idx] = time
            return decision.next_interval

    def _apply_demand(
        self,
        idx: np.ndarray,
        now: float,
        rng: np.random.Generator,
        region: int = -1,
    ) -> None:
        """Apply Poisson demand writes that hit ``idx`` since their last visit."""
        rates = self.rates.write_rate[idx]
        if not rates.any():
            return
        elapsed = now - self._last_visit[idx]
        counts = rng.poisson(rates * elapsed)
        written = counts > 0
        if not written.any():
            return
        w_idx = idx[written]
        w_counts = counts[written]
        w_elapsed = elapsed[written]
        # Given N uniform arrivals in the window, the last one sits at
        # start + window * max(U_1..U_N); max of N uniforms ~ U^(1/N).
        last_offset = w_elapsed * np.power(rng.random(w_idx.size), 1.0 / w_counts)
        last_write = (now - w_elapsed) + last_offset
        self.population.rewrite(
            w_idx,
            last_write,
            data_changed=True,
            extra_writes=(w_counts - 1),
        )
        total_writes = int(w_counts.sum())
        self.stats.record_demand_writes(total_writes)
        if self._tracer.enabled:
            self._tracer.emit(
                "demand_burst",
                now,
                region=region,
                lines=int(w_idx.size),
                writes=total_writes,
            )

    #: Read-refresh events processed per line per inter-visit window; the
    #: expected count is well below this for any sane configuration.
    _READ_REFRESH_MAX_EVENTS = 16

    def _apply_read_refresh(
        self, idx: np.ndarray, now: float, rng: np.random.Generator
    ) -> None:
        """Play continuous read probes against each line's crossing times.

        A line becomes refresh-eligible the moment its error count reaches
        the policy's write-back threshold - an instant the population knows
        exactly (the theta-th smallest crossing time).  The first Poisson
        read after that instant refreshes the line (or, if the count has
        already passed the correction strength, surfaces the UE).  Each
        refresh resets the line, which may become eligible again within
        the same window, so the loop iterates until every line's next
        event falls beyond the current visit.
        """
        rates = self.rates.read_rate[idx]
        active = rates > 0
        if not active.any():
            return
        threshold = getattr(self.policy, "threshold", 1)
        t_ecc = self.policy.scheme.t
        pending = idx[active]
        pending_rates = rates[active]
        window_start = self._last_visit[idx][active]

        for __ in range(self._READ_REFRESH_MAX_EVENTS):
            if pending.size == 0:
                break
            hard = self.population.hard_mismatch[pending].astype(np.int64)
            crossing = self.population.crossing
            keep = crossing.shape[1]
            # Instant the line's total error count reaches the threshold:
            # the (theta - hard)-th drift crossing, or immediately when
            # stuck mismatches alone reach it.
            theta_index = np.clip(threshold - 1 - hard, 0, keep - 1)
            theta_time = crossing[pending, theta_index]
            theta_time = np.where(hard >= threshold, window_start, theta_time)
            theta_time = np.maximum(theta_time, window_start)

            # First read probe after the line became eligible.  The draw
            # covers every pending line (its order is pinned by the
            # goldens); only what follows is gated on the hits.
            probe = theta_time + rng.exponential(1.0 / pending_rates)
            in_window = (theta_time < now) & (probe < now)
            if not in_window.any():
                break

            hit = np.flatnonzero(in_window)
            hit_lines = pending[hit]
            hit_probes = probe[hit]
            # Instant the count exceeds the correction strength — gathered
            # only for lines whose window actually fires; the cold majority
            # ends its window above, so their fancy-index gather (the
            # loop's dominant cost) is skipped.
            hard_hit = hard[hit]
            ue_index = np.clip(t_ecc - hard_hit, 0, keep - 1)
            ue_time = crossing[hit_lines, ue_index]
            ue_time = np.where(hard_hit > t_ecc, window_start[hit], ue_time)
            is_ue = hit_probes >= ue_time

            if is_ue.any():
                ue_lines = hit_lines[is_ue]
                self.stats.uncorrectable += int(is_ue.sum())
                self.population.rewrite(
                    ue_lines, hit_probes[is_ue], data_changed=True
                )
            if (~is_ue).any():
                refresh_lines = hit_lines[~is_ue]
                self.stats.record_scrub_writes(int((~is_ue).sum()))
                self.population.rewrite(
                    refresh_lines, hit_probes[~is_ue], data_changed=False
                )
            if self._verifier.enabled:
                self._verifier.note_refresh(
                    writes=int((~is_ue).sum()), ues=int(is_ue.sum())
                )
            # Only the lines that just reset can fire again this window.
            pending = hit_lines
            pending_rates = pending_rates[hit]
            window_start = hit_probes

    def _account_demand_reads(self) -> None:
        """Charge expected demand-read energy over the horizon (bulk)."""
        expected = self.rates.total_read_rate * self.horizon
        if expected > 0:
            self.stats.ledger.add(
                "demand_read", self.stats.costs.read_energy, int(round(expected))
            )

    def _collect_sample(self, now: float) -> dict:
        """One time-series sample: stats aggregates + device state at ``now``.

        The stats ledger is read as-is (events are processed in global time
        order, so at sample time everything earlier has been charged) and
        device-state queries are evaluated exactly at ``now``.  Reads only
        deterministic state - never the RNG streams - so sampling cannot
        perturb results.
        """
        registry = self.obs.metrics
        registry.observe_stats(self.stats)
        population = self.population
        idx = self._all_lines
        registry.gauge("stuck_cells").set(
            float(population.stuck_counts(idx).sum())
        )
        registry.gauge("hard_mismatch_cells").set(
            float(population.hard_mismatch.sum())
        )
        registry.gauge("drift_errors").set(
            float(population.drift_error_counts(idx, now).sum())
        )
        registry.gauge("mean_writes_per_line").set(float(population.writes.mean()))
        if self.spare_pool is not None:
            for key, value in self.spare_pool.metrics().items():
                registry.gauge(key).set(value)
        return registry.snapshot()
