"""Grid-batched finite-horizon renewal evaluation.

The scalar solver (:meth:`repro.sim.renewal.RenewalModel.finite_horizon`)
answers one ``(distribution, T, t, theta, horizon)`` question at a time
with a pure-Python ``O(V^2)`` recursion - microseconds per point, but a
million-device screen or a lot x candidate provisioning grid asks the
same question tens of thousands of times.  This module batches the two
expensive stages across a whole task list:

* **Propagation** - the per-cycle resolution vectors ``u_m`` / ``w_m``
  (probability a fresh cycle ends in a UE / write-back exactly at visit
  ``m``) are computed for many distributions at once: one ``(R, V)`` CDF
  matrix, then the count-state transition loop runs over visits with the
  tiny state/increment loops vectorized across rows.  Identical float
  operations to :meth:`RenewalModel._propagate` per row, so results
  agree to rounding noise (the ``surrogate_batch`` law pins <= 1e-9
  relative).
* **Recursion** - tasks sharing a visit grid (same ``V``, ``t``,
  ``theta``, cells per line) are stacked into ``(R, V)`` arrays and the
  renewal recursion runs as per-visit array ops: prefix sums for the
  direct terms plus one reversed-slice dot product per visit for the
  convolution terms.

Propagations are memoized on ``(distribution content hash, interval,
strength, threshold, visits, tolerance)`` through the same two-level
chain as the distribution cache (:mod:`repro.sim.runner`): an in-process
LRU in front of the optional on-disk cache (``~/.cache/repro``,
``REPRO_CACHE_DIR`` / ``REPRO_NO_DISK_CACHE``).  Zero-spread lots - the
common case in screening fleets - collapse to one propagation per
(lot, policy) however many devices they hold.

Consumers: :func:`repro.screen.planner.plan_screen` (one call per
policy-parameter group) and :class:`repro.provision.search.ProvisionSearch`
(one call per lot covering the whole candidate grid).  Batch telemetry
lands in the process metrics registry as ``surrogate_batch_*`` gauges and
the ``surrogate_memo`` counter group.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..obs.metrics import GLOBAL_REGISTRY
from .analytic import CrossingDistribution, _log_comb, tabulation_cache_dir
from .renewal import FiniteHorizonSolution, aligned_visits

#: Bump when the persisted propagation layout changes; stale entries then
#: miss on the key and degrade to recomputation, never to bad numbers.
RENEWAL_MEMO_FORMAT = 1

#: In-process propagation memo, LRU-bounded.  Entries are two ``(V,)``
#: float arrays - a few KiB each - so the cap is generous: a provisioning
#: sweep touches ``lots x candidates`` unique keys, a screening fleet one
#: per (lot, policy).
_PROPAGATION_CACHE: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = OrderedDict()
_PROPAGATION_CACHE_MAX = 4096

#: Where each propagation request was satisfied (process-lifetime tally):
#: ``memory`` (LRU hit), ``disk`` (loaded a persisted propagation), or
#: ``computed`` (ran the batched propagation).  Duplicate keys inside one
#: batch call count once - they share a single propagation.
SURROGATE_MEMO_COUNTERS = GLOBAL_REGISTRY.group(
    "surrogate_memo", ("memory", "disk", "computed")
)


def clear_propagation_cache() -> None:
    """Drop the in-process propagation memo and reset its counters.

    The on-disk cache is untouched; tests wanting full cold starts should
    also point ``REPRO_CACHE_DIR`` at a fresh directory or set
    ``REPRO_NO_DISK_CACHE``.
    """
    _PROPAGATION_CACHE.clear()
    SURROGATE_MEMO_COUNTERS.reset()


@dataclass(frozen=True)
class RenewalTask:
    """One finite-horizon question: a device under a threshold policy."""

    #: The device's crossing-time distribution.
    distribution: CrossingDistribution
    #: Cells per line (the binomial population size).
    cells_per_line: int
    #: Scrub interval (seconds).
    interval: float
    #: ECC correction strength ``t``.
    t_ecc: int
    #: Write-back threshold ``theta`` in ``[1, t_ecc]``.
    threshold: int

    def __post_init__(self) -> None:
        if self.cells_per_line <= 0:
            raise ValueError("cells_per_line must be positive")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 1 <= self.threshold <= self.t_ecc:
            raise ValueError("need 1 <= threshold <= t_ecc")


# -- the propagation memo --------------------------------------------------------


def propagation_cache_key(task: RenewalTask, visits: int, tolerance: float) -> str:
    """Content hash identifying one propagated ``(u, w)`` pair.

    Everything the vectors depend on goes in: the tabulated distribution's
    content hash, the policy point, the propagation length, and the
    survival-mass tolerance.  Equal keys mean bit-identical vectors.
    """
    payload = "|".join(
        [
            f"v{RENEWAL_MEMO_FORMAT}",
            task.distribution.content_hash(),
            repr(float(task.interval)),
            repr(int(task.t_ecc)),
            repr(int(task.threshold)),
            repr(int(task.cells_per_line)),
            repr(int(visits)),
            repr(float(tolerance)),
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _propagation_cache_path(key: str, directory: Path) -> Path:
    return directory / f"renewal-{key}.npz"


def _save_propagation(
    key: str, u: np.ndarray, w: np.ndarray, directory: Path
) -> Path | None:
    """Persist one propagation; best-effort, atomic (see ``save_tabulation``)."""
    path = _propagation_cache_path(key, directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, key=np.array(key), u=u, w=w)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def _load_propagation(
    key: str, visits: int, directory: Path
) -> tuple[np.ndarray, np.ndarray] | None:
    """Load one persisted propagation; ``None`` on any miss, never raises."""
    path = _propagation_cache_path(key, directory)
    try:
        with np.load(path, allow_pickle=False) as data:
            if str(data["key"]) != key:
                return None
            u = np.asarray(data["u"], dtype=np.float64)
            w = np.asarray(data["w"], dtype=np.float64)
    except Exception:
        return None
    if u.shape != (visits,) or w.shape != (visits,):
        return None
    if not (np.isfinite(u).all() and np.isfinite(w).all()):
        return None
    if (u < 0).any() or (w < 0).any() or (u + w > 1.0 + 1e-12).any():
        return None
    return u, w


def _memo_insert(key: str, value: tuple[np.ndarray, np.ndarray]) -> None:
    _PROPAGATION_CACHE[key] = value
    while len(_PROPAGATION_CACHE) > _PROPAGATION_CACHE_MAX:
        _PROPAGATION_CACHE.popitem(last=False)


# -- vectorized stages -----------------------------------------------------------


def _binomial_pmf_batch(n: int, p: np.ndarray, max_k: int) -> np.ndarray:
    """Binomial(``n``, ``p_r``) PMF rows for k = 0..max_k.

    Vectorized twin of :func:`repro.sim.analytic._binomial_pmf`: same
    log-space form, same degenerate ``p = 0`` / ``p = 1`` handling, one
    row per entry of ``p``.
    """
    max_k = min(max_k, n)
    ks = np.arange(max_k + 1)
    out = np.zeros((p.size, max_k + 1))
    interior = (p > 0.0) & (p < 1.0)
    if interior.any():
        pi = p[interior][:, None]
        log_terms = (
            _log_comb(n, ks)[None, :]
            + ks[None, :] * np.log(pi)
            + (n - ks)[None, :] * np.log1p(-pi)
        )
        out[interior] = np.exp(log_terms)
    out[p <= 0.0, 0] = 1.0
    if max_k == n:
        out[p >= 1.0, n] = 1.0
    return out


def _propagate_batch(
    distributions: Sequence[CrossingDistribution],
    intervals: Sequence[float],
    t_ecc: int,
    threshold: int,
    cells_per_line: int,
    visits: int,
    tolerance: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cycle resolution vectors for many rows at once.

    Row ``r`` reproduces :meth:`RenewalModel._propagate` for
    ``(distributions[r], intervals[r])`` under the shared ``(t, theta,
    cells)`` point: the CDF is evaluated as one ``(R, V)`` matrix, the
    visit loop stays in Python (each step depends on the last), and the
    tiny state/increment loops run as width-``R`` array ops.  The scalar
    solver's early break (surviving mass below ``tolerance``) becomes a
    sticky per-row ``active`` mask, so frozen rows emit the same zero
    tail the scalar path pads with.
    """
    rows = len(distributions)
    steps = np.arange(1.0, visits + 1.0)
    cdf = np.empty((rows, visits))
    for r, distribution in enumerate(distributions):
        cdf[r] = distribution.cdf(intervals[r] * steps)

    u = np.zeros((rows, visits))
    w = np.zeros((rows, visits))
    survive = np.zeros((rows, threshold))
    survive[:, 0] = 1.0
    active = np.ones(rows, dtype=bool)
    prev_f = np.zeros(rows)
    for n in range(visits):
        f = cdf[:, n]
        denom = 1.0 - prev_f
        safe = np.where(denom <= 0.0, 1.0, denom)
        p_step = np.where(
            denom <= 0.0, 0.0, np.minimum(1.0, (f - prev_f) / safe)
        )
        prev_f = f

        active &= survive.sum(axis=1) > tolerance
        if not active.any():
            break

        visit_ue = np.zeros(rows)
        visit_write = np.zeros(rows)
        next_survive = np.zeros_like(survive)
        for k in range(threshold):
            mass = survive[:, k]
            pmf = _binomial_pmf_batch(cells_per_line - k, p_step, t_ecc - k)
            for j in range(pmf.shape[1]):
                total = k + j
                share = mass * pmf[:, j]
                if total < threshold:
                    next_survive[:, total] += share
                else:  # threshold <= total <= t_ecc: write-back
                    visit_write += share
            visit_ue += mass * np.maximum(0.0, 1.0 - pmf.sum(axis=1))
        u[:, n] = np.where(active, visit_ue, 0.0)
        w[:, n] = np.where(active, visit_write, 0.0)
        survive = np.where(active[:, None], next_survive, survive)
    return u, w


def _recursion_batch(
    u: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The discrete renewal recursion over ``(R, V)`` resolution stacks.

    Vectorized form of :func:`repro.sim.renewal.finite_horizon_recursion`:
    the direct ``sum_m u_m`` terms are prefix sums, and the convolution
    terms ``sum_m r_m * N(v - m)`` are one reversed-slice row-dot per
    visit.  Returns the horizon-final ``(expected_ue, expected_writes,
    no_ue_probability)`` per row.
    """
    rows, visits = u.shape
    resolve = u + w
    cum_u = np.cumsum(u, axis=1)
    cum_w = np.cumsum(w, axis=1)
    cum_r = np.cumsum(resolve, axis=1)
    n_ue = np.zeros((rows, visits + 1))
    n_write = np.zeros((rows, visits + 1))
    no_ue = np.ones((rows, visits + 1))
    for v in range(1, visits + 1):
        # Column m - 1 of the reversed slice is N(v - m), m = 1..v.
        tail = slice(v - 1, None, -1)
        conv_ue = np.einsum("rm,rm->r", resolve[:, :v], n_ue[:, tail])
        conv_write = np.einsum("rm,rm->r", resolve[:, :v], n_write[:, tail])
        conv_q = np.einsum("rm,rm->r", w[:, :v], no_ue[:, tail])
        n_ue[:, v] = cum_u[:, v - 1] + conv_ue
        n_write[:, v] = cum_w[:, v - 1] + conv_write
        no_ue[:, v] = np.clip(1.0 - cum_r[:, v - 1] + conv_q, 0.0, 1.0)
    return n_ue[:, visits], n_write[:, visits], no_ue[:, visits]


# -- the batched kernel ----------------------------------------------------------


def finite_horizon_batch(
    tasks: Iterable[RenewalTask],
    horizon: float,
    *,
    max_visits: int = 20_000,
    tolerance: float = 1e-12,
    memo: bool = True,
) -> list[FiniteHorizonSolution]:
    """Solve every task's finite-horizon question in grid-sized batches.

    Drop-in for per-task :meth:`RenewalModel.finite_horizon` calls (same
    defaults, same :class:`FiniteHorizonSolution` rows, task order
    preserved).  Tasks sharing a visit grid - equal ``(visits, t_ecc,
    threshold, cells_per_line)`` - are stacked and evaluated together;
    within a group, tasks with equal memo keys share one propagation.
    Each row's arithmetic is independent of its group-mates, so results
    do not depend on how a fleet is split across calls (or ``--jobs``
    chunks).  ``memo=False`` bypasses the propagation memo entirely
    (both layers) without changing any numbers.
    """
    tasks = list(tasks)
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if max_visits < 1:
        raise ValueError("max_visits must be >= 1")

    solutions: list[FiniteHorizonSolution | None] = [None] * len(tasks)
    groups: dict[tuple[int, int, int, int], list[int]] = {}
    for i, task in enumerate(tasks):
        visits = aligned_visits(horizon, task.interval)
        if visits == 0:
            solutions[i] = FiniteHorizonSolution(
                interval=task.interval, horizon=horizon, visits=0,
                expected_ue=0.0, expected_writes=0.0, no_ue_probability=1.0,
            )
            continue
        key = (visits, task.t_ecc, task.threshold, task.cells_per_line)
        groups.setdefault(key, []).append(i)

    propagated = 0
    for (visits, t_ecc, threshold, cells), members in groups.items():
        n_prop = min(max_visits, visits)
        resolved: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(members)
        #: memo key -> member positions still waiting on a propagation.
        pending: OrderedDict[str, list[int]] = OrderedDict()
        anonymous: list[int] = []
        for pos, i in enumerate(members):
            if not memo:
                anonymous.append(pos)
                continue
            key = propagation_cache_key(tasks[i], n_prop, tolerance)
            if key in pending:
                pending[key].append(pos)
                continue
            cached = _PROPAGATION_CACHE.get(key)
            if cached is not None:
                SURROGATE_MEMO_COUNTERS["memory"] += 1
                _PROPAGATION_CACHE.move_to_end(key)
                resolved[pos] = cached
                continue
            directory = tabulation_cache_dir()
            if directory is not None:
                loaded = _load_propagation(key, n_prop, directory)
                if loaded is not None:
                    SURROGATE_MEMO_COUNTERS["disk"] += 1
                    _memo_insert(key, loaded)
                    resolved[pos] = loaded
                    continue
            pending[key] = [pos]

        representatives = [positions[0] for positions in pending.values()]
        representatives += anonymous
        if representatives:
            rep_tasks = [tasks[members[pos]] for pos in representatives]
            u2d, w2d = _propagate_batch(
                [task.distribution for task in rep_tasks],
                [task.interval for task in rep_tasks],
                t_ecc, threshold, cells, n_prop, tolerance,
            )
            propagated += len(representatives)
            SURROGATE_MEMO_COUNTERS["computed"] += len(representatives)
            directory = tabulation_cache_dir() if memo else None
            for r, (key, positions) in enumerate(pending.items()):
                value = (u2d[r].copy(), w2d[r].copy())
                _memo_insert(key, value)
                if directory is not None:
                    _save_propagation(key, value[0], value[1], directory)
                for pos in positions:
                    resolved[pos] = value
            for r, pos in enumerate(anonymous, start=len(pending)):
                resolved[pos] = (u2d[r], w2d[r])

        stacked_u = np.zeros((len(members), visits))
        stacked_w = np.zeros((len(members), visits))
        for pos in range(len(members)):
            u_row, w_row = resolved[pos]
            stacked_u[pos, : u_row.size] = u_row
            stacked_w[pos, : w_row.size] = w_row
        n_ue, n_write, no_ue = _recursion_batch(stacked_u, stacked_w)
        for pos, i in enumerate(members):
            solutions[i] = FiniteHorizonSolution(
                interval=tasks[i].interval,
                horizon=horizon,
                visits=visits,
                expected_ue=float(n_ue[pos]),
                expected_writes=float(n_write[pos]),
                no_ue_probability=float(no_ue[pos]),
            )

    GLOBAL_REGISTRY.gauge("surrogate_batch_tasks").set(len(tasks))
    GLOBAL_REGISTRY.gauge("surrogate_batch_groups").set(len(groups))
    GLOBAL_REGISTRY.gauge("surrogate_batch_propagations").set(propagated)
    return solutions
