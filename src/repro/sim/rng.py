"""Named, independently-seeded random streams.

Every stochastic subsystem (drift draws, endurance draws, workload
arrivals, detector misses, ...) pulls from its own named stream derived
from one experiment seed.  This keeps experiments reproducible bit-for-bit
and - more importantly for sweeps - keeps subsystems *decoupled*: changing
how many draws the workload makes does not perturb the drift draws, so two
runs differing only in scrub policy see identical device behaviour.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("drift")
    >>> b = streams.get("workload")
    >>> a is streams.get("drift")
    True
    """

    def __init__(self, seed: int):
        if not 0 <= seed < 2**63:
            raise ValueError("seed must be a non-negative 63-bit integer")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on demand."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child family, e.g. one per simulated region."""
        return RngStreams(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little") >> 1
