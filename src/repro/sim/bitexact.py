"""Bit-exact simulation: real data bits, real codecs, real cell arrays.

This engine trades speed for total fidelity: every line stores an actual
bit pattern, encoded by the actual BCH/SECDED codec, mapped through the
Gray level coder into a :class:`repro.pcm.array.LineArray` whose cells
drift according to their individually drawn parameters.  Scrub passes read
the array, verify the CRC (when the scheme has one), run the real decoder,
and write back per the policy's threshold - including real miscorrection
behaviour when an error pattern exceeds the code's capability.

Use it for validation (experiment E2 cross-checks the population engine
against it) and for anything that depends on bit-level structure; use
:class:`repro.sim.population.PopulationEngine` for scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stats import ScrubStats
from ..core.threshold import ThresholdScrubPolicy
from ..pcm.array import LineArray
from ..pcm.energy import OperationCosts
from ..pcm.levels import LevelCoder
from ..params import EnergySpec, LineSpec
from ..verify.bitexact import NULL_BITEXACT_VERIFIER
from ..workloads.trace import AccessTrace, Op
from .rng import RngStreams


@dataclass(frozen=True)
class BitExactResult:
    """Outcome of a bit-exact run."""

    stats: ScrubStats
    #: Lines whose decode *silently* returned wrong data (miscorrection
    #: that the final syndrome check did not catch) - the event strong
    #: codes make negligible and SECDED cannot rule out.
    silent_corruptions: int


class BitExactEngine:
    """Drive a :class:`LineArray` under a threshold scrub policy.

    Parameters
    ----------
    policy:
        A :class:`ThresholdScrubPolicy` (the basic/strong/light mechanisms
        are configurations of it); its scheme, threshold, and interval are
        honoured exactly.
    num_lines:
        Population size (keep modest: this engine is O(cells * visits)).
    line_spec, energy_spec:
        Device parameters.
    streams:
        RNG family.
    temperature_k:
        Operating temperature.
    verifier:
        A :class:`repro.verify.bitexact.BitExactVerifier`; defaults to
        the shared null instance (zero overhead).  Pass a
        :class:`repro.verify.bitexact.BitExactChecker` to cross-check
        every scrub-ledger counter - including the silent-miscorrection
        tally - against an independently derived classification.
    """

    def __init__(
        self,
        policy: ThresholdScrubPolicy,
        num_lines: int,
        streams: RngStreams,
        line_spec: LineSpec | None = None,
        energy_spec: EnergySpec | None = None,
        temperature_k: float | None = None,
        endurance=None,
        verifier=None,
    ):
        self.policy = policy
        self.verifier = verifier if verifier is not None else NULL_BITEXACT_VERIFIER
        self.line_spec = line_spec if line_spec is not None else LineSpec()
        self.energy_spec = energy_spec if energy_spec is not None else EnergySpec()
        self.streams = streams

        scheme = policy.scheme
        self.codec = scheme.make_codec(self.line_spec.data_bits)
        self.detector = scheme.make_detector()
        codeword_bits = self.codec.codeword_bits + scheme.detector_bits
        bits_per_cell = self.line_spec.cell.bits_per_cell
        if codeword_bits % bits_per_cell:
            raise ValueError(
                f"codeword of {codeword_bits} bits does not fill whole "
                f"{bits_per_cell}-bit cells"
            )
        self.cells_per_line = codeword_bits // bits_per_cell
        self.coder = LevelCoder(self.line_spec.cell)

        self.array = LineArray(
            num_lines,
            self.cells_per_line,
            rng=streams.get("device"),
            spec=self.line_spec.cell,
            temperature_k=temperature_k,
            endurance=endurance,
        )
        self.num_lines = num_lines
        #: Current logical data per line (ground truth for verification).
        self._data = np.zeros((num_lines, self.line_spec.data_bits), dtype=np.int8)
        #: Stored codeword (incl. detector bits) per line.
        self._stored = np.zeros((num_lines, codeword_bits), dtype=np.int8)

        costs = OperationCosts.for_line(
            self.energy_spec,
            self.line_spec,
            ecc_bits=scheme.total_overhead_bits,
            ecc_strength=scheme.t,
        )
        self.stats = ScrubStats(costs=costs)
        self.silent_corruptions = 0

    # -- data path ------------------------------------------------------------

    def _encode(self, data: np.ndarray) -> np.ndarray:
        codeword = self.codec.encode(data)
        if self.detector is not None:
            crc = self.detector.compute(codeword)
            codeword = np.concatenate([codeword, crc])
        return codeword

    def _split(self, stored: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a stored word into (codec codeword, detector bits)."""
        if self.detector is None:
            return stored, np.empty(0, dtype=np.int8)
        width = self.detector.check_bits
        return stored[:-width], stored[-width:]

    def write_line(self, line: int, data: np.ndarray, now: float) -> None:
        """Encode and program fresh data into ``line``."""
        data = np.asarray(data, dtype=np.int8)
        if data.shape != (self.line_spec.data_bits,):
            raise ValueError("data length mismatch")
        codeword = self._encode(data)
        symbols = self.coder.bits_to_symbols(codeword)
        self.array.write_line(line, symbols, now)
        self._data[line] = data
        self._stored[line] = codeword

    def write_random(self, now: float, rng: np.random.Generator) -> None:
        """Fill all lines with random data."""
        for line in range(self.num_lines):
            self.write_line(
                line, rng.integers(0, 2, self.line_spec.data_bits, dtype=np.int8), now
            )

    def read_raw_bits(self, line: int, now: float) -> np.ndarray:
        """Sense a line and unpack to (possibly corrupted) bits."""
        sensed = self.array.read_line(line, now).symbols
        return self.coder.symbols_to_bits(sensed)

    # -- scrub -----------------------------------------------------------------

    def scrub_pass(self, now: float) -> None:
        """One full scrub pass over all lines at time ``now``."""
        rng = self.streams.get("scrub")
        threshold = self.policy.threshold
        verifier = self.verifier
        for line in range(self.num_lines):
            self.stats.record_reads(1)
            raw = self.read_raw_bits(line, now)
            codeword_part, sensed_crc = self._split(raw)
            stored_codeword, __ = self._split(self._stored[line])

            if self.detector is not None:
                self.stats.record_detects(1)
                # Hardware compares the CRC recomputed from the sensed
                # codeword against the sensed CRC bits; a drifted CRC cell
                # just triggers a (harmless) decode.
                if self.detector.check(codeword_part, sensed_crc):
                    # CRC clean: either truly error-free, or an aliased miss.
                    if not np.array_equal(raw, self._stored[line]):
                        self.stats.detector_misses += 1
                    if verifier.enabled:
                        verifier.observe_line(
                            time=now, line=line, raw=raw,
                            stored=self._stored[line].copy(),
                            true_data=self._data[line].copy(),
                            crc_clean=True, decode_ok=None,
                            decoded_data=None, corrected=0,
                            threshold=threshold,
                        )
                    continue

            self.stats.record_decodes(1)
            result = self.codec.decode(codeword_part)
            true_errors = int((codeword_part != stored_codeword).sum())
            self.stats.record_error_counts(np.array([true_errors]))
            decoded_data = (
                self.codec.extract_data(result.bits) if result.ok else None
            )
            if verifier.enabled:
                # Raw facts captured before any recovery/write-back mutates
                # the stored word; the checker classifies them itself.
                verifier.observe_line(
                    time=now, line=line, raw=raw,
                    stored=self._stored[line].copy(),
                    true_data=self._data[line].copy(),
                    crc_clean=False if self.detector is not None else None,
                    decode_ok=bool(result.ok),
                    decoded_data=(
                        None if decoded_data is None else decoded_data.copy()
                    ),
                    corrected=int(result.errors_corrected),
                    threshold=threshold,
                )

            if not result.ok:
                self.stats.uncorrectable += 1
                self._recover_line(line, now)
                continue

            if not np.array_equal(decoded_data, self._data[line]):
                # The decoder "succeeded" onto the wrong codeword.
                self.silent_corruptions += 1
                self.stats.uncorrectable += 1
                self._recover_line(line, now)
                continue

            if result.errors_corrected >= threshold:
                self.stats.record_scrub_writes(1)
                codeword = self._encode(self._data[line])
                symbols = self.coder.bits_to_symbols(codeword)
                self.array.write_line(line, symbols, now)
                self._stored[line] = codeword
        if verifier.enabled:
            verifier.check_pass(self, now)

    def _recover_line(self, line: int, now: float) -> None:
        """Reload a lost line (outside the scrub-write budget)."""
        self.write_line(line, self._data[line], now)

    # -- end-to-end -------------------------------------------------------------------

    def run(
        self,
        horizon: float,
        trace: AccessTrace | None = None,
    ) -> BitExactResult:
        """Scrub periodically to ``horizon``, interleaving demand traffic."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = self.streams.get("workload")
        self.write_random(0.0, rng)

        events: list[tuple[float, int, int]] = []  # (time, kind, line); kind 0=scrub
        interval = self.policy.interval
        count = int(horizon // interval)
        for k in range(1, count + 1):
            events.append((k * interval, 0, -1))
        if trace is not None:
            for request in trace:
                if request.time > horizon:
                    break
                kind = 1 if request.op is Op.WRITE else 2
                events.append((request.time, kind, request.line))
        events.sort()

        for time, kind, line in events:
            if kind == 0:
                self.scrub_pass(time)
            elif kind == 1:
                self.stats.record_demand_writes(1)
                self.write_line(
                    line,
                    rng.integers(0, 2, self.line_spec.data_bits, dtype=np.int8),
                    time,
                )
            else:
                self.stats.ledger.add(
                    "demand_read", self.stats.costs.read_energy, 1
                )
        if self.verifier.enabled:
            self.verifier.check_final(self)
        return BitExactResult(
            stats=self.stats, silent_corruptions=self.silent_corruptions
        )
