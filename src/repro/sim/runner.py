"""End-to-end experiment runner.

:func:`run_experiment` is the one-call entry point every benchmark and
example uses: given a policy, a workload, and a configuration, it builds
the crossing-time distribution, the population, the stats ledger, and the
engine, runs to the horizon, and returns a :class:`RunResult`.

Crossing distributions are memoized per (cell spec, temperature) because
tabulating the analytic CDF costs a few hundred milliseconds and sweeps
reuse it across dozens of runs.  The memo is two-level: a small in-process
LRU in front of a persistent on-disk cache (``~/.cache/repro``, overridable
via ``REPRO_CACHE_DIR``, disabled by ``REPRO_NO_DISK_CACHE``), so parallel
sweep workers and repeated CLI invocations pay the tabulation once per
configuration instead of once per process.
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict

import numpy as np

from ..core.policy import ScrubPolicy
from ..core.stats import ScrubStats
from ..mem.sparing import SparePool
from ..obs.metrics import GLOBAL_REGISTRY
from ..obs.profile import NULL_PROFILER
from ..obs.session import Observation
from ..params import CellSpec
from ..pcm.endurance import EnduranceModel
from ..pcm.energy import OperationCosts
from ..verify.invariants import InvariantChecker
from ..workloads.generators import DemandRates
from .analytic import (
    TABULATION_POINTS,
    CrossingDistribution,
    load_tabulation,
    save_tabulation,
    tabulation_cache_dir,
    tabulation_cache_key,
)
from .batch import BatchPopulationEngine
from .config import SimulationConfig
from .population import LinePopulation, PopulationEngine
from .results import RunResult
from .rng import RngStreams

#: In-process memo, LRU-bounded: sweeps over many cell specs/temperatures
#: must not accumulate tabulations without bound.
_DISTRIBUTION_CACHE: OrderedDict[str, CrossingDistribution] = OrderedDict()
_DISTRIBUTION_CACHE_MAX = 8

#: Where each distribution request was satisfied (process-lifetime tally):
#: ``memory`` (LRU hit), ``disk`` (loaded a persisted tabulation), or
#: ``tabulated`` (computed from scratch).  Lives in the process-wide
#: metrics registry (:data:`repro.obs.metrics.GLOBAL_REGISTRY`) but keeps
#: plain-dict semantics for existing call sites.
DISTRIBUTION_CACHE_COUNTERS = GLOBAL_REGISTRY.group(
    "distribution_cache", ("memory", "disk", "tabulated")
)


def clear_distribution_cache() -> None:
    """Drop the in-process distribution memo and reset its counters.

    The on-disk cache is untouched; tests wanting full cold starts should
    also point ``REPRO_CACHE_DIR`` at a fresh directory or set
    ``REPRO_NO_DISK_CACHE``.
    """
    _DISTRIBUTION_CACHE.clear()
    DISTRIBUTION_CACHE_COUNTERS.reset()


def cached_crossing_distribution(
    spec: CellSpec,
    temperature_k: float,
    compensated: bool = False,
) -> CrossingDistribution:
    """Crossing distribution via the memory -> disk -> tabulate cache chain."""
    key = tabulation_cache_key(spec, temperature_k, compensated)
    cached = _DISTRIBUTION_CACHE.get(key)
    if cached is not None:
        DISTRIBUTION_CACHE_COUNTERS["memory"] += 1
        _DISTRIBUTION_CACHE.move_to_end(key)
        return cached

    cache_dir = tabulation_cache_dir()
    tabulation = None
    if cache_dir is not None:
        tabulation = load_tabulation(key, spec.num_levels, TABULATION_POINTS, cache_dir)

    if compensated:
        from ..pcm.reference import CompensatedSensing

        distribution = CrossingDistribution(
            model=CompensatedSensing(spec, temperature_k=temperature_k),
            _tabulation=tabulation,
        )
    else:
        distribution = CrossingDistribution(
            spec, temperature_k=temperature_k, _tabulation=tabulation
        )

    if tabulation is not None:
        DISTRIBUTION_CACHE_COUNTERS["disk"] += 1
    else:
        DISTRIBUTION_CACHE_COUNTERS["tabulated"] += 1
        if cache_dir is not None:
            save_tabulation(distribution, key, cache_dir)

    _DISTRIBUTION_CACHE[key] = distribution
    while len(_DISTRIBUTION_CACHE) > _DISTRIBUTION_CACHE_MAX:
        _DISTRIBUTION_CACHE.popitem(last=False)
    return distribution


def crossing_distribution_for(config: SimulationConfig) -> CrossingDistribution:
    """Memoized crossing-time distribution for a configuration.

    With a thermal profile, the distribution is tabulated at the profile's
    *reference* temperature; the population maps sampled crossing ages to
    wall-clock through the profile.
    """
    if config.thermal_profile is not None:
        temperature = config.thermal_profile.reference_temperature_k
    else:
        temperature = config.temperature_k
    return cached_crossing_distribution(
        config.cell_spec, temperature, config.compensated_sensing
    )


def build_population(
    config: SimulationConfig, streams: RngStreams
) -> LinePopulation:
    """Device state for a configuration (uses the ``"population"`` stream)."""
    endurance = (
        EnduranceModel(config.endurance) if config.endurance is not None else None
    )
    return LinePopulation(
        num_lines=config.num_lines,
        cells_per_line=config.cells_per_line,
        distribution=crossing_distribution_for(config),
        rng=streams.get("population"),
        endurance=endurance,
        keep=config.keep,
        thermal=config.thermal_profile,
    )


def build_stats(policy: ScrubPolicy, config: SimulationConfig) -> ScrubStats:
    """A fresh ledger priced for the policy's ECC scheme."""
    costs = OperationCosts.for_line(
        config.energy,
        config.line,
        ecc_bits=policy.scheme.total_overhead_bits,
        ecc_strength=policy.scheme.t,
    )
    return ScrubStats(costs=costs)


def build_engine(
    policy: ScrubPolicy,
    config: SimulationConfig,
    rates: DemandRates | None = None,
) -> PopulationEngine:
    """Construct the (unstarted) engine :func:`run_experiment` would run.

    The engine carries everything the run needs - population, stats,
    streams, spare pool, observability, verifier - so callers can drive
    it incrementally (``engine.simulate(budget=...)``), snapshot it
    between calls (:mod:`repro.sim.snapshot`), and finish through
    :func:`finalize_result`.
    """
    obs = Observation.maybe(config.obs)
    profiler = obs.profiler if obs is not None else NULL_PROFILER
    streams = RngStreams(config.seed)
    with profiler.span("tabulate"):
        population = build_population(config, streams)
    stats = build_stats(policy, config)
    spare_pool = None
    if config.spares_per_region is not None:
        spare_pool = SparePool(
            num_regions=config.num_lines // config.region_size,
            spares_per_region=config.spares_per_region,
        )
    verifier = None
    if config.verify.enabled:
        verifier = InvariantChecker(
            stats=stats,
            config=config.verify,
            spare_pool=spare_pool,
            tracer=obs.tracer if obs is not None else None,
        )
    engine_cls = (
        BatchPopulationEngine if config.engine == "batch" else PopulationEngine
    )
    return engine_cls(
        population=population,
        policy=policy,
        stats=stats,
        streams=streams,
        horizon=config.horizon,
        rates=rates,
        region_size=config.region_size,
        retire_hard_limit=config.retire_hard_limit,
        read_refresh=config.read_refresh,
        spare_pool=spare_pool,
        obs=obs,
        verifier=verifier,
        fast_forward=config.fast_forward,
    )


def finalize_result(
    engine: PopulationEngine,
    policy: ScrubPolicy,
    config: SimulationConfig,
    elapsed: float,
) -> RunResult:
    """Package a completed engine run into a :class:`RunResult`."""
    if not engine.complete:
        raise RuntimeError("finalize_result requires a completed engine run")
    population = engine.population
    obs = engine.obs
    all_lines = np.arange(population.num_lines)
    final_state = {
        "stuck_cells": float(population.stuck_counts(all_lines).sum()),
        "hard_mismatch_cells": float(population.hard_mismatch.sum()),
        "mean_writes_per_line": float(population.writes.mean()),
    }
    if engine.spare_pool is not None:
        final_state.update(engine.spare_pool.metrics())
    if engine._verifier.enabled:
        engine._verifier.check_final(final_state)
    return RunResult(
        policy_name=policy.name,
        workload_name=engine.rates.name,
        config=config,
        stats=engine.stats,
        runtime_seconds=elapsed,
        final_state=final_state,
        trace=obs.trace_events if obs is not None else None,
        timeseries=obs.timeseries_or_none if obs is not None else None,
        profile=obs.profile_or_none if obs is not None else None,
        fast_forward=(
            {
                "skipped_visits": engine.fast_forward_skipped_visits,
                "jumps": engine.fast_forward_jumps,
            }
            if config.fast_forward
            else None
        ),
    )


def run_experiment(
    policy: ScrubPolicy,
    config: SimulationConfig | None = None,
    rates: DemandRates | None = None,
) -> RunResult:
    """Simulate ``policy`` under ``rates`` for ``config`` and return results.

    >>> from repro.core import basic_scrub
    >>> from repro import units
    >>> result = run_experiment(
    ...     basic_scrub(interval=units.HOUR),
    ...     SimulationConfig(num_lines=1024, region_size=256,
    ...                      horizon=units.DAY, endurance=None),
    ... )
    >>> result.stats.visits > 0
    True
    """
    if config is None:
        config = SimulationConfig()
    engine = build_engine(policy, config, rates)
    started = _time.perf_counter()
    engine.simulate()
    elapsed = _time.perf_counter() - started
    return finalize_result(engine, policy, config, elapsed)
