"""End-to-end experiment runner.

:func:`run_experiment` is the one-call entry point every benchmark and
example uses: given a policy, a workload, and a configuration, it builds
the crossing-time distribution, the population, the stats ledger, and the
engine, runs to the horizon, and returns a :class:`RunResult`.

Crossing distributions are memoized per (cell spec, temperature) because
tabulating the analytic CDF costs a few hundred milliseconds and sweeps
reuse it across dozens of runs.
"""

from __future__ import annotations

import time as _time

import numpy as np

from ..core.policy import ScrubPolicy
from ..core.stats import ScrubStats
from ..pcm.endurance import EnduranceModel
from ..pcm.energy import OperationCosts
from ..workloads.generators import DemandRates
from .analytic import CrossingDistribution
from .config import SimulationConfig
from .population import LinePopulation, PopulationEngine
from .results import RunResult
from .rng import RngStreams

_DISTRIBUTION_CACHE: dict[tuple, CrossingDistribution] = {}


def crossing_distribution_for(config: SimulationConfig) -> CrossingDistribution:
    """Memoized crossing-time distribution for a configuration.

    With a thermal profile, the distribution is tabulated at the profile's
    *reference* temperature; the population maps sampled crossing ages to
    wall-clock through the profile.
    """
    if config.thermal_profile is not None:
        temperature = config.thermal_profile.reference_temperature_k
    else:
        temperature = config.temperature_k
    key = (config.cell_spec, temperature, config.compensated_sensing)
    if key not in _DISTRIBUTION_CACHE:
        if config.compensated_sensing:
            from ..pcm.reference import CompensatedSensing

            _DISTRIBUTION_CACHE[key] = CrossingDistribution(
                model=CompensatedSensing(
                    config.cell_spec, temperature_k=temperature
                )
            )
        else:
            _DISTRIBUTION_CACHE[key] = CrossingDistribution(
                config.cell_spec, temperature_k=temperature
            )
    return _DISTRIBUTION_CACHE[key]


def build_population(
    config: SimulationConfig, streams: RngStreams
) -> LinePopulation:
    """Device state for a configuration (uses the ``"population"`` stream)."""
    endurance = (
        EnduranceModel(config.endurance) if config.endurance is not None else None
    )
    return LinePopulation(
        num_lines=config.num_lines,
        cells_per_line=config.cells_per_line,
        distribution=crossing_distribution_for(config),
        rng=streams.get("population"),
        endurance=endurance,
        keep=config.keep,
        thermal=config.thermal_profile,
    )


def build_stats(policy: ScrubPolicy, config: SimulationConfig) -> ScrubStats:
    """A fresh ledger priced for the policy's ECC scheme."""
    costs = OperationCosts.for_line(
        config.energy,
        config.line,
        ecc_bits=policy.scheme.total_overhead_bits,
        ecc_strength=policy.scheme.t,
    )
    return ScrubStats(costs=costs)


def run_experiment(
    policy: ScrubPolicy,
    config: SimulationConfig | None = None,
    rates: DemandRates | None = None,
) -> RunResult:
    """Simulate ``policy`` under ``rates`` for ``config`` and return results.

    >>> from repro.core import basic_scrub
    >>> from repro import units
    >>> result = run_experiment(
    ...     basic_scrub(interval=units.HOUR),
    ...     SimulationConfig(num_lines=1024, region_size=256,
    ...                      horizon=units.DAY, endurance=None),
    ... )
    >>> result.stats.visits > 0
    True
    """
    if config is None:
        config = SimulationConfig()
    streams = RngStreams(config.seed)
    population = build_population(config, streams)
    stats = build_stats(policy, config)
    engine = PopulationEngine(
        population=population,
        policy=policy,
        stats=stats,
        streams=streams,
        horizon=config.horizon,
        rates=rates,
        region_size=config.region_size,
        retire_hard_limit=config.retire_hard_limit,
        read_refresh=config.read_refresh,
    )
    started = _time.perf_counter()
    engine.simulate()
    elapsed = _time.perf_counter() - started
    all_lines = np.arange(population.num_lines)
    final_state = {
        "stuck_cells": float(population.stuck_counts(all_lines).sum()),
        "hard_mismatch_cells": float(population.hard_mismatch.sum()),
        "mean_writes_per_line": float(population.writes.mean()),
    }
    return RunResult(
        policy_name=policy.name,
        workload_name=engine.rates.name,
        config=config,
        stats=stats,
        runtime_seconds=elapsed,
        final_state=final_state,
    )
