"""Process-parallel experiment execution.

Every experiment is fully independent — :class:`repro.sim.rng.RngStreams`
derives all randomness from the config seed — so sweeps fan out across a
process pool without changing results: ``run_many(specs, jobs=N)`` is
bit-identical to serial execution for any ``N``.

The unit of work is a picklable :class:`RunSpec` (policy factory *name*
plus kwargs, rather than a built policy, so nothing capturing closures or
codec state crosses the process boundary).  Before forking, ``run_many``
pre-warms the crossing-distribution disk cache in the parent so spawn
workers load the tabulation from ``~/.cache/repro`` instead of re-paying
it once per process (see :mod:`repro.sim.runner`).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time as _time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, TypeVar

from ..core import (
    adaptive_scrub,
    basic_scrub,
    combined_scrub,
    light_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from ..core.policy import ScrubPolicy
from ..core.threshold import partial_scrub
from ..workloads.generators import DemandRates
from .config import SimulationConfig
from .results import RunResult
from .runner import crossing_distribution_for, run_experiment

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Policy factories addressable by name from a :class:`RunSpec`.  Names map
#: to the public constructors; kwargs pass through untouched (``basic``
#: accepts only ``interval``).
POLICY_FACTORIES: dict[str, Callable[..., ScrubPolicy]] = {
    "basic": basic_scrub,
    "strong": strong_ecc_scrub,
    "light": light_scrub,
    "threshold": threshold_scrub,
    "partial": partial_scrub,
    "adaptive": adaptive_scrub,
    "combined": combined_scrub,
}


def default_jobs() -> int:
    """CPU-aware worker-count default (capped: runs are memory-bound)."""
    return max(1, min(os.cpu_count() or 1, 8))


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one :func:`repro.sim.runner.run_experiment`.

    >>> from repro import units
    >>> spec = RunSpec(
    ...     policy="basic",
    ...     config=SimulationConfig(num_lines=1024, region_size=256,
    ...                             horizon=units.DAY, endurance=None),
    ...     policy_kwargs={"interval": units.HOUR},
    ... )
    >>> spec.build_policy().name
    'basic(secded)'
    """

    #: Key into :data:`POLICY_FACTORIES`.
    policy: str
    config: SimulationConfig
    #: Keyword arguments for the policy factory (``interval``, ``strength``,
    #: ``threshold``, ...).
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    #: Demand workload; ``None`` simulates an idle device.
    rates: DemandRates | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICY_FACTORIES:
            raise ValueError(
                f"unknown policy factory {self.policy!r}; "
                f"available: {sorted(POLICY_FACTORIES)}"
            )

    def build_policy(self) -> ScrubPolicy:
        return POLICY_FACTORIES[self.policy](**self.policy_kwargs)

    def run(self) -> RunResult:
        return run_experiment(self.build_policy(), self.config, self.rates)


def _execute_spec(spec: RunSpec) -> RunResult:
    return spec.run()


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> list[R]:
    """Order-preserving map over a spawn-context process pool.

    Falls back to inline execution for ``jobs <= 1`` or a single item, so
    small calls pay zero pool overhead.  ``fn`` and every item must be
    picklable (``fn`` should be a module-level function).  A worker failure
    raises :class:`RuntimeError` naming the failing item instead of
    hanging the pool.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    context = multiprocessing.get_context("spawn")
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(fn, item) for item in items]
        results: list[R] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                raise RuntimeError(
                    f"parallel worker died executing item {index}: "
                    f"{items[index]!r}"
                ) from exc
            except Exception as exc:
                raise RuntimeError(
                    f"parallel worker failed on item {index} "
                    f"({items[index]!r}): {exc}"
                ) from exc
    return results


def run_many(specs: Sequence[RunSpec], jobs: int = 1) -> list[RunResult]:
    """Execute specs (possibly) in parallel; results keep spec order.

    Bit-identical to serial execution for any ``jobs``: every stream of
    randomness is derived from each spec's config seed, never from worker
    identity or scheduling order.
    """
    specs = list(specs)
    if not specs:
        return []
    started = _time.perf_counter()
    if jobs > 1 and len(specs) > 1:
        # Tabulate (or disk-load) each distinct distribution once in the
        # parent; spawn workers then hit the disk cache instead of paying
        # the tabulation per process.
        for spec in specs:
            crossing_distribution_for(spec.config)
        results = parallel_map(_execute_spec, specs, jobs=jobs)
    else:
        results = [spec.run() for spec in specs]
    wall = _time.perf_counter() - started
    serial = sum(result.runtime_seconds for result in results)
    logger.info(
        "run_many: %d runs, jobs=%d, wall %.2fs, serial-equivalent %.2fs, "
        "speedup %.2fx",
        len(results),
        jobs,
        wall,
        serial,
        serial / wall if wall > 0 else float("inf"),
    )
    return results


def timing_summary(
    results: Sequence[RunResult], wall_seconds: float, jobs: int
) -> dict[str, float | int]:
    """Machine-readable sweep timing (feeds ``bench_summary.json``)."""
    serial = sum(result.runtime_seconds for result in results)
    return {
        "runs": len(results),
        "jobs": jobs,
        "wall_seconds": round(wall_seconds, 4),
        "serial_seconds": round(serial, 4),
        "speedup": round(serial / wall_seconds, 3) if wall_seconds > 0 else 0.0,
    }
