"""Batched visit engine: whole scheduler cohorts as single array ops.

The scalar :class:`repro.sim.population.PopulationEngine` walks one region
per iteration, paying the full per-visit Python overhead (index gather,
decision call, half a dozen ledger updates) tens of thousands of times on
busy workloads where the quiescent fast-forward layer cannot engage.  This
module batches that loop: every region due at the same scheduler tick -
and, for static uniform-interval policies, the *entire device round* - is
evaluated as one ``(regions, region_size)`` block: a single drift-crossing
comparison, a single detector draw, one vectorized policy decision
(:meth:`repro.core.policy.ScrubPolicy.visit_batch`), and bulk stats/energy
charges (:meth:`repro.core.stats.ScrubStats.record_reads_bulk` and
friends).  Only the sparse consequences - uncorrectable recoveries,
write-backs, retirement - stay in a per-region loop, in ascending region
order so the population RNG stream is consumed exactly as the scalar walk
consumes it.

RNG draw-order contract (what is bit-identical, and why):

* **Engine stream** (detector draws): one C-order ``random((R, S))`` fill
  per cohort is bitwise the scalar walk's R successive ``random(S)``
  per-visit draws, so detector schemes stay bit-identical - including the
  multi-region case the scalar fast-forward layer must stand down for.
* **Population stream** (rewrite/lifetime draws): mutations run per region
  in ascending region order, the same order the scalar walk visits them
  within a round, so idle workloads are bit-identical for every policy.
* **Workload stream** (demand draws): in round mode demand traffic *is*
  batched across the round (one Poisson fill, one arrival-offset fill),
  which reorders draws relative to the scalar walk's per-region
  interleaving whenever more than one region carries demand.  Those runs
  are statistically equivalent, not bitwise equal, and are gated by the
  batch-vs-scalar band in :mod:`repro.verify.equivalence`.  Single-region
  runs and write-idle workloads (including read-refresh with zero read
  rates) replay the scalar draw sequence exactly, as does cohort mode,
  which falls back to member-at-a-time processing for the rare tied
  cohort that carries demand or read-refresh traffic.

Bit-identity is pinned by the ``batch_identity`` metamorphic law
(:mod:`repro.verify.metamorphic`); the statistical regime by
``batch_equivalence``.  Both run under ``pcm-scrub verify``.

Time-series sampling note: the batch engine takes samples at round
granularity (all samples due strictly before a round's first visit are
taken before the round is processed), so a sample landing *mid-round* can
differ from the scalar engine's visit-granular ledger by up to one round
of visits.  The final sample at the horizon is identical.
"""

from __future__ import annotations

import numpy as np

from ..core.policy import BatchVisitDecision
from ..core.stats import ScrubStats
from ..obs.sampler import PeriodicSampler
from .population import PopulationEngine, _advance_rng


class BatchPopulationEngine(PopulationEngine):
    """Cohort-at-a-time event loop over the same population state.

    Construction arguments are identical to
    :class:`~repro.sim.population.PopulationEngine`; only
    :meth:`simulate` differs.  Two driving modes:

    * **round mode** - when the policy exposes a uniform static cadence
      (:meth:`~repro.core.policy.ScrubPolicy.batch_interval`), the stagger
      schedule is replayed whole-device-rounds at a time, with a
      round-level quiescent skip replacing the scalar per-region
      fast-forward (and covering the multi-region detector case the
      scalar layer cannot);
    * **cohort mode** - any other policy keeps the real scheduler; visits
      sharing the exact same tick are popped together and processed as
      one cohort (with the stagger's distinct phases, cohorts are
      typically singletons, which replays the scalar walk bit-exactly).
    """

    engine_mode = "batch"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Static per-region demand mask: which regions ever see demand
        # writes.  Regions outside it draw no workload RNG, matching the
        # scalar `_apply_demand` early return.
        write = self.rates.write_rate.reshape(self.num_regions, self.region_size)
        self._demand_active = (write != 0).any(axis=1)
        #: Round-mode visit clock (``None`` until round mode starts, and
        #: forever in cohort mode).  Lives on the engine so round-mode runs
        #: can suspend between rounds and resume bit-identically.
        self._round_times: np.ndarray | None = None

    def simulate(self, budget: int | None = None) -> ScrubStats:
        """Simulate to the horizon and return the (shared) stats ledger.

        ``budget`` bounds this call to that many loop events (device
        rounds or round-skip jumps in round mode, scheduler cohorts in
        cohort mode); see
        :meth:`repro.sim.population.PopulationEngine.simulate` for the
        suspend/resume contract.
        """
        if self.complete:
            return self.stats
        engine_rng = self.streams.get("engine")
        workload_rng = self.streams.get("workload")
        interval = self.policy.batch_interval()
        if interval is not None:
            return self._simulate_rounds(
                interval, engine_rng, workload_rng, budget
            )
        return self._simulate_cohorts(engine_rng, workload_rng, budget)

    # -- round mode (static uniform-interval policies) -----------------------

    def _prepare_rounds(self, interval: float) -> None:
        """Round-mode analogue of the base engine's ``_prepare``."""
        if self._prepared:
            return
        self._prepared = True
        self._emit_engine_mode()
        if self.obs is not None and self.obs.config.sample_every is not None:
            self._sampler = PeriodicSampler(
                self.obs.config.sample_every,
                self._collect_sample,
                self.obs.timeseries,
            )
        num_regions = self.num_regions
        ff_active = self.fast_forward
        if ff_active and self.read_refresh:
            self._note_fast_forward_disabled("read_refresh", 0.0)
            ff_active = False
        if ff_active:
            if any(
                self.policy.fast_forward_interval(r) is None
                for r in range(num_regions)
            ):
                self._note_fast_forward_disabled("policy", 0.0)
                ff_active = False
            elif not bool(self._ff_region_idle.all()):
                self._note_fast_forward_disabled("demand", 0.0)
                ff_active = False
            else:
                self.population.enable_region_tracking(self.region_size)
        self._ff_active = ff_active
        if self._round_times is None:
            # The scheduler's stagger, replayed verbatim: region r first
            # visits at interval*(r+1)/R, then advances by iterated
            # `+= interval` per round - the same per-region float additions
            # the scalar heap replays, so every visit time is bitwise the
            # scalar one.  Within a round times ascend with the region
            # index and rounds never interleave (round k ends at
            # (k+1)*interval, before round k+1's first phase), matching the
            # heap's (time, region) pop order.
            self._round_times = np.array(
                [interval * (r + 1) / num_regions for r in range(num_regions)]
            )

    def _simulate_rounds(
        self,
        interval: float,
        engine_rng: np.random.Generator,
        workload_rng: np.random.Generator,
        budget: int | None,
    ) -> ScrubStats:
        num_regions = self.num_regions
        regions = np.arange(num_regions)
        self._prepare_rounds(interval)
        times = self._round_times
        sampler = self._sampler

        scratch_last = np.empty(num_regions)
        steps = 0
        with self._profiler.span("simulate"):
            while times[0] <= self.horizon:
                if budget is not None and steps >= budget:
                    return self.stats
                steps += 1
                if sampler is not None:
                    sampler.advance_to(times[0])
                if self._ff_active and self._skip_quiescent_rounds(
                    times, interval, engine_rng, sampler, scratch_last
                ):
                    continue
                if times[-1] <= self.horizon:
                    self._process_cohort(
                        times, regions, engine_rng, workload_rng
                    )
                    times += interval
                else:
                    # Partial final round: only the leading regions still
                    # fit before the horizon, and no later round can.
                    due = int(np.searchsorted(times, self.horizon, side="right"))
                    self._process_cohort(
                        times[:due], regions[:due], engine_rng, workload_rng
                    )
                    break
            self._account_demand_reads()
            if sampler is not None:
                sampler.finalize(self.horizon)
        self.complete = True
        return self.stats

    def _skip_quiescent_rounds(
        self,
        times: np.ndarray,
        interval: float,
        engine_rng: np.random.Generator,
        sampler: PeriodicSampler | None,
        scratch_last: np.ndarray,
    ) -> bool:
        """Fold a run of provably zero-error device rounds into one charge.

        The round-level analogue of the scalar engine's
        :meth:`~repro.sim.population.PopulationEngine._maybe_fast_forward`,
        with the same bit-exactness argument - except the detector clause:
        the batch engine draws the detector for a whole round in visit
        order anyway, so advancing the engine stream by ``rounds * R * S``
        draws is exact for any number of regions (the scalar layer must
        stand down for multi-region detector runs; this one need not).
        Mutates ``times`` past the skipped rounds and returns ``True``
        when anything was skipped.
        """
        population = self.population
        num_regions = self.num_regions
        actionable = min(
            population.region_actionable_time(r) for r in range(num_regions)
        )
        if actionable <= times[-1]:
            return False
        if self.retire_hard_limit is not None and (
            max(population.region_max_stuck(r) for r in range(num_regions))
            >= self.retire_hard_limit
        ):
            return False
        cap = self.horizon
        if sampler is not None and sampler.next_due < cap:
            cap = sampler.next_due
        if not (times[-1] <= cap):
            return False

        first = times.copy()
        rounds = 0
        while times[-1] <= cap and times[-1] < actionable:
            scratch_last[:] = times
            times += interval
            rounds += 1
        if rounds == 0:
            return False

        with self._profiler.span("fastforward"):
            lines = self.region_size
            visits = rounds * num_regions
            has_detector = self.policy.scheme.has_detector
            self.stats.record_zero_error_visits(
                visits, lines, detector=has_detector, decode_all=not has_detector
            )
            if has_detector:
                _advance_rng(engine_rng, visits * lines)
            self._last_visit.reshape(num_regions, lines)[:, :] = (
                scratch_last[:, None]
            )
            self.fast_forward_skipped_visits += visits
            self.fast_forward_jumps += 1
            if self._ff_counter is not None:
                self._ff_counter.inc(visits)
            if self._tracer.enabled:
                for region in range(num_regions):
                    self._tracer.emit(
                        "fast_forward",
                        float(first[region]),
                        region=region,
                        skipped=rounds,
                        to_time=float(times[region]),
                    )
            if self._verifier.enabled:
                self._verifier.note_fast_forward(
                    visited=visits * lines,
                    detected=visits * lines if has_detector else 0,
                    decoded=0 if has_detector else visits * lines,
                )
        return True

    # -- cohort mode (scheduler-driven policies) -----------------------------

    def _simulate_cohorts(
        self,
        engine_rng: np.random.Generator,
        workload_rng: np.random.Generator,
        budget: int | None,
    ) -> ScrubStats:
        self._prepare()
        scheduler = self._scheduler
        sampler = self._sampler
        steps = 0
        with self._profiler.span("simulate"):
            while len(scheduler) and scheduler.peek_time() <= self.horizon:
                if budget is not None and steps >= budget:
                    return self.stats
                steps += 1
                visit = scheduler.pop()
                if sampler is not None:
                    sampler.advance_to(visit.time)
                if self._ff_active:
                    resumed = self._maybe_fast_forward(
                        visit.time, visit.region, engine_rng, sampler
                    )
                    if resumed is not None:
                        scheduler.advance_to(resumed, visit.region)
                        continue
                # Everything due at this exact tick is one cohort; the heap
                # pops ties in ascending region order, matching the batch
                # row order.
                cohort_times = [visit.time]
                cohort_regions = [visit.region]
                while len(scheduler) and scheduler.peek_time() == visit.time:
                    peer = scheduler.pop()
                    cohort_times.append(peer.time)
                    cohort_regions.append(peer.region)
                regions_arr = np.array(cohort_regions)
                # A tied cohort batches only when no member draws workload
                # or inter-visit population randomness: demand and
                # read-refresh interleave their draws with each member's
                # visit mutations in the scalar walk, an order a batched
                # evaluation cannot replay.  Such ties fall back to
                # member-at-a-time processing (still the batch code path,
                # one-row cohorts), which replays the scalar walk exactly.
                if len(cohort_regions) > 1 and (
                    self.read_refresh or self._demand_active[regions_arr].any()
                ):
                    next_intervals = [
                        float(
                            self._process_cohort(
                                np.array([when]),
                                np.array([region]),
                                engine_rng,
                                workload_rng,
                            )[0]
                        )
                        for when, region in zip(cohort_times, cohort_regions)
                    ]
                else:
                    next_intervals = self._process_cohort(
                        np.array(cohort_times),
                        regions_arr,
                        engine_rng,
                        workload_rng,
                    )
                for when, region, nxt in zip(
                    cohort_times, cohort_regions, next_intervals
                ):
                    scheduler.push(when + float(nxt), region)
            self._account_demand_reads()
            if sampler is not None:
                sampler.finalize(self.horizon)
        self.complete = True
        return self.stats

    # -- the batched visit ----------------------------------------------------

    def _process_cohort(
        self,
        times: np.ndarray,
        regions: np.ndarray,
        engine_rng: np.random.Generator,
        workload_rng: np.random.Generator,
    ) -> np.ndarray:
        """One batched pass over ``regions`` visited at per-region ``times``.

        Dense work (demand, error-count evaluation, detector, decision,
        read/detect/decode/histogram charges) runs as whole-cohort array
        ops; sparse consequences (UE recovery, write-backs, retirement,
        tracing, invariant checks) run per region in ascending order so
        the population stream and the scrub-write ledger replay the
        scalar sequence.  Returns the per-region next intervals.
        """
        profiler = self._profiler
        tracer = self._tracer
        population = self.population
        stats = self.stats
        num_regions = regions.shape[0]
        lines_per_region = self.region_size
        idx2 = self._region_index[regions]

        with profiler.span("visit"):
            with profiler.span("demand"):
                self._apply_demand_batch(times, regions, idx2, workload_rng)
                if self.read_refresh:
                    for i in range(num_regions):
                        self._apply_read_refresh(
                            self._region_index[regions[i]],
                            float(times[i]),
                            workload_rng,
                        )

            error_counts = population.error_counts(idx2, times)
            with profiler.span("decode"):
                decision = self.policy.visit_batch(
                    times, regions, error_counts, engine_rng
                )
                if decision is None:
                    decision = self._stacked_scalar_visits(
                        times, regions, error_counts, engine_rng
                    )

            # Dense accounting, replayed in the scalar ledger order: every
            # visit reads (and detector schemes check) the whole region;
            # per-visit decode counts advance the energy accumulator by
            # the same iterated additions the scalar walk makes.  The
            # invariant checker cross-checks the ledger after *every*
            # visit, so verified runs charge region by region inside the
            # loop below instead (same additions, same final ledger).
            has_detector = self.policy.scheme.has_detector
            decoded_counts = decision.decoded.sum(axis=1)
            if not self._verifier.enabled:
                stats.record_reads_bulk(lines_per_region, num_regions)
                if has_detector:
                    stats.record_detects_bulk(lines_per_region, num_regions)
                stats.record_decodes_bulk(decoded_counts)
                stats.record_error_counts(error_counts[decision.decoded])
                stats.detector_misses += int(decision.missed.sum())

            partial = bool(getattr(self.policy, "partial_writeback", False))
            ue_any = decision.uncorrectable.any(axis=1)
            wb_any = decision.written_back.any(axis=1)
            # Tracing, invariant checks, and retirement need every region;
            # otherwise only regions with consequences enter the loop.
            if (
                self.retire_hard_limit is not None
                or tracer.enabled
                or self._verifier.enabled
            ):
                targets = range(num_regions)
            else:
                targets = np.flatnonzero(ue_any | wb_any).tolist()
            hist_cap = stats.error_histogram.size - 1

            for i in targets:
                region = int(regions[i])
                time = float(times[i])
                idx = self._region_index[region]
                row_counts = error_counts[i]
                decoded_row = decision.decoded[i]
                wb_row = decision.written_back[i]
                ue_row = decision.uncorrectable[i]

                if self._verifier.enabled:
                    stats.record_reads(idx.size)
                    if has_detector:
                        stats.record_detects(idx.size)
                    stats.record_decodes(int(decoded_counts[i]))
                    stats.record_error_counts(row_counts[decoded_row])
                    stats.detector_misses += int(decision.missed[i].sum())

                ue_idx = idx[ue_row]
                if ue_idx.size:
                    stats.uncorrectable += ue_idx.size
                    if tracer.enabled:
                        tracer.emit(
                            "uncorrectable",
                            time,
                            region=region,
                            count=int(ue_idx.size),
                        )
                    population.rewrite(
                        ue_idx,
                        self._times_filled(ue_idx.size, time),
                        data_changed=True,
                    )

                partial_cells_visit: int | None = None
                wb_idx = idx[wb_row]
                if wb_idx.size:
                    if partial:
                        cells = population.partial_rewrite(wb_idx, time)
                        partial_cells_visit = int(cells.sum())
                        stats.record_partial_scrub_writes(
                            wb_idx.size, partial_cells_visit
                        )
                    else:
                        stats.record_scrub_writes(wb_idx.size)
                        population.rewrite(
                            wb_idx,
                            self._times_filled(wb_idx.size, time),
                            data_changed=False,
                        )
                elif partial:
                    partial_cells_visit = 0

                retired_visit = 0
                if self.retire_hard_limit is not None:
                    stuck = population.stuck_counts(idx)
                    retire_idx = idx[stuck >= self.retire_hard_limit]
                    if retire_idx.size:
                        requested = int(retire_idx.size)
                        if self.spare_pool is not None:
                            grant = self.spare_pool.request(region, requested)
                            retire_idx = retire_idx[:grant]
                            if tracer.enabled:
                                tracer.emit(
                                    "spare_allocated",
                                    time,
                                    region=region,
                                    requested=requested,
                                    granted=int(grant),
                                )
                        if retire_idx.size:
                            retired_visit = int(retire_idx.size)
                            stats.retired += retire_idx.size
                            if tracer.enabled:
                                tracer.emit(
                                    "retire",
                                    time,
                                    region=region,
                                    count=int(retire_idx.size),
                                )
                            population.retire(retire_idx, time)

                if tracer.enabled:
                    tracer.emit(
                        "scrub_visit",
                        time,
                        region=region,
                        lines=int(idx.size),
                        errors=int(row_counts.sum()),
                        max_errors=(
                            int(row_counts.max()) if row_counts.size else 0
                        ),
                        decoded=int(decoded_counts[i]),
                        written_back=int(wb_row.sum()),
                        uncorrectable=int(ue_row.sum()),
                        next_interval=float(decision.next_intervals[i]),
                    )

                if self._verifier.enabled:
                    capped = np.minimum(row_counts, hist_cap)
                    resolved_mask = wb_row | ue_row
                    observed = int(capped[decoded_row].sum())
                    resolved = int(capped[decoded_row & resolved_mask].sum())
                    pending = int(capped[decoded_row & ~resolved_mask].sum())
                    self._verifier.check_visit(
                        time=time,
                        region=region,
                        visited=int(idx.size),
                        detected=int(idx.size) if has_detector else 0,
                        decoded=int(decoded_counts[i]),
                        written_back=int(wb_row.sum()),
                        partial_cells=partial_cells_visit,
                        uncorrectable=int(ue_idx.size),
                        missed=int(decision.missed[i].sum()),
                        retired=retired_visit,
                        errors_observed=observed,
                        errors_resolved=resolved,
                        errors_pending=pending,
                    )

            self._last_visit.reshape(self.num_regions, lines_per_region)[
                regions
            ] = times[:, None]
            return decision.next_intervals

    def _stacked_scalar_visits(
        self,
        times: np.ndarray,
        regions: np.ndarray,
        error_counts: np.ndarray,
        engine_rng: np.random.Generator,
    ) -> BatchVisitDecision:
        """Row-by-row scalar decisions for policies that don't opt in.

        Each row calls the policy's scalar :meth:`visit` with the cohort's
        per-region time and counts, in row order - exactly the calls (and
        engine-stream draws) the scalar walk would make.
        """
        decisions = [
            self.policy.visit(
                float(times[i]), int(regions[i]), error_counts[i], engine_rng
            )
            for i in range(regions.shape[0])
        ]
        return BatchVisitDecision(
            decoded=np.stack([d.decoded for d in decisions]),
            written_back=np.stack([d.written_back for d in decisions]),
            uncorrectable=np.stack([d.uncorrectable for d in decisions]),
            missed=np.stack([d.missed for d in decisions]),
            next_intervals=np.array([d.next_interval for d in decisions]),
        )

    def _apply_demand_batch(
        self,
        times: np.ndarray,
        regions: np.ndarray,
        idx2: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Poisson demand for the whole cohort in two workload-stream fills.

        Regions that never carry demand draw nothing (matching the scalar
        early return).  With one active region the draws are bitwise the
        scalar `_apply_demand` sequence; with several, the fills cover all
        active regions at once, which reorders the workload stream - the
        statistical-equivalence regime.
        """
        active = self._demand_active[regions]
        if not active.any():
            return
        active_times = times[active]
        flat = idx2[active].ravel()
        rates = self.rates.write_rate[flat]
        now = np.repeat(active_times, self.region_size)
        elapsed = now - self._last_visit[flat]
        counts = rng.poisson(rates * elapsed)
        written = counts > 0
        if not written.any():
            return
        w_idx = flat[written]
        w_counts = counts[written]
        w_elapsed = elapsed[written]
        # Same arrival model as the scalar path: the last of N uniform
        # arrivals in the window sits at start + window * U^(1/N).
        last_offset = w_elapsed * np.power(
            rng.random(w_idx.size), 1.0 / w_counts
        )
        last_write = (now[written] - w_elapsed) + last_offset
        self.population.rewrite(
            w_idx,
            last_write,
            data_changed=True,
            extra_writes=(w_counts - 1),
        )
        self.stats.record_demand_writes(int(w_counts.sum()))
        if self._tracer.enabled:
            active_regions = regions[active]
            row_of = np.repeat(
                np.arange(active_regions.shape[0]), self.region_size
            )[written]
            for j in range(active_regions.shape[0]):
                mask = row_of == j
                if mask.any():
                    self._tracer.emit(
                        "demand_burst",
                        float(active_times[j]),
                        region=int(active_regions[j]),
                        lines=int(mask.sum()),
                        writes=int(w_counts[mask].sum()),
                    )
