"""Simulation engines.

Three engines at different fidelity/speed points:

* :mod:`repro.sim.analytic` - closed-form per-cell error probabilities and
  line-failure models; instant, used for design-space sweeps and to
  cross-check the Monte-Carlo engines.
* :mod:`repro.sim.population` - the workhorse: a vectorized Monte-Carlo
  engine that tracks, per line, only the few smallest drift crossing times
  (order-statistics sampling), making year-scale simulations of large line
  populations run in seconds.  :mod:`repro.sim.batch` layers a batched
  visit loop on the same state (whole scheduler cohorts / device rounds as
  single array ops) for busy workloads where fast-forward cannot engage;
  select it with ``SimulationConfig(engine="batch")``.
* :mod:`repro.sim.bitexact` - drives :class:`repro.pcm.array.LineArray`
  and the real BCH/SECDED codecs bit by bit; slow, used for validation.

:mod:`repro.sim.runner` wires an engine, a scrub policy, and a workload into
one reproducible experiment.
"""

from __future__ import annotations

from ..obs import ObsConfig
from .analytic import AnalyticModel, CrossingDistribution
from .batch import BatchPopulationEngine
from .config import SimulationConfig
from .parallel import RunSpec, default_jobs, parallel_map, run_many
from .population import LinePopulation, PopulationEngine
from .renewal import FiniteHorizonSolution, RenewalModel, RenewalSolution
from .renewal_batch import RenewalTask, clear_propagation_cache, finite_horizon_batch
from .results import RunResult
from .rng import RngStreams
from .runner import (
    build_engine,
    clear_distribution_cache,
    finalize_result,
    run_experiment,
)
from .snapshot import EngineSnapshot, SnapshotError, run_resumable

__all__ = [
    "AnalyticModel",
    "BatchPopulationEngine",
    "CrossingDistribution",
    "EngineSnapshot",
    "FiniteHorizonSolution",
    "LinePopulation",
    "ObsConfig",
    "PopulationEngine",
    "RenewalModel",
    "RenewalSolution",
    "RenewalTask",
    "RngStreams",
    "RunResult",
    "RunSpec",
    "SimulationConfig",
    "SnapshotError",
    "build_engine",
    "clear_distribution_cache",
    "clear_propagation_cache",
    "default_jobs",
    "finalize_result",
    "finite_horizon_batch",
    "parallel_map",
    "run_experiment",
    "run_many",
    "run_resumable",
]
