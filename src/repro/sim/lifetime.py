"""Device-lifetime projection: scrub policy -> years until wear-out.

The paper's 24.4x scrub-write reduction is not (only) an energy story: in
a scrub-write-dominated deployment, every factor off the write rate is a
factor on device life, because endurance is a per-cell budget that line
writes spend.  This module closes that loop analytically:

* the steady-state line write rate comes from the renewal model (scrub
  write-backs at the policy's operating point) plus the demand rate;
* the endurance model converts cumulative writes into a stuck-cell
  fraction;
* a line is *worn out* once its expected stuck population eats the spare
  correction budget the deployment reserves for hard errors.

Everything is closed-form (lognormal CDF + renewal rates), so lifetime
tables across policies cost microseconds - benchmark A10 prints one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from ..params import EnduranceSpec
from ..pcm.endurance import EnduranceModel
from .renewal import RenewalModel, RenewalSolution


@dataclass(frozen=True)
class LifetimeReport:
    """Wear-out projection for one scrub configuration."""

    #: Scrub write-backs per line per second (renewal steady state).
    scrub_write_rate: float
    #: Demand writes per line per second (input).
    demand_write_rate: float
    #: Total line writes per second.
    total_write_rate: float
    #: Per-cell writes each line write costs (1.0 - whole-line writes).
    #: Years until the expected stuck-cell fraction reaches the spare
    #: budget (inf when the write rate is zero).
    years_to_wearout: float
    #: Stuck-cell fraction the projection declared fatal.
    spare_fraction: float
    #: Soft-error rate at the same operating point (UEs/line/s), for the
    #: combined soft+hard picture.
    soft_ue_rate: float


def wearout_writes(endurance: EnduranceSpec, spare_fraction: float) -> float:
    """Cumulative writes at which the stuck fraction hits ``spare_fraction``.

    Inverse lognormal CDF: ``w = exp(mu + sigma * z_q)``.

    >>> spec = EnduranceSpec(mean_writes=1e8, sigma_log10=0.25)
    >>> 1e6 < wearout_writes(spec, 0.001) < 1e8
    True
    """
    if not 0 < spare_fraction < 1:
        raise ValueError("spare_fraction must be in (0, 1)")
    model = EnduranceModel(endurance)
    sigma_ln = endurance.sigma_log10 * math.log(10.0)
    if sigma_ln == 0:
        return endurance.mean_writes
    mu_ln = math.log(endurance.mean_writes) - 0.5 * sigma_ln**2
    from scipy.special import ndtri

    writes = math.exp(mu_ln + sigma_ln * float(ndtri(spare_fraction)))
    # Consistency guard against the forward model.
    assert abs(model.expected_stuck_fraction(writes) - spare_fraction) < 1e-6
    return writes


def project_lifetime(
    renewal: RenewalModel,
    interval: float,
    t_ecc: int,
    threshold: int,
    endurance: EnduranceSpec,
    demand_write_rate: float = 0.0,
    spare_fraction: float = 0.01,
) -> LifetimeReport:
    """Project wear-out for a threshold-scrub operating point.

    ``spare_fraction`` is the stuck-cell fraction the deployment tolerates
    before declaring the device worn (1 % of a 256-cell line is ~2.5 cells
    - consistent with reserving a couple of units of a strong code's
    budget for hard errors).

    The renewal solver assumes idle lines; demand writes both *add* wear
    and *reduce* scrub write-backs (they reset drift clocks).  Using the
    idle scrub rate is therefore conservative on the scrub share, which is
    the quantity policy comparisons care about.
    """
    if demand_write_rate < 0:
        raise ValueError("demand_write_rate must be >= 0")
    solution: RenewalSolution = renewal.solve(interval, t_ecc, threshold)
    total_rate = solution.write_rate + demand_write_rate
    budget = wearout_writes(endurance, spare_fraction)
    years = (
        math.inf
        if total_rate == 0
        else budget / total_rate / units.YEAR
    )
    return LifetimeReport(
        scrub_write_rate=solution.write_rate,
        demand_write_rate=demand_write_rate,
        total_write_rate=total_rate,
        years_to_wearout=years,
        spare_fraction=spare_fraction,
        soft_ue_rate=solution.ue_rate,
    )
