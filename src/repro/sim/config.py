"""Experiment configuration.

One :class:`SimulationConfig` fully determines a run together with a policy
and a workload: geometry, device specs, horizon, temperature, and seed.
Keeping it a frozen dataclass makes sweeps trivial
(``dataclasses.replace``) and results self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import units
from ..obs.config import ObsConfig
from ..params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from ..pcm.thermal import ThermalProfile
from ..verify.config import VerifyConfig


@dataclass(frozen=True)
class SimulationConfig:
    """Everything about a run except the policy and the workload."""

    #: Monte-Carlo line population size.  Results scale linearly to real
    #: capacities (a 16 GiB DIMM is ~2^28 lines); the default balances
    #: statistical resolution against runtime.
    num_lines: int = 16384
    #: Lines per scrub region (bank granularity for adaptive intervals).
    region_size: int = 1024
    #: Simulated wall-clock seconds.
    horizon: float = 30 * units.DAY
    #: Experiment seed; all randomness derives from it.
    seed: int = 2012
    #: Operating temperature in kelvin (drift acceleration).  Ignored when
    #: a ``thermal_profile`` is set.
    temperature_k: float = 300.0
    #: Optional time-varying temperature schedule; overrides
    #: ``temperature_k`` (the crossing distribution is tabulated at the
    #: profile's reference temperature and mapped through effective age).
    thermal_profile: ThermalProfile | None = None
    #: Device specifications.
    line: LineSpec = field(default_factory=LineSpec)
    energy: EnergySpec = field(default_factory=EnergySpec)
    #: Endurance spec; ``None`` disables wear-out (pure soft-error studies).
    endurance: EnduranceSpec | None = field(default_factory=EnduranceSpec)
    #: Retire lines at this many stuck cells (``None`` disables).
    retire_hard_limit: int | None = None
    #: Treat demand reads as scrub probes (read-triggered refresh); see
    #: :class:`repro.sim.population.PopulationEngine`.
    read_refresh: bool = False
    #: Use drift-compensated (time-aware) read references; see
    #: :class:`repro.pcm.reference.CompensatedSensing`.  Composes with
    #: ``temperature_k`` but not with ``thermal_profile`` (compensation
    #: would need the profile-corrected age, which the hardware being
    #: modelled does not have).
    compensated_sensing: bool = False
    #: Order statistics kept per line; must exceed the strongest ECC t
    #: by a comfortable margin.
    keep: int = 24
    #: Spare lines provisioned per scrub region (``None`` disables the
    #: spare pool).  Retired lines draw replacements from their region's
    #: pool; see :class:`repro.mem.sparing.SparePool`.
    spares_per_region: int | None = None
    #: Telemetry to collect (tracing / time-series sampling / profiling);
    #: everything off by default, and disabled runs are bit-identical to
    #: the pre-observability engine.  See :mod:`repro.obs`.
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Runtime checks to perform (conservation-law invariants); everything
    #: off by default, and checks never perturb results either way - they
    #: only read state and raise on violation.  See :mod:`repro.verify`.
    verify: VerifyConfig = field(default_factory=VerifyConfig)
    #: Quiescent-visit fast-forward: fold provably error-free scrub visits
    #: into bulk charges instead of walking them one by one.  Results are
    #: bit-identical either way (that is the feature's contract, enforced
    #: by a metamorphic law); disable to run the naive event loop, e.g.
    #: when timing it.  See docs/performance.md.
    fast_forward: bool = True
    #: Which visit engine drives the run: ``"scalar"`` walks regions one
    #: visit at a time (the reference oracle); ``"batch"`` processes whole
    #: scheduler cohorts — and, for static uniform-interval policies, whole
    #: device rounds — as single array ops
    #: (:class:`repro.sim.batch.BatchPopulationEngine`).  Bit-identical to
    #: scalar wherever RNG draw order is preserved (idle workloads,
    #: single-region runs, per-tick cohorts); statistically equivalent
    #: (gated by ``pcm-scrub verify``) where batching demand traffic across
    #: regions reorders draws.  See docs/performance.md.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError("num_lines must be positive")
        if self.region_size <= 0 or self.num_lines % self.region_size:
            raise ValueError("region_size must divide num_lines")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.temperature_k <= 0:
            raise ValueError("temperature_k must be positive kelvin")
        if self.keep <= 8:
            raise ValueError("keep must exceed the strongest ECC strength")
        if self.spares_per_region is not None and self.spares_per_region < 0:
            raise ValueError("spares_per_region must be non-negative")
        if self.engine not in ("scalar", "batch"):
            raise ValueError(
                f"engine must be 'scalar' or 'batch', got {self.engine!r}"
            )
        if self.compensated_sensing and self.thermal_profile is not None:
            raise ValueError(
                "compensated sensing and thermal profiles do not compose; "
                "see the field docs"
            )

    @property
    def cells_per_line(self) -> int:
        """Data cells per line (check cells are accounted via the scheme)."""
        return self.line.data_cells

    @property
    def cell_spec(self) -> CellSpec:
        return self.line.cell
