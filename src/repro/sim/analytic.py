"""Closed-form error models and the crossing-time mixture distribution.

Two consumers:

* Benchmarks that sweep design spaces (UE probability vs scrub interval per
  ECC strength, experiment E4) want instant closed forms - binomial tails
  over the per-cell drift error probability.
* The population Monte-Carlo engine needs to draw, per line, the *smallest
  few* crossing times of its cells.  For cells holding iid uniform symbols
  the crossing times are iid draws from the level mixture; the engine
  samples their order statistics through the inverse CDF tabulated here.
"""

from __future__ import annotations

import hashlib
import math
import os
import tempfile
from functools import lru_cache
from pathlib import Path

import numpy as np

from ..params import CellSpec
from ..pcm.drift import DriftModel

#: Bumped whenever the tabulation layout or semantics change; stale disk
#: cache entries from older formats are silently ignored.
TABULATION_FORMAT = 1

#: Default log-time grid size shared by the tabulator, the cache key, and
#: the disk-cache loader, so the loader can never drift from the default.
TABULATION_POINTS = 768


class CrossingDistribution:
    """CDF (and inverse) of a random cell's drift crossing time.

    A "random cell" holds a uniformly random symbol; its crossing time is a
    mixture over levels of the per-level crossing distribution, with an atom
    at infinity for the mass that never crosses (the top level, and slow
    tails of the others).  The CDF is tabulated on a log-time grid from the
    analytic per-level error probability and inverted by interpolation.

    Parameters
    ----------
    spec:
        Cell specification.
    temperature_k:
        Operating temperature.
    t_min, t_max:
        Grid range in seconds.  ``t_max`` bounds the horizon the inverse is
        accurate over; crossing times beyond it are treated as infinity
        (irrelevant for any scrub study at practical horizons).
    points:
        Log-grid resolution.
    model:
        Error-probability model to tabulate; any object exposing
        ``spec`` and ``error_probability(level, elapsed)``.  Defaults to
        the plain :class:`~repro.pcm.drift.DriftModel`; pass a
        :class:`~repro.pcm.reference.CompensatedSensing` to study
        time-aware read references with the same engines.
    """

    def __init__(
        self,
        spec: CellSpec | None = None,
        temperature_k: float | None = None,
        t_min: float = 1e-2,
        t_max: float = 1e12,
        points: int = TABULATION_POINTS,
        model=None,
        _tabulation: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        if t_min <= 0 or t_max <= t_min:
            raise ValueError("need 0 < t_min < t_max")
        if points < 8:
            raise ValueError("points must be >= 8")
        if model is not None:
            self.spec = model.spec
            self.drift = model
        else:
            self.spec = spec if spec is not None else CellSpec()
            self.drift = DriftModel(self.spec, temperature_k=temperature_k)
        self.t_min = float(t_min)
        self.t_max = float(t_max)
        self.points = int(points)
        levels = self.spec.num_levels
        if _tabulation is not None:
            # Precomputed grid (e.g. loaded from the disk cache); trusted to
            # match this model - callers must key the arrays correctly.
            grid, per_level = _tabulation
            if grid.shape != (points,) or per_level.shape != (levels, points):
                raise ValueError("tabulation arrays do not match grid params")
            self.grid = np.ascontiguousarray(grid, dtype=np.float64)
            per_level = np.ascontiguousarray(per_level, dtype=np.float64)
        else:
            self.grid = np.logspace(math.log10(t_min), math.log10(t_max), points)
            per_level = np.zeros((levels, points))
            for level in range(levels):
                per_level[level] = [
                    self.drift.error_probability(level, t) for t in self.grid
                ]
        #: Per-level CDFs on the grid (row = level).
        self.per_level_cdf = per_level
        #: Mixture CDF for a uniformly random symbol.
        self.cdf_values = per_level.mean(axis=0)
        # Enforce monotonicity against integration noise.
        self.cdf_values = np.maximum.accumulate(self.cdf_values)
        #: Probability that a random cell ever crosses within the grid.
        self.max_probability = float(self.cdf_values[-1])

    # -- forward ------------------------------------------------------------

    def cdf(self, t: float | np.ndarray) -> np.ndarray:
        """P(crossing time <= t) for a uniformly random cell."""
        t = np.asarray(t, dtype=np.float64)
        out = np.interp(t, self.grid, self.cdf_values, left=0.0, right=self.max_probability)
        return out

    def level_cdf(self, level: int, t: float | np.ndarray) -> np.ndarray:
        """P(crossing time <= t) for a cell at a specific level."""
        if not 0 <= level < self.spec.num_levels:
            raise ValueError(f"level {level} out of range")
        t = np.asarray(t, dtype=np.float64)
        return np.interp(
            t, self.grid, self.per_level_cdf[level],
            left=0.0, right=float(self.per_level_cdf[level][-1]),
        )

    # -- inverse ---------------------------------------------------------------

    def quantile(self, u: np.ndarray) -> np.ndarray:
        """Inverse CDF; probabilities above the crossing mass map to inf."""
        u = np.asarray(u, dtype=np.float64)
        out = np.full(u.shape, np.inf)
        finite = u < self.max_probability
        if finite.any():
            out[finite] = np.interp(u[finite], self.cdf_values, self.grid)
        return out

    # -- order-statistics sampling ----------------------------------------------

    def sample_smallest(
        self,
        num_lines: int,
        cells_per_line: int,
        keep: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw the ``keep`` smallest crossing times for each of many lines.

        Uses the uniform order-statistics recurrence
        ``u_(i+1) = u_(i) + (1 - u_(i)) * (1 - V^(1/(C-i)))`` with
        ``V ~ U(0,1)``, i.e. ``1 - u_(i)`` is the running product of
        ``V_j^(1/(C-j))``, then maps through the inverse CDF.  All
        ``num_lines * keep`` uniforms are drawn in one generator call and
        the recurrence collapses to a row-wise cumulative product, so the
        cost is one vectorized pass regardless of ``cells_per_line`` - the
        trick that makes year-scale population simulation cheap.

        Returns an array of shape ``(num_lines, keep)``, ascending along
        axis 1, with ``inf`` past the line's last crossing.
        """
        if keep <= 0:
            raise ValueError("keep must be positive")
        if keep > cells_per_line:
            raise ValueError("cannot keep more order statistics than cells")
        v = rng.random((num_lines, keep))
        # 1 - u_(i) = prod_{j <= i} V_j^(1/(C-j)): min of C-j remaining
        # uniforms on (u_(j-1), 1), telescoped into one cumulative product.
        exponents = 1.0 / (cells_per_line - np.arange(keep))
        u = 1.0 - np.cumprod(np.power(v, exponents), axis=1)
        return self.quantile(u)

    # -- identity ---------------------------------------------------------------

    def content_hash(self) -> str:
        """Hash of the tabulated arrays this distribution evaluates from.

        Two distributions with equal hashes produce bit-identical ``cdf``/
        ``quantile`` answers, whatever model produced the tabulation - the
        property the renewal propagation memo keys on
        (:mod:`repro.sim.renewal_batch`).  Computed once and cached on the
        instance (the arrays are never mutated after construction).
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            digest = hashlib.sha256()
            digest.update(repr(self.grid.shape).encode())
            digest.update(np.ascontiguousarray(self.grid).tobytes())
            digest.update(repr(self.per_level_cdf.shape).encode())
            digest.update(np.ascontiguousarray(self.per_level_cdf).tobytes())
            cached = digest.hexdigest()
            self._content_hash = cached
        return cached


# -- persistent tabulation cache ------------------------------------------------


def tabulation_cache_key(
    spec: CellSpec,
    temperature_k: float | None,
    compensated: bool = False,
    t_min: float = 1e-2,
    t_max: float = 1e12,
    points: int = TABULATION_POINTS,
) -> str:
    """Content hash identifying one tabulated crossing distribution.

    Everything the tabulated arrays depend on goes into the hash: the full
    cell specification (dataclass repr covers every field), the operating
    temperature, whether a drift-compensated reference model was used, and
    the log-grid parameters.  Two configurations with equal keys have
    bit-identical tabulations.
    """
    if temperature_k is None:
        temperature_k = spec.reference_temperature_k
    payload = "|".join(
        [
            f"v{TABULATION_FORMAT}",
            repr(spec),
            repr(float(temperature_k)),
            repr(bool(compensated)),
            repr((float(t_min), float(t_max), int(points))),
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def tabulation_cache_dir() -> Path | None:
    """Directory for persisted tabulations, or ``None`` when disabled.

    ``REPRO_CACHE_DIR`` overrides the default ``~/.cache/repro``;
    ``REPRO_NO_DISK_CACHE`` (any non-empty value) disables persistence.
    """
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def tabulation_cache_path(key: str, directory: Path) -> Path:
    return directory / f"crossing-{key}.npz"


def save_tabulation(
    distribution: CrossingDistribution, key: str, directory: Path
) -> Path | None:
    """Persist a tabulated grid under ``key``; best-effort, atomic.

    Concurrent writers (parallel sweep workers racing on a cold cache) are
    safe: each writes a private temp file and renames it into place.
    Returns the cache path, or ``None`` when the write failed (read-only
    cache dirs are tolerated, not fatal).
    """
    path = tabulation_cache_path(key, directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    key=np.array(key),
                    grid=distribution.grid,
                    per_level_cdf=distribution.per_level_cdf,
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def load_tabulation(
    key: str, num_levels: int, points: int, directory: Path
) -> tuple[np.ndarray, np.ndarray] | None:
    """Load the tabulated ``(grid, per_level_cdf)`` for ``key``.

    Returns ``None`` on any miss: absent file, corrupted archive, key
    mismatch (hash collision on the truncated filename, or a stale format),
    or array shapes that do not match the requested grid.  Never raises -
    a bad cache entry must degrade to re-tabulation, not failure.
    """
    path = tabulation_cache_path(key, directory)
    try:
        with np.load(path, allow_pickle=False) as data:
            if str(data["key"]) != key:
                return None
            grid = np.asarray(data["grid"], dtype=np.float64)
            per_level = np.asarray(data["per_level_cdf"], dtype=np.float64)
    except Exception:
        return None
    if grid.shape != (points,) or per_level.shape != (num_levels, points):
        return None
    if not (np.isfinite(grid).all() and np.isfinite(per_level).all()):
        return None
    return grid, per_level


class AnalyticModel:
    """Closed-form line and population failure math.

    All methods assume errors strike cells independently with the mixture
    probability from :class:`CrossingDistribution` - exact for iid uniform
    data, and the same assumption the Monte-Carlo engine samples from.
    """

    def __init__(self, distribution: CrossingDistribution, cells_per_line: int):
        if cells_per_line <= 0:
            raise ValueError("cells_per_line must be positive")
        self.distribution = distribution
        self.cells_per_line = cells_per_line

    def cell_error_probability(self, elapsed: float) -> float:
        """P(random cell misreads ``elapsed`` seconds after its write)."""
        return float(self.distribution.cdf(elapsed))

    def line_error_count_pmf(self, elapsed: float, max_k: int) -> np.ndarray:
        """PMF of the number of drifted cells in a line, k = 0..max_k.

        Binomial(C, p) with p the mixture probability.  The last entry is
        NOT a tail: callers wanting P(k > t) should use
        :meth:`line_failure_probability`.
        """
        p = self.cell_error_probability(elapsed)
        return _binomial_pmf(self.cells_per_line, p, max_k)

    def line_failure_probability(self, elapsed: float, t_ecc: int) -> float:
        """P(more than ``t_ecc`` drifted cells ``elapsed`` s after write).

        This is the per-visit UE probability of a line scrubbed (and fully
        rewritten) every ``elapsed`` seconds.
        """
        if t_ecc < 0:
            raise ValueError("t_ecc must be >= 0")
        p = self.cell_error_probability(elapsed)
        return _binomial_tail(self.cells_per_line, p, t_ecc)

    def expected_errors_per_line(self, elapsed: float) -> float:
        """Mean drifted cells per line after ``elapsed`` seconds."""
        return self.cells_per_line * self.cell_error_probability(elapsed)

    def ue_rate_per_line(self, scrub_interval: float, t_ecc: int) -> float:
        """Long-run uncorrectable errors per line per second.

        With write-back every scrub, each interval is an independent trial
        failing with :meth:`line_failure_probability`.
        """
        if scrub_interval <= 0:
            raise ValueError("scrub_interval must be positive")
        return self.line_failure_probability(scrub_interval, t_ecc) / scrub_interval

    def ue_per_population(
        self, scrub_interval: float, t_ecc: int, num_lines: int, horizon: float
    ) -> float:
        """Expected UE count over ``horizon`` for ``num_lines`` lines."""
        if horizon < 0 or num_lines < 0:
            raise ValueError("horizon and num_lines must be >= 0")
        return self.ue_rate_per_line(scrub_interval, t_ecc) * num_lines * horizon

    def required_interval(
        self, t_ecc: int, target_failure_probability: float,
        low: float = 1e-1, high: float = 1e10,
    ) -> float:
        """Largest scrub interval whose per-visit line-failure probability
        stays at or below ``target_failure_probability``.

        :meth:`line_failure_probability` is monotone increasing in the
        interval, so geometric bisection applies.  Returns ``high`` when
        even the longest interval meets the target.
        """
        if not 0 < target_failure_probability < 1:
            raise ValueError("target probability must be in (0, 1)")
        if self.line_failure_probability(high, t_ecc) <= target_failure_probability:
            return high
        if self.line_failure_probability(low, t_ecc) > target_failure_probability:
            raise ValueError("target unreachable even at the shortest interval")
        for _ in range(200):
            mid = math.sqrt(low * high)
            if self.line_failure_probability(mid, t_ecc) <= target_failure_probability:
                low = mid
            else:
                high = mid
        return low


def _binomial_pmf(n: int, p: float, max_k: int) -> np.ndarray:
    """PMF of Binomial(n, p) for k = 0..max_k, numerically stable in logs."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    max_k = min(max_k, n)
    ks = np.arange(max_k + 1)
    if p == 0:
        out = np.zeros(max_k + 1)
        out[0] = 1.0
        return out
    if p == 1:
        out = np.zeros(max_k + 1)
        if max_k == n:
            out[-1] = 1.0
        return out
    log_terms = (
        _log_comb(n, ks)
        + ks * math.log(p)
        + (n - ks) * math.log1p(-p)
    )
    return np.exp(log_terms)


def _binomial_tail(n: int, p: float, t: int) -> float:
    """P(Binomial(n, p) > t), computed as the complement of the head sum.

    Tails below the double-precision noise floor of ``1 - head``
    (~2.2e-16) are reported as exactly 0 rather than as rounding residue.
    """
    if t >= n:
        return 0.0
    pmf = _binomial_pmf(n, p, t)
    head = float(pmf.sum())
    tail = 1.0 - head
    if tail < 1e-15:
        return 0.0
    return min(1.0, tail)


@lru_cache(maxsize=None)
def _log_factorials(n: int) -> np.ndarray:
    from math import lgamma

    return np.array([lgamma(i + 1) for i in range(n + 1)])


def _log_comb(n: int, ks: np.ndarray) -> np.ndarray:
    table = _log_factorials(n)
    return table[n] - table[ks] - table[n - ks]
