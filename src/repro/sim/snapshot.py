"""Mid-horizon engine snapshots: suspend a device run, resume it bit-exactly.

A multi-year-horizon device simulation is the unit of work the fleet
service schedules, and it can be hours of wall-clock on a busy workload -
far longer than a worker lease.  This module makes the *device* itself
checkpointable: :class:`EngineSnapshot` captures the complete mutable
state of a suspended :class:`repro.sim.population.PopulationEngine` (or
its batch subclass) at an event boundary, and restores it into a freshly
built engine in another process such that the continued run is
**bit-identical** to the uninterrupted one.

Why this is exact
-----------------

Between loop events the engine's behaviour is a pure function of:

* the population order-statistics arrays (``crossing``, ``writes``,
  ``hard_mismatch``, fractional wear, ``lifetime``),
* the per-line last-visit clock,
* the scheduler (heap entries + current time) or, in the batch engine's
  round mode, the per-region round clock,
* the stats ledger (integer counters, the error histogram, and the
  per-category float energy accumulators),
* the policy's mutable state (:meth:`repro.core.policy.ScrubPolicy.state_dict`,
  e.g. the adaptive controller's per-region intervals),
* the spare-pool budget, and
* the ``bit_generator`` state of every named RNG stream.

All of it is captured here.  Arrays travel in an ``.npz`` payload (binary
float64, bitwise-exact); scalars travel in an embedded JSON document
(Python's ``json`` round-trips finite floats exactly via ``repr``).  The
per-region fast-forward caches are deliberately *not* captured: they are
lazily derived from the arrays and rebuilt dirty on resume, with no RNG
involved.

Compatibility guard
-------------------

Snapshots refuse to capture runs with observability or verification
enabled (both hold in-memory event state a resume cannot reconstruct;
fleet devices run with both off).  Each snapshot embeds a format version
and a caller-supplied *fingerprint* (the service uses
``"<spec-hash>/device-<index>"``), and :meth:`EngineSnapshot.apply`
refuses version, fingerprint, engine-mode, or geometry mismatches rather
than resuming into a different experiment.

Snapshot files are written via temp-file + ``os.replace``, so a worker
killed mid-save leaves the previous snapshot intact, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
import time as _time
from pathlib import Path

import numpy as np

from ..core.policy import ScrubPolicy
from ..core.scheduler import ScrubScheduler
from ..pcm.energy import LEDGER_CATEGORIES
from ..workloads.generators import DemandRates
from .config import SimulationConfig
from .population import PopulationEngine
from .results import RunResult
from .runner import build_engine, finalize_result

#: Snapshot format version; bumped on any layout or semantics change.
SNAPSHOT_VERSION = 1

#: Integer counters of :class:`repro.core.stats.ScrubStats` captured
#: verbatim (the histogram and ledger are handled separately).
_STATS_COUNTERS = (
    "uncorrectable",
    "visits_with_errors",
    "visits",
    "detector_misses",
    "retired",
    "demand_writes",
    "partial_cells",
)


class SnapshotError(RuntimeError):
    """The engine cannot be snapshotted, or a snapshot cannot be applied."""


class EngineSnapshot:
    """Complete suspended-engine state: JSON metadata + binary arrays."""

    def __init__(self, meta: dict, arrays: dict[str, np.ndarray]):
        self.meta = meta
        self.arrays = arrays

    # -- capture --------------------------------------------------------------

    @classmethod
    def capture(cls, engine: PopulationEngine, fingerprint: str) -> "EngineSnapshot":
        """Snapshot a suspended engine (after ``simulate(budget=...)``)."""
        if engine.obs is not None:
            raise SnapshotError(
                "cannot snapshot a run with observability enabled: traces "
                "and time series hold in-memory state a resume cannot rebuild"
            )
        if engine._verifier.enabled:
            raise SnapshotError(
                "cannot snapshot a run with invariant verification enabled"
            )
        if engine.complete:
            raise SnapshotError("engine already ran to completion")
        if not engine._prepared:
            raise SnapshotError(
                "engine has not started; call simulate(budget=...) first"
            )

        population = engine.population
        stats = engine.stats
        ledger = stats.ledger

        meta: dict = {
            "version": SNAPSHOT_VERSION,
            "fingerprint": fingerprint,
            "engine_mode": engine.engine_mode,
            "batch_mode": cls._batch_mode(engine),
            "scheduler": (
                engine._scheduler.state() if engine._scheduler is not None else None
            ),
            "streams": {
                name: generator.bit_generator.state
                for name, generator in engine.streams._streams.items()
            },
            "policy": engine.policy.state_dict(),
            "stats": {key: int(getattr(stats, key)) for key in _STATS_COUNTERS},
            "ledger_counts": {
                key: int(ledger.counts[key]) for key in LEDGER_CATEGORIES
            },
            "fast_forward_skipped_visits": int(engine.fast_forward_skipped_visits),
            "fast_forward_jumps": int(engine.fast_forward_jumps),
            "ff_disabled_reported": sorted(engine._ff_disabled_reported),
        }
        arrays: dict[str, np.ndarray] = {
            "crossing": population.crossing,
            "writes": population.writes,
            "hard_mismatch": population.hard_mismatch,
            "fractional_wear": population._fractional_wear,
            "lifetime": population.lifetime,
            "last_visit": engine._last_visit,
            "error_histogram": stats.error_histogram,
            "ledger_energy": np.array(
                [ledger.energy[key] for key in LEDGER_CATEGORIES]
            ),
        }
        round_times = getattr(engine, "_round_times", None)
        if round_times is not None:
            arrays["round_times"] = round_times
        if engine.spare_pool is not None:
            arrays["spare_used"] = engine.spare_pool.used
            meta["spare_refused"] = int(engine.spare_pool.refused)
        return cls(meta, {key: np.array(value) for key, value in arrays.items()})

    @staticmethod
    def _batch_mode(engine: PopulationEngine) -> str:
        """Which loop drives the run: heap scheduler or round clock."""
        if engine.engine_mode == "batch" and engine.policy.batch_interval() is not None:
            return "rounds"
        return "heap"

    # -- restore --------------------------------------------------------------

    def apply(self, engine: PopulationEngine, fingerprint: str) -> None:
        """Restore this snapshot into a freshly built, unstarted engine."""
        meta = self.meta
        if meta["version"] != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot format version {meta['version']!r}; this build "
                f"reads version {SNAPSHOT_VERSION}"
            )
        if meta["fingerprint"] != fingerprint:
            raise SnapshotError(
                f"snapshot belongs to {meta['fingerprint']!r}, not "
                f"{fingerprint!r}; refusing to resume a different run"
            )
        if meta["engine_mode"] != engine.engine_mode:
            raise SnapshotError(
                f"snapshot was taken by the {meta['engine_mode']!r} engine, "
                f"resume target is {engine.engine_mode!r}"
            )
        if meta["batch_mode"] != self._batch_mode(engine):
            raise SnapshotError(
                "snapshot and resume target disagree on the batch driving mode"
            )
        if engine._prepared or engine.complete:
            raise SnapshotError("snapshots restore only into unstarted engines")

        population = engine.population
        expected = {
            "crossing": population.crossing.shape,
            "lifetime": population.lifetime.shape,
            "last_visit": engine._last_visit.shape,
        }
        for key, shape in expected.items():
            if self.arrays[key].shape != shape:
                raise SnapshotError(
                    f"snapshot array {key!r} has shape "
                    f"{self.arrays[key].shape}, engine expects {shape}"
                )

        population.crossing[:] = self.arrays["crossing"]
        population.writes[:] = self.arrays["writes"]
        population.hard_mismatch[:] = self.arrays["hard_mismatch"]
        population._fractional_wear[:] = self.arrays["fractional_wear"]
        population.lifetime[:] = self.arrays["lifetime"]
        engine._last_visit[:] = self.arrays["last_visit"]

        stats = engine.stats
        for key in _STATS_COUNTERS:
            setattr(stats, key, int(meta["stats"][key]))
        stats.error_histogram[:] = self.arrays["error_histogram"]
        ledger = stats.ledger
        energy = self.arrays["ledger_energy"]
        for position, key in enumerate(LEDGER_CATEGORIES):
            ledger.counts[key] = int(meta["ledger_counts"][key])
            ledger.energy[key] = float(energy[position])

        for name, state in meta["streams"].items():
            engine.streams.get(name).bit_generator.state = state
        engine.policy.load_state_dict(meta["policy"])

        if meta["scheduler"] is not None:
            engine._scheduler = ScrubScheduler.from_state(
                engine.num_regions, meta["scheduler"]
            )
        if "round_times" in self.arrays:
            engine._round_times = self.arrays["round_times"].copy()
        if engine.spare_pool is not None:
            if "spare_used" not in self.arrays:
                raise SnapshotError(
                    "engine has a spare pool but the snapshot carries no "
                    "spare state"
                )
            engine.spare_pool.used[:] = self.arrays["spare_used"]
            engine.spare_pool.refused = int(meta["spare_refused"])

        engine.fast_forward_skipped_visits = int(
            meta["fast_forward_skipped_visits"]
        )
        engine.fast_forward_jumps = int(meta["fast_forward_jumps"])
        engine._ff_disabled_reported = set(meta["ff_disabled_reported"])
        # _prepared stays False: the next simulate() re-arms the derived
        # fast-forward caches (deterministic, RNG-free) and skips the
        # scheduler/round-clock setup the restore just provided.

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the snapshot atomically (temp file + ``os.replace``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(self.arrays)
        payload["__meta__"] = np.frombuffer(
            json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "EngineSnapshot":
        """Read a snapshot written by :meth:`save`."""
        try:
            with np.load(path) as payload:
                arrays = {
                    key: payload[key] for key in payload.files if key != "__meta__"
                }
                meta = json.loads(bytes(payload["__meta__"]).decode())
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            raise SnapshotError(f"snapshot {path} is unreadable: {error}") from None
        return cls(meta, arrays)


#: Default events (visits/rounds/jumps) between mid-device checkpoints.
DEFAULT_SNAPSHOT_BUDGET = 256


def run_resumable(
    policy: ScrubPolicy,
    config: SimulationConfig,
    rates: DemandRates | None = None,
    *,
    snapshot_path: str | Path,
    fingerprint: str,
    snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
    on_checkpoint=None,
) -> RunResult:
    """Run one device with periodic mid-horizon snapshots.

    If ``snapshot_path`` exists, the run resumes from it; otherwise it
    starts fresh.  Every ``snapshot_budget`` engine events the current
    state is saved atomically (and ``on_checkpoint()`` invoked - the
    service worker heartbeats there), so a SIGKILL at any point loses at
    most one budget's worth of events and the rerun is bit-identical to
    an uninterrupted one.  The snapshot file is left in place on return;
    the caller deletes it after journaling the completed device.
    """
    if snapshot_budget <= 0:
        raise ValueError("snapshot_budget must be positive")
    snapshot_path = Path(snapshot_path)
    engine = build_engine(policy, config, rates)
    started = _time.perf_counter()
    if snapshot_path.exists():
        EngineSnapshot.load(snapshot_path).apply(engine, fingerprint)
    while True:
        engine.simulate(budget=snapshot_budget)
        if engine.complete:
            break
        EngineSnapshot.capture(engine, fingerprint).save(snapshot_path)
        if on_checkpoint is not None:
            on_checkpoint()
    elapsed = _time.perf_counter() - started
    return finalize_result(engine, policy, config, elapsed)
