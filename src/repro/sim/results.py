"""Run results: metrics, comparisons, and export.

:class:`RunResult` pairs a finished :class:`repro.core.stats.ScrubStats`
with its configuration and exposes the paper's three headline comparisons
(:meth:`RunResult.ue_reduction_vs`, :meth:`RunResult.write_factor_vs`,
:meth:`RunResult.energy_reduction_vs`) so every benchmark states them the
same way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.stats import ScrubStats
from ..obs.sampler import TimeSeries
from .config import SimulationConfig


@dataclass(frozen=True)
class RunResult:
    """One finished simulation."""

    policy_name: str
    workload_name: str
    config: SimulationConfig
    stats: ScrubStats
    #: Wall-clock seconds the simulation took (not simulated time).
    runtime_seconds: float
    #: End-of-run device state: stuck cells, conflicting stuck cells, and
    #: mean per-line write count (wear).  Empty when not collected.
    final_state: dict[str, float] = field(default_factory=dict)
    #: Structured events recorded during the run (``None`` unless
    #: ``config.obs.trace`` was set); see :mod:`repro.obs.trace`.
    trace: list[dict] | None = None
    #: Periodic metric samples (``None`` unless ``config.obs.sample_every``
    #: was set); the final sample is taken exactly at the horizon and
    #: matches the :class:`ScrubStats` aggregates.
    timeseries: TimeSeries | None = None
    #: Per-phase wall-time report (``None`` unless ``config.obs.profile``
    #: was set); see :mod:`repro.obs.profile`.
    profile: dict[str, dict[str, float]] | None = None
    #: Fast-forward engagement counters (``None`` when the run disabled
    #: fast-forward).  Purely diagnostic: the simulated results are
    #: bit-identical whether or not fast-forward engaged, so these live
    #: outside the stats ledger and outside :meth:`to_dict`.
    fast_forward: dict[str, int] | None = None

    @property
    def stuck_cells(self) -> float:
        """Worn-out cells at end of run (tracked order statistics)."""
        return self.final_state.get("stuck_cells", 0.0)

    @property
    def mean_writes_per_line(self) -> float:
        return self.final_state.get("mean_writes_per_line", 0.0)

    # -- headline metrics ------------------------------------------------------

    @property
    def uncorrectable(self) -> int:
        return self.stats.uncorrectable

    @property
    def scrub_writes(self) -> int:
        return self.stats.scrub_writes

    @property
    def scrub_energy(self) -> float:
        return self.stats.scrub_energy

    # -- paper-style comparisons -----------------------------------------------

    def ue_reduction_vs(self, baseline: "RunResult") -> float:
        """Fractional UE reduction relative to ``baseline`` (0.965 = 96.5 %)."""
        if baseline.uncorrectable == 0:
            raise ZeroDivisionError("baseline saw no uncorrectable errors")
        return 1.0 - self.uncorrectable / baseline.uncorrectable

    def write_factor_vs(self, baseline: "RunResult") -> float:
        """How many times fewer scrub writes than ``baseline`` (24.4 = 24.4x)."""
        if self.scrub_writes == 0:
            return float("inf")
        return baseline.scrub_writes / self.scrub_writes

    def energy_reduction_vs(self, baseline: "RunResult") -> float:
        """Fractional scrub-energy reduction relative to ``baseline``."""
        if baseline.scrub_energy == 0:
            raise ZeroDivisionError("baseline consumed no scrub energy")
        return 1.0 - self.scrub_energy / baseline.scrub_energy

    # -- export ---------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-serializable summary.

        Keys are stable across runs; the telemetry keys (``timeseries``,
        ``profile``) appear only when the run collected them.
        """
        out = {
            "policy": self.policy_name,
            "workload": self.workload_name,
            "num_lines": self.config.num_lines,
            "horizon_s": self.config.horizon,
            "seed": self.config.seed,
            "temperature_k": self.config.temperature_k,
            "runtime_s": self.runtime_seconds,
            **self.stats.summary(),
            "energy_breakdown_j": self.stats.energy_breakdown(),
            "final_state": dict(self.final_state),
        }
        if self.timeseries is not None:
            out["timeseries"] = self.timeseries.to_dict()
        if self.profile is not None:
            out["profile"] = self.profile
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
