"""Memory-system substrate: geometry, address mapping, and bank timing.

Scrub is a memory-controller mechanism: it shares banks with demand
traffic, and its reads/writes occupy banks for real time.  This package
provides the DIMM geometry and address mapping
(:mod:`repro.mem.geometry`) and a bank-occupancy queueing model
(:mod:`repro.mem.controller`) used to quantify the performance interference
of each scrub mechanism (experiment E13).
"""

from __future__ import annotations

from .geometry import Interleaving, MemoryGeometry
from .controller import BankQueueModel, ControllerReport, ScrubTraffic

__all__ = [
    "BankQueueModel",
    "ControllerReport",
    "Interleaving",
    "MemoryGeometry",
    "ScrubTraffic",
]
