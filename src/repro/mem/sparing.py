"""Finite spare-pool management behind line retirement.

The population engine's ``retire_hard_limit`` remaps wear-terminal lines
to fresh spares; real devices reserve a *finite* spare pool per region
(extra rows the controller can map in).  This module adds the budget:

* :class:`SparePool` tracks per-region spare counts and answers retirement
  requests - grant while spares remain, refuse afterwards;
* refused retirements mean the broken line stays in service, surfacing an
  uncorrectable error at every subsequent visit: the device has reached
  end of life in that region, which is exactly the signal lifetime studies
  need (benchmark A12 sweeps the provisioned fraction).

The pool composes with the engine through the ``spare_pool`` argument of
:class:`repro.sim.population.PopulationEngine`: when present, the engine
consults it before retiring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpareReport:
    """End-of-run spare accounting."""

    provisioned_per_region: int
    used_per_region: np.ndarray
    refused: int

    @property
    def exhausted_regions(self) -> int:
        return int((self.used_per_region >= self.provisioned_per_region).sum())

    @property
    def total_used(self) -> int:
        return int(self.used_per_region.sum())


class SparePool:
    """Per-region spare-line budget.

    Parameters
    ----------
    num_regions:
        Scrub regions (banks); spares are reserved per region because a
        remap must stay within its bank's row circuitry.
    spares_per_region:
        Lines reserved per region.  A 2 % provision on 1024-line regions
        is ~20 spares.
    """

    def __init__(self, num_regions: int, spares_per_region: int):
        if num_regions <= 0:
            raise ValueError("num_regions must be positive")
        if spares_per_region < 0:
            raise ValueError("spares_per_region must be >= 0")
        self.num_regions = num_regions
        self.spares_per_region = spares_per_region
        self.used = np.zeros(num_regions, dtype=np.int64)
        self.refused = 0

    def available(self, region: int) -> int:
        self._check_region(region)
        return max(0, self.spares_per_region - int(self.used[region]))

    def request(self, region: int, count: int) -> int:
        """Request ``count`` spares in ``region``; returns the grant.

        Grants are first-come partial: a request for 5 against 3 remaining
        gets 3, and the 2 refusals are recorded.  A broken line that stays
        in service re-requests at every scrub visit, so ``refused`` counts
        refusal *events*, not unique lines - a deliberately loud signal of
        end-of-life operation.
        """
        self._check_region(region)
        if count < 0:
            raise ValueError("count must be >= 0")
        grant = min(count, self.available(region))
        self.used[region] += grant
        self.refused += count - grant
        return grant

    def report(self) -> SpareReport:
        return SpareReport(
            provisioned_per_region=self.spares_per_region,
            used_per_region=self.used.copy(),
            refused=self.refused,
        )

    def metrics(self) -> dict[str, float]:
        """Live counters for time-series sampling (same keys as
        ``RunResult.final_state`` reports at end of run)."""
        report = self.report()
        return {
            "spares_used": float(report.total_used),
            "spare_refusals": float(report.refused),
            "spare_exhausted_regions": float(report.exhausted_regions),
        }

    def _check_region(self, region: int) -> None:
        if not 0 <= region < self.num_regions:
            raise ValueError(f"region {region} out of range")
