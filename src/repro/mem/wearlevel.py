"""Start-Gap wear leveling (Qureshi et al., MICRO 2009).

The paper positions its scrub work as complementary to the PCM endurance
ecosystem: wear leveling spreads writes so no line dies early, hard-error
tolerance absorbs the cells that die anyway, and scrub (this paper)
handles the soft errors in between.  Start-Gap is the canonical
low-overhead wear leveler, and scrub interacts with it directly - scrub
write-backs are writes the leveler must spread like any others - so the
reproduction includes it as a substrate.

Mechanics: ``num_lines`` logical lines live in ``num_lines + 1`` physical
slots.  A *gap* register points at the unused slot; every ``gap_interval``
writes the line physically preceding the gap is copied into it and the gap
moves down one.  When the gap has walked the whole array, a *start*
register increments - over time every logical line visits every physical
slot, spreading even a single-address write storm across the device.

Address translation is O(1) arithmetic on two registers::

    pa = (la + start) mod num_lines
    if pa >= gap: pa += 1
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GapMove:
    """One gap movement: the device write it costs, and where."""

    #: Physical slot that received the relocated line.
    destination: int
    #: Physical slot vacated (the new gap position).
    source: int


class StartGapLeveler:
    """Start-Gap address remapping over ``num_lines`` logical lines.

    Parameters
    ----------
    num_lines:
        Logical capacity; physical capacity is one line larger.
    gap_interval:
        Writes between gap movements (psi).  The write overhead of the
        leveler is ``1 / gap_interval`` extra device writes; 100 is the
        classic figure (1 % overhead).
    """

    def __init__(self, num_lines: int, gap_interval: int = 100):
        if num_lines <= 1:
            raise ValueError("num_lines must be at least 2")
        if gap_interval < 1:
            raise ValueError("gap_interval must be >= 1")
        self.num_lines = num_lines
        self.gap_interval = gap_interval
        #: Physical slots available (one spare holds the gap).
        self.num_physical = num_lines + 1
        self.start = 0
        #: Gap starts at the top spare slot.
        self.gap = num_lines
        self._writes_since_move = 0
        #: Total logical writes observed.
        self.total_writes = 0
        #: Total extra device writes spent moving the gap.
        self.move_writes = 0

    # -- translation ------------------------------------------------------------

    def translate(self, logical: int) -> int:
        """Physical slot currently holding ``logical``."""
        if not 0 <= logical < self.num_lines:
            raise ValueError(f"logical address {logical} out of range")
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def translate_many(self, logical: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate`."""
        logical = np.asarray(logical)
        if logical.size and (logical.min() < 0 or logical.max() >= self.num_lines):
            raise ValueError("logical address out of range")
        physical = (logical + self.start) % self.num_lines
        return np.where(physical >= self.gap, physical + 1, physical)

    def mapping_snapshot(self) -> np.ndarray:
        """Physical slot of every logical line (for invariant checks)."""
        return self.translate_many(np.arange(self.num_lines))

    # -- write path ------------------------------------------------------------------

    def record_write(self, logical: int) -> GapMove | None:
        """Account one logical write; returns the gap move if one fired.

        The caller applies the returned move to its device model (it costs
        one extra line write at ``destination``).
        """
        if not 0 <= logical < self.num_lines:
            raise ValueError(f"logical address {logical} out of range")
        self.total_writes += 1
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_interval:
            return None
        self._writes_since_move = 0
        return self._move_gap()

    def _move_gap(self) -> GapMove:
        """Move the gap down one slot (wrapping rotates ``start``)."""
        if self.gap == 0:
            # Gap wrapped: one full rotation completed.
            self.gap = self.num_physical - 1
            self.start = (self.start + 1) % self.num_lines
            # The wrap itself is pure bookkeeping; the move that fills the
            # (new) top gap happens on this same trigger.
        destination = self.gap
        source = self.gap - 1
        # The line in `source` moves into the gap; the gap becomes `source`.
        self.gap = source
        self.move_writes += 1
        return GapMove(destination=destination, source=source)

    @property
    def write_overhead(self) -> float:
        """Extra device writes per logical write (≈ 1/gap_interval)."""
        if self.total_writes == 0:
            return 0.0
        return self.move_writes / self.total_writes


def simulate_wear(
    num_lines: int,
    write_addresses: np.ndarray,
    gap_interval: int | None = 100,
) -> np.ndarray:
    """Per-physical-slot write counts for a logical write stream.

    ``gap_interval=None`` disables leveling (identity mapping over
    ``num_lines`` physical slots) - the baseline for effectiveness studies.
    """
    write_addresses = np.asarray(write_addresses)
    if gap_interval is None:
        wear = np.zeros(num_lines, dtype=np.int64)
        np.add.at(wear, write_addresses, 1)
        return wear
    leveler = StartGapLeveler(num_lines, gap_interval)
    wear = np.zeros(leveler.num_physical, dtype=np.int64)
    for logical in write_addresses:
        wear[leveler.translate(int(logical))] += 1
        move = leveler.record_write(int(logical))
        if move is not None:
            wear[move.destination] += 1
    return wear


def wear_ratio(wear: np.ndarray) -> float:
    """Max-to-mean wear: 1.0 is perfect leveling."""
    wear = np.asarray(wear, dtype=np.float64)
    mean = wear.mean()
    if mean == 0:
        return 1.0
    return float(wear.max() / mean)
