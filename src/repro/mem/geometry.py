"""DIMM geometry and line-address mapping.

A memory system is ``channels x banks-per-channel x rows-per-bank x
lines-per-row`` lines.  Two interleavings are provided:

* ``ROW_MAJOR`` - consecutive line addresses fill a row, then the next row
  of the same bank; scrub regions (banks) are contiguous address ranges.
* ``LINE_INTERLEAVED`` - consecutive line addresses rotate across channels
  and banks (the usual performance-oriented mapping); a scrub region's
  lines are strided through the address space.

Both are exact bijections between the flat line index and the
``(channel, bank, row, column)`` coordinate, tested as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Interleaving(Enum):
    """How consecutive line addresses map onto the hardware."""

    ROW_MAJOR = "row_major"
    LINE_INTERLEAVED = "line_interleaved"


@dataclass(frozen=True)
class Coordinates:
    """Physical location of one line."""

    channel: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class MemoryGeometry:
    """Shape of the simulated memory."""

    channels: int = 2
    banks_per_channel: int = 8
    rows_per_bank: int = 1024
    lines_per_row: int = 64
    interleaving: Interleaving = Interleaving.ROW_MAJOR

    def __post_init__(self) -> None:
        for name in ("channels", "banks_per_channel", "rows_per_bank", "lines_per_row"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def num_banks(self) -> int:
        """Total banks (= scrub regions)."""
        return self.channels * self.banks_per_channel

    @property
    def lines_per_bank(self) -> int:
        return self.rows_per_bank * self.lines_per_row

    @property
    def num_lines(self) -> int:
        return self.num_banks * self.lines_per_bank

    # -- mapping ------------------------------------------------------------

    def coordinates(self, line: int) -> Coordinates:
        """Physical coordinates of flat line address ``line``."""
        if not 0 <= line < self.num_lines:
            raise ValueError(f"line {line} out of range 0..{self.num_lines - 1}")
        if self.interleaving is Interleaving.ROW_MAJOR:
            bank_flat, within = divmod(line, self.lines_per_bank)
            row, column = divmod(within, self.lines_per_row)
        else:
            # Consecutive lines rotate over (channel, bank) first.
            stripe, bank_flat = divmod(line, self.num_banks)
            row, column = divmod(stripe, self.lines_per_row)
        channel, bank = divmod(bank_flat, self.banks_per_channel)
        return Coordinates(channel=channel, bank=bank, row=row, column=column)

    def line_index(self, coords: Coordinates) -> int:
        """Inverse of :meth:`coordinates`."""
        if not 0 <= coords.channel < self.channels:
            raise ValueError("channel out of range")
        if not 0 <= coords.bank < self.banks_per_channel:
            raise ValueError("bank out of range")
        if not 0 <= coords.row < self.rows_per_bank:
            raise ValueError("row out of range")
        if not 0 <= coords.column < self.lines_per_row:
            raise ValueError("column out of range")
        bank_flat = coords.channel * self.banks_per_channel + coords.bank
        if self.interleaving is Interleaving.ROW_MAJOR:
            within = coords.row * self.lines_per_row + coords.column
            return bank_flat * self.lines_per_bank + within
        stripe = coords.row * self.lines_per_row + coords.column
        return stripe * self.num_banks + bank_flat

    def bank_of(self, line: int) -> int:
        """Flat bank id (0..num_banks-1) of a line - the scrub region id."""
        coords = self.coordinates(line)
        return coords.channel * self.banks_per_channel + coords.bank

    def bank_major_index(self, line: int) -> int:
        """Physical position of ``line`` in bank-major order.

        The scrub engine's population is laid out bank by bank (region =
        bank = contiguous indices); this is the bijection from a flat
        *logical* address to that layout.  Identity under ``ROW_MAJOR``
        interleaving; a stride permutation under ``LINE_INTERLEAVED``.
        """
        coords = self.coordinates(line)
        bank_flat = coords.channel * self.banks_per_channel + coords.bank
        within = coords.row * self.lines_per_row + coords.column
        return bank_flat * self.lines_per_bank + within

    def bank_major_map(self) -> "np.ndarray":
        """Vector of :meth:`bank_major_index` over all lines."""
        import numpy as np

        return np.array(
            [self.bank_major_index(line) for line in range(self.num_lines)]
        )
