"""Bank-occupancy queueing model: what scrub costs the demand stream.

PCM writes occupy a bank for ~1 us - an eternity next to a 125 ns read - so
a scrub mechanism's write-back volume translates directly into queueing
delay for demand reads sharing the bank.  This model quantifies that
(experiment E13) without a full cycle-accurate controller:

* each bank is a single server with per-operation service times from
  :class:`repro.pcm.energy.OperationCosts`;
* demand requests (from an :class:`repro.workloads.trace.AccessTrace`)
  are served FCFS per bank;
* scrub traffic is generated from a mechanism's measured per-second
  read/decode/write volumes, spread uniformly over the simulated window,
  and served at *lower priority*: a pending scrub operation yields to
  already-queued demand requests, the standard controller courtesy.

The output is per-class mean/percentile latency and bank utilization.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..pcm.energy import OperationCosts
from ..workloads.trace import AccessTrace, Op
from .geometry import MemoryGeometry


@dataclass(frozen=True)
class ScrubTraffic:
    """Scrub operation volumes per second, per bank.

    Build one with :meth:`from_stats` using a finished simulation's ledger,
    or directly for synthetic studies.
    """

    reads_per_second: float
    writes_per_second: float

    def __post_init__(self) -> None:
        if self.reads_per_second < 0 or self.writes_per_second < 0:
            raise ValueError("rates must be >= 0")

    @classmethod
    def from_stats(
        cls, scrub_reads: int, scrub_writes: int, horizon: float, num_banks: int
    ) -> "ScrubTraffic":
        """Average a run's scrub volumes into per-bank per-second rates."""
        if horizon <= 0 or num_banks <= 0:
            raise ValueError("horizon and num_banks must be positive")
        return cls(
            reads_per_second=scrub_reads / horizon / num_banks,
            writes_per_second=scrub_writes / horizon / num_banks,
        )


@dataclass(frozen=True)
class ControllerReport:
    """Latency and occupancy results from one queueing run."""

    demand_read_latencies: np.ndarray
    demand_write_latencies: np.ndarray
    bank_utilization: float
    scrub_share: float

    @property
    def mean_read_latency(self) -> float:
        if self.demand_read_latencies.size == 0:
            return 0.0
        return float(self.demand_read_latencies.mean())

    @property
    def p99_read_latency(self) -> float:
        if self.demand_read_latencies.size == 0:
            return 0.0
        return float(np.percentile(self.demand_read_latencies, 99))

    @property
    def mean_write_latency(self) -> float:
        if self.demand_write_latencies.size == 0:
            return 0.0
        return float(self.demand_write_latencies.mean())


@dataclass(frozen=True, order=True)
class _Job:
    time: float
    priority: int  # 0 = demand, 1 = scrub (lower wins ties)
    sequence: int
    service: float
    is_read: bool
    is_scrub: bool


class BankQueueModel:
    """Single-server FCFS queues, one per bank, with scrub at low priority."""

    def __init__(self, geometry: MemoryGeometry, costs: OperationCosts):
        self.geometry = geometry
        self.costs = costs

    def simulate(
        self,
        trace: AccessTrace,
        scrub: ScrubTraffic,
        duration: float,
        rng: np.random.Generator,
    ) -> ControllerReport:
        """Serve ``trace`` plus Poisson scrub traffic over ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        num_banks = self.geometry.num_banks
        jobs_per_bank: list[list[_Job]] = [[] for _ in range(num_banks)]
        sequence = 0

        for request in trace:
            if request.time > duration:
                break
            bank = self.geometry.bank_of(request.line % self.geometry.num_lines)
            is_read = request.op is Op.READ
            jobs_per_bank[bank].append(
                _Job(
                    time=request.time,
                    priority=0,
                    sequence=sequence,
                    service=self.costs.read_latency
                    if is_read
                    else self.costs.write_latency,
                    is_read=is_read,
                    is_scrub=False,
                )
            )
            sequence += 1

        for bank in range(num_banks):
            for rate, service, is_read in (
                (scrub.reads_per_second, self.costs.read_latency, True),
                (scrub.writes_per_second, self.costs.write_latency, False),
            ):
                count = rng.poisson(rate * duration)
                for time in np.sort(rng.random(count) * duration):
                    jobs_per_bank[bank].append(
                        _Job(
                            time=float(time),
                            priority=1,
                            sequence=sequence,
                            service=service,
                            is_read=is_read,
                            is_scrub=True,
                        )
                    )
                    sequence += 1

        read_latencies: list[float] = []
        write_latencies: list[float] = []
        busy_total = 0.0
        scrub_busy = 0.0

        for bank_jobs in jobs_per_bank:
            # Non-preemptive priority queue: at each service completion the
            # earliest-deadline pending demand job wins over pending scrub.
            bank_jobs.sort()
            pending: list[tuple[int, float, int, _Job]] = []
            free_at = 0.0
            i = 0
            n = len(bank_jobs)
            while i < n or pending:
                while i < n and (not pending or bank_jobs[i].time <= free_at):
                    job = bank_jobs[i]
                    heapq.heappush(
                        pending, (job.priority, job.time, job.sequence, job)
                    )
                    i += 1
                if not pending:
                    continue
                __, __, __, job = heapq.heappop(pending)
                start = max(free_at, job.time)
                finish = start + job.service
                free_at = finish
                busy_total += job.service
                if job.is_scrub:
                    scrub_busy += job.service
                else:
                    latency = finish - job.time
                    if job.is_read:
                        read_latencies.append(latency)
                    else:
                        write_latencies.append(latency)

        capacity = num_banks * duration
        return ControllerReport(
            demand_read_latencies=np.asarray(read_latencies),
            demand_write_latencies=np.asarray(write_latencies),
            bank_utilization=busy_total / capacity,
            scrub_share=scrub_busy / capacity,
        )
