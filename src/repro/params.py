"""Shared physical-parameter dataclasses and their literature defaults.

Every experiment in the paper is a function of a small set of device and
system constants.  This module centralizes them so that benchmarks, tests,
and examples construct configurations from one vocabulary, and so that every
constant the reproduction assumes is written down (and overridable) in one
place.

The default numbers follow the device literature the paper builds on
(power-law resistance drift with level-dependent Gaussian drift exponents,
SET-dominated write energy, ~1e8 write endurance).  Absolute values are
configurable; the reproduction's claims are about *shape*, per DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from . import units

# ---------------------------------------------------------------------------
# Level allocation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelBand:
    """One MLC resistance level, in log10(ohm) space.

    A cell programmed to this level lands (by program-and-verify) inside
    ``[program_low, program_high]``.  The read circuitry assigns the level to
    any resistance inside ``[read_low, read_high]``; drifting past
    ``read_high`` misreads the cell as the next-higher level.
    """

    name: str
    #: Symbol value stored by this level (0 = lowest resistance).
    symbol: int
    #: Log10 resistance band the write verify targets.
    program_low: float
    program_high: float
    #: Log10 resistance band the sense amp maps to this level.
    read_low: float
    read_high: float

    def __post_init__(self) -> None:
        if not (self.read_low <= self.program_low <= self.program_high <= self.read_high):
            raise ValueError(
                f"level {self.name}: program band [{self.program_low}, {self.program_high}] "
                f"must sit inside read band [{self.read_low}, {self.read_high}]"
            )

    @property
    def program_center(self) -> float:
        """Midpoint of the programming target band (log10 ohms)."""
        return 0.5 * (self.program_low + self.program_high)

    @property
    def guard_band_up(self) -> float:
        """Log-resistance margin between programmed band and upper read boundary."""
        return self.read_high - self.program_high


@dataclass(frozen=True)
class DriftParams:
    """Power-law drift parameters for one level: R(t) = R0 * (t/t0)^nu.

    ``nu`` is drawn per cell from a Gaussian N(nu_mean, nu_sigma), truncated
    at zero (resistance drift is monotonically upward).  Crystalline levels
    drift negligibly; amorphous levels drift fastest.
    """

    nu_mean: float
    nu_sigma: float

    def __post_init__(self) -> None:
        if self.nu_mean < 0:
            raise ValueError(f"nu_mean must be >= 0, got {self.nu_mean}")
        if self.nu_sigma < 0:
            raise ValueError(f"nu_sigma must be >= 0, got {self.nu_sigma}")


# Default 2-bit MLC allocation, log10(ohm).  Levels are ~1 decade apart with
# symmetric guard bands, the standard textbook allocation for 4-level PCM.
_DEFAULT_LEVELS = (
    LevelBand("L0", 0, program_low=3.0, program_high=3.2, read_low=-1.0, read_high=3.6),
    LevelBand("L1", 1, program_low=4.0, program_high=4.2, read_low=3.6, read_high=4.6),
    LevelBand("L2", 2, program_low=5.0, program_high=5.2, read_low=4.6, read_high=5.6),
    LevelBand("L3", 3, program_low=6.0, program_high=6.2, read_low=5.6, read_high=12.0),
)

# Drift exponents per level (Ielmini-style): fully crystalline L0 barely
# drifts, fully amorphous L3 drifts with nu ~ 0.1.  Sigma = 0.4 * mean.
_DEFAULT_DRIFT = (
    DriftParams(nu_mean=0.001, nu_sigma=0.0004),
    DriftParams(nu_mean=0.02, nu_sigma=0.008),
    DriftParams(nu_mean=0.06, nu_sigma=0.024),
    DriftParams(nu_mean=0.10, nu_sigma=0.040),
)


@dataclass(frozen=True)
class CellSpec:
    """Full MLC cell specification: levels, drift, programming precision."""

    levels: tuple[LevelBand, ...] = _DEFAULT_LEVELS
    drift: tuple[DriftParams, ...] = _DEFAULT_DRIFT
    #: Std-dev of programmed log10 resistance around the verify band center.
    #: Program-and-verify iterates until the cell lands in-band, so the
    #: effective distribution is a truncated Gaussian over the program band.
    program_sigma: float = 0.05
    #: Normalization time t0 for the power law (seconds).  Drift is measured
    #: relative to this instant after programming.
    t0: float = 1.0
    #: Activation energy (eV) for Arrhenius temperature acceleration of drift.
    activation_energy_ev: float = 0.2
    #: Reference temperature (K) at which the drift parameters were measured.
    reference_temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError("an MLC cell needs at least 2 levels")
        if len(self.levels) != len(self.drift):
            raise ValueError(
                f"{len(self.levels)} levels but {len(self.drift)} drift parameter sets"
            )
        symbols = [band.symbol for band in self.levels]
        if symbols != list(range(len(self.levels))):
            raise ValueError(f"level symbols must be 0..n-1 in order, got {symbols}")
        for lower, upper in zip(self.levels, self.levels[1:]):
            if lower.read_high > upper.read_low:
                raise ValueError(
                    f"read bands of {lower.name} and {upper.name} overlap"
                )
        if self.program_sigma < 0:
            raise ValueError("program_sigma must be >= 0")
        if self.t0 <= 0:
            raise ValueError("t0 must be positive")

    @property
    def bits_per_cell(self) -> int:
        """Bits stored per cell (2 for the default 4-level allocation)."""
        n = len(self.levels)
        bits = n.bit_length() - 1
        if 1 << bits != n:
            raise ValueError(f"level count {n} is not a power of two")
        return bits

    @property
    def num_levels(self) -> int:
        return len(self.levels)


@dataclass(frozen=True)
class EnduranceSpec:
    """Write-endurance model: per-cell lifetime ~ lognormal.

    A cell whose cumulative write count exceeds its drawn lifetime becomes a
    stuck-at (hard) fault.  The mean is the canonical 1e8 PCM endurance.
    """

    mean_writes: float = 1e8
    #: Sigma of the underlying normal in log10 space.
    sigma_log10: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_writes <= 0:
            raise ValueError("mean_writes must be positive")
        if self.sigma_log10 < 0:
            raise ValueError("sigma_log10 must be >= 0")


@dataclass(frozen=True)
class EnergySpec:
    """Per-operation energy and latency constants.

    Writes are SET-dominated and iterative; the per-bit write energy already
    folds in the average number of program-and-verify iterations.  Decode
    energy scales with ECC strength; the schemes module applies the scaling.
    """

    #: Array read energy per bit (J).
    read_energy_per_bit: float = 2.0 * units.PICOJOULE
    #: Full line write (program-and-verify) energy per bit (J).
    write_energy_per_bit: float = 25.0 * units.PICOJOULE
    #: Energy to check a lightweight checksum for a line (J) - near-free
    #: XOR-tree logic.
    detect_energy_per_line: float = 1.0 * units.PICOJOULE
    #: Baseline ECC decode energy per line for a t=1 decoder (J); decode
    #: energy for stronger codes scales superlinearly with t.
    decode_energy_per_line_t1: float = 10.0 * units.PICOJOULE
    #: Array read latency for one line (s).
    read_latency: float = 125 * units.NANOSECOND
    #: Full line write latency (s); MLC program-and-verify is ~1 us.
    write_latency: float = 1.0 * units.MICROSECOND
    #: ECC decode latency for a t=1 decoder (s).
    decode_latency_t1: float = 10 * units.NANOSECOND

    def __post_init__(self) -> None:
        for name in (
            "read_energy_per_bit",
            "write_energy_per_bit",
            "detect_energy_per_line",
            "decode_energy_per_line_t1",
            "read_latency",
            "write_latency",
            "decode_latency_t1",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class LineSpec:
    """Geometry of one protected memory line."""

    #: User data bytes per line (64 B cache line is the paper's unit).
    data_bytes: int = 64
    cell: CellSpec = field(default_factory=CellSpec)

    def __post_init__(self) -> None:
        if self.data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        if (self.data_bytes * 8) % self.cell.bits_per_cell:
            raise ValueError("line bits must be a multiple of bits_per_cell")

    @property
    def data_bits(self) -> int:
        return self.data_bytes * 8

    @property
    def data_cells(self) -> int:
        """Number of MLC cells holding user data in one line."""
        return self.data_bits // self.cell.bits_per_cell


def replace(spec, **changes):
    """``dataclasses.replace`` re-exported for fluent spec tweaking.

    >>> fast_drift = replace(DriftParams(0.02, 0.008), nu_mean=0.05)
    >>> fast_drift.nu_mean
    0.05
    """
    return dataclasses.replace(spec, **changes)


DEFAULT_CELL_SPEC = CellSpec()
DEFAULT_LINE_SPEC = LineSpec()
DEFAULT_ENERGY_SPEC = EnergySpec()
DEFAULT_ENDURANCE_SPEC = EnduranceSpec()
