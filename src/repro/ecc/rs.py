"""Reed-Solomon codes over GF(2^m): symbol-oriented ECC for MLC lines.

BCH corrects *bit* errors; Reed-Solomon corrects *symbol* errors - and an
MLC line has a natural symbol structure, because drift corrupts whole
cells.  With 2-bit cells and 4-bit RS symbols, two drifted cells can land
in one symbol and cost a single unit of correction budget, while BCH pays
per bit regardless of clustering.  The trade: RS check symbols are wider
(2m bits per corrected symbol vs ~10 bits per corrected bit for the
shortened BCH), so which code is cheaper depends on how clustered the
error patterns are - exactly the kind of design question benchmark A9
settles with the real codecs.

Implementation: classical systematic RS.

* generator ``g(x) = prod_{i=1..2t} (x - alpha^i)`` with coefficients in
  GF(2^m),
* encoding by polynomial division (symbols, not bits),
* decoding by syndromes -> Berlekamp-Massey -> Chien search -> Forney's
  formula for error magnitudes (unlike binary BCH, RS must compute *what*
  to add, not just where).

Symbols are numpy int arrays in ``[0, 2^m)``; shortening works as for
BCH (implicit zero prefix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gf import GF2m


@dataclass(frozen=True)
class RsDecodeResult:
    """Outcome of decoding one received word."""

    symbols: np.ndarray
    errors_corrected: int
    ok: bool


class RsCode:
    """A shortened Reed-Solomon code with ``data_symbols`` message symbols.

    Parameters
    ----------
    data_symbols:
        Message length in symbols.
    t:
        Symbol-correction capability; the code stores ``2t`` check symbols.
    m:
        Symbol width in bits; natural length is ``2^m - 1`` symbols.
    """

    def __init__(self, data_symbols: int, t: int, m: int = 8):
        if data_symbols <= 0:
            raise ValueError("data_symbols must be positive")
        if t <= 0:
            raise ValueError("t must be positive")
        self.field = GF2m(m)
        self.n = self.field.order
        self.t = t
        self.check_symbols = 2 * t
        self.k = self.n - self.check_symbols
        if data_symbols > self.k:
            raise ValueError(
                f"data_symbols={data_symbols} exceeds k={self.k} for m={m}, t={t}"
            )
        self.data_symbols = data_symbols
        self.codeword_symbols = data_symbols + self.check_symbols

        # Generator polynomial, ascending coefficients (index = degree).
        generator = [1]
        for i in range(1, 2 * t + 1):
            generator = self.field.poly_mul(generator, [self.field.alpha_pow(i), 1])
        self._generator = generator

    @property
    def bits_per_symbol(self) -> int:
        return self.field.m

    @property
    def check_bits(self) -> int:
        """Storage overhead in bits."""
        return self.check_symbols * self.field.m

    # -- encoding -------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic encode: data symbols followed by check symbols."""
        data = self._check_symbols_array(data, self.data_symbols, "data")
        field = self.field
        # Remainder of data(x) * x^{2t} divided by g(x); data[0] is the
        # highest-degree coefficient (matching the BCH layout convention).
        remainder = [0] * self.check_symbols
        for symbol in data:
            feedback = int(symbol) ^ remainder[0]
            remainder = remainder[1:] + [0]
            if feedback:
                for i in range(self.check_symbols):
                    coeff = self._generator[self.check_symbols - 1 - i]
                    if coeff:
                        remainder[i] ^= field.mul(feedback, coeff)
        return np.concatenate(
            [data, np.array(remainder, dtype=np.int64)]
        )

    # -- decoding ----------------------------------------------------------------

    def decode(self, received: np.ndarray) -> RsDecodeResult:
        """Correct up to ``t`` symbol errors."""
        received = self._check_symbols_array(
            received, self.codeword_symbols, "received"
        )
        field = self.field
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return RsDecodeResult(symbols=received.copy(), errors_corrected=0, ok=True)

        locator = self._berlekamp_massey(syndromes)
        degree = len(locator) - 1
        if degree > self.t:
            return RsDecodeResult(symbols=received.copy(), errors_corrected=0, ok=False)

        positions = self._chien_search(locator)
        if len(positions) != degree:
            return RsDecodeResult(symbols=received.copy(), errors_corrected=0, ok=False)
        if any(not 0 <= p < self.codeword_symbols for p in positions):
            return RsDecodeResult(symbols=received.copy(), errors_corrected=0, ok=False)

        # Forney: with syndromes S_j = r(alpha^j) starting at j = 1 (first
        # consecutive root c = 1) and S(x) holding S_1 at degree 0, the
        # error value at a located position is
        #   e = Omega(X^-1) / Lambda'(X^-1),   Omega = (S * Lambda) mod x^{2t}
        # (the X^{1-c} factor of the general formula is 1 here).
        syndrome_poly = list(syndromes)
        omega = self.field.poly_mul(syndrome_poly, locator)[: 2 * self.t]
        corrected = received.copy()
        for pos in positions:
            natural = self.n - 1 - pos
            x_inv = field.alpha_pow(-natural % field.order)
            denominator = self._locator_derivative_at(locator, x_inv)
            if denominator == 0:
                return RsDecodeResult(
                    symbols=received.copy(), errors_corrected=0, ok=False
                )
            numerator = field.poly_eval(omega, x_inv)
            magnitude = field.div(numerator, denominator)
            corrected[pos] ^= magnitude

        if any(self._syndromes(corrected)):
            return RsDecodeResult(symbols=received.copy(), errors_corrected=0, ok=False)
        return RsDecodeResult(
            symbols=corrected, errors_corrected=len(positions), ok=True
        )

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        codeword = self._check_symbols_array(
            codeword, self.codeword_symbols, "codeword"
        )
        return codeword[: self.data_symbols].copy()

    # -- internals --------------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> list[int]:
        field = self.field
        nonzero = np.flatnonzero(received)
        out = []
        for i in range(1, 2 * self.t + 1):
            acc = 0
            for j in nonzero:
                exponent = (self.n - 1 - int(j)) * i
                acc ^= field.mul(int(received[j]), field.alpha_pow(exponent))
            out.append(acc)
        return out

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        field = self.field
        locator = [1]
        prev = [1]
        length = 0
        shift = 1
        prev_discrepancy = 1
        for step, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, length + 1):
                if i < len(locator) and locator[i]:
                    discrepancy ^= field.mul(locator[i], syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            adjustment = [0] * shift + [field.mul(scale, c) for c in prev]
            updated = list(locator) + [0] * max(0, len(adjustment) - len(locator))
            for i, coeff in enumerate(adjustment):
                updated[i] ^= coeff
            if 2 * length <= step:
                prev = locator
                prev_discrepancy = discrepancy
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            locator = updated
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: list[int]) -> list[int]:
        field = self.field
        positions = []
        for p in range(self.n):
            x = field.alpha_pow(-p % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(self.n - 1 - p)
        return positions

    def _locator_derivative_at(self, locator: list[int], x: int) -> int:
        """Formal derivative of Lambda evaluated at ``x`` (char-2 field)."""
        field = self.field
        acc = 0
        # d/dx sum c_i x^i = sum over odd i of c_i x^{i-1} in char 2.
        for i in range(1, len(locator), 2):
            if locator[i]:
                acc ^= field.mul(locator[i], field.pow(x, i - 1))
        return acc

    def _check_symbols_array(
        self, symbols: np.ndarray, expected: int, name: str
    ) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.shape != (expected,):
            raise ValueError(
                f"{name} must have shape ({expected},), got {symbols.shape}"
            )
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.field.size):
            raise ValueError(f"{name} symbols must be in [0, {self.field.size})")
        return symbols

    # -- bit-level adapter ---------------------------------------------------------

    def encode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Encode a bit array (MSB-first per symbol)."""
        return self._symbols_to_bits(self.encode(self._bits_to_symbols(bits)))

    def decode_bits(self, bits: np.ndarray) -> tuple[np.ndarray, int, bool]:
        """Decode a bit array; returns (bits, symbol_errors, ok)."""
        result = self.decode(self._bits_to_symbols(bits, self.codeword_symbols))
        return self._symbols_to_bits(result.symbols), result.errors_corrected, result.ok

    def _bits_to_symbols(self, bits: np.ndarray, expected: int | None = None) -> np.ndarray:
        expected = self.data_symbols if expected is None else expected
        bits = np.asarray(bits, dtype=np.int64)
        width = self.field.m
        if bits.shape != (expected * width,):
            raise ValueError(
                f"bit array must have {expected * width} bits, got {bits.shape}"
            )
        grouped = bits.reshape(expected, width)
        weights = 1 << np.arange(width - 1, -1, -1)
        return (grouped * weights).sum(axis=1)

    def _symbols_to_bits(self, symbols: np.ndarray) -> np.ndarray:
        width = self.field.m
        shifts = np.arange(width - 1, -1, -1)
        bits = (symbols[:, None] >> shifts[None, :]) & 1
        return bits.reshape(-1).astype(np.int8)


@dataclass(frozen=True)
class RsBitDecodeResult:
    """Bit-level decode outcome, API-compatible with the BCH result."""

    bits: np.ndarray
    errors_corrected: int
    ok: bool


class RsBitCodec:
    """Bit-array facade over :class:`RsCode`, matching the BCH codec API.

    Lets the scheme registry and the bit-exact engine treat RS like any
    other line codec: ``encode(bits) -> bits``, ``decode(bits) -> result``
    with ``.ok``/``.errors_corrected``/``.bits``, ``extract_data``.
    ``errors_corrected`` counts *symbols*, the unit RS spends budget in.
    """

    def __init__(self, data_bits: int, t: int, m: int = 8):
        if data_bits % m:
            raise ValueError(f"data_bits must be a multiple of the symbol width {m}")
        self.code = RsCode(data_symbols=data_bits // m, t=t, m=m)
        self.data_bits = data_bits
        self.check_bits = self.code.check_bits
        self.codeword_bits = self.code.codeword_symbols * m

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self.code.encode_bits(np.asarray(data, dtype=np.int8))

    def decode(self, received: np.ndarray) -> RsBitDecodeResult:
        bits, errors, ok = self.code.decode_bits(
            np.asarray(received, dtype=np.int8)
        )
        return RsBitDecodeResult(bits=bits, errors_corrected=errors, ok=ok)

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        codeword = np.asarray(codeword, dtype=np.int8)
        if codeword.shape != (self.codeword_bits,):
            raise ValueError(
                f"codeword must have {self.codeword_bits} bits, got {codeword.shape}"
            )
        return codeword[: self.data_bits].copy()
