"""SECDED Hamming codes - the DRAM baseline protection.

DRAM DIMMs protect each 64-bit word with a (72,64) single-error-correct /
double-error-detect code: an extended Hamming code whose extra overall
parity bit disambiguates single errors (odd overall parity) from double
errors (even overall parity, nonzero syndrome).  The basic scrub the paper
compares against uses exactly this code.

The implementation is a generic extended Hamming code for any data length
``k`` with ``r`` check bits (``2^r >= k + r + 1``) plus the overall parity
bit.  Check bits are positioned at power-of-two indices of the classic
Hamming layout internally; the public layout is systematic (data first,
check bits after), which is what the line array stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SecdedDecodeResult:
    """Outcome of decoding one SECDED word."""

    bits: np.ndarray
    errors_corrected: int
    #: False when a double error was detected (word uncorrectable).
    ok: bool
    #: True when the decoder saw a (detected) double error.
    double_error: bool


class SecdedCode:
    """Extended Hamming SECDED over ``data_bits`` message bits.

    >>> code = SecdedCode(64)
    >>> code.check_bits
    8
    """

    def __init__(self, data_bits: int):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        #: Hamming check bits + 1 overall parity bit.
        self.check_bits = r + 1
        self._r = r
        self.codeword_bits = data_bits + self.check_bits

        # Internal Hamming layout: positions 1..n, check bits at powers of 2.
        n = data_bits + r
        self._n = n
        data_positions = [p for p in range(1, n + 1) if p & (p - 1)]
        check_positions = [1 << i for i in range(r)]
        self._data_positions = data_positions
        self._check_positions = check_positions

    # -- encoding -------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic codeword: data bits then r Hamming bits then parity."""
        data = self._check_array(data, self.data_bits, "data")
        layout = np.zeros(self._n + 1, dtype=np.int8)  # 1-indexed
        layout[self._data_positions] = data
        checks = np.zeros(self._r, dtype=np.int8)
        for i, cpos in enumerate(self._check_positions):
            covered = [p for p in range(1, self._n + 1) if p & cpos and p != cpos]
            checks[i] = layout[covered].sum() % 2
            layout[cpos] = checks[i]
        overall = int(layout[1:].sum() % 2)
        return np.concatenate([data, checks, np.array([overall], dtype=np.int8)])

    # -- decoding ----------------------------------------------------------------

    def decode(self, received: np.ndarray) -> SecdedDecodeResult:
        """Correct single errors, detect (and refuse) double errors."""
        received = self._check_array(received, self.codeword_bits, "received")
        data = received[: self.data_bits]
        checks = received[self.data_bits : self.data_bits + self._r]
        overall = int(received[-1])

        layout = np.zeros(self._n + 1, dtype=np.int8)
        layout[self._data_positions] = data
        layout[self._check_positions] = checks

        syndrome = 0
        for i, cpos in enumerate(self._check_positions):
            covered = [p for p in range(1, self._n + 1) if p & cpos]
            if layout[covered].sum() % 2:
                syndrome |= cpos
        parity_ok = (int(layout[1:].sum()) + overall) % 2 == 0

        if syndrome == 0 and parity_ok:
            return SecdedDecodeResult(
                bits=received.copy(), errors_corrected=0, ok=True, double_error=False
            )
        if syndrome == 0 and not parity_ok:
            # The overall parity bit itself flipped.
            corrected = received.copy()
            corrected[-1] ^= 1
            return SecdedDecodeResult(
                bits=corrected, errors_corrected=1, ok=True, double_error=False
            )
        if not parity_ok:
            # Single error at Hamming position `syndrome`.
            corrected = received.copy()
            if syndrome > self._n:
                # Syndrome points outside the word: treat as detected failure.
                return SecdedDecodeResult(
                    bits=received.copy(), errors_corrected=0, ok=False,
                    double_error=True,
                )
            if syndrome in self._check_positions:
                idx = self.data_bits + self._check_positions.index(syndrome)
            else:
                idx = self._data_positions.index(syndrome)
            corrected[idx] ^= 1
            return SecdedDecodeResult(
                bits=corrected, errors_corrected=1, ok=True, double_error=False
            )
        # Nonzero syndrome with even parity: double error detected.
        return SecdedDecodeResult(
            bits=received.copy(), errors_corrected=0, ok=False, double_error=True
        )

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        """Message bits of a (corrected) codeword."""
        codeword = self._check_array(codeword, self.codeword_bits, "codeword")
        return codeword[: self.data_bits].copy()

    @staticmethod
    def _check_array(bits: np.ndarray, expected: int, name: str) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int8)
        if bits.shape != (expected,):
            raise ValueError(f"{name} must have shape ({expected},), got {bits.shape}")
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError(f"{name} must contain only 0/1")
        return bits


class InterleavedSecded:
    """A line protected by per-word SECDED, DRAM-DIMM style.

    A 64-byte line is eight 64-bit words, each with its own (72,64) code.
    The line survives an error pattern iff no word holds two or more bit
    errors - which is why drift (many errors per line) breaks the DRAM
    recipe and motivates the paper.
    """

    def __init__(self, data_bits: int, word_bits: int = 64):
        if data_bits % word_bits:
            raise ValueError("data_bits must be a multiple of word_bits")
        self.word_bits = word_bits
        self.num_words = data_bits // word_bits
        self.data_bits = data_bits
        self.code = SecdedCode(word_bits)
        self.check_bits = self.code.check_bits * self.num_words
        self.codeword_bits = data_bits + self.check_bits

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Per-word encode; layout is all data words then all check groups."""
        data = SecdedCode._check_array(data, self.data_bits, "data")
        words = data.reshape(self.num_words, self.word_bits)
        checks = [
            self.code.encode(word)[self.word_bits :] for word in words
        ]
        return np.concatenate([data, *checks])

    def decode(self, received: np.ndarray) -> SecdedDecodeResult:
        """Decode every word; any double error fails the whole line."""
        received = SecdedCode._check_array(
            received, self.codeword_bits, "received"
        )
        data = received[: self.data_bits].reshape(self.num_words, self.word_bits)
        checks = received[self.data_bits :].reshape(
            self.num_words, self.code.check_bits
        )
        corrected_words = []
        corrected_checks = []
        total = 0
        for word, check in zip(data, checks):
            result = self.code.decode(np.concatenate([word, check]))
            if not result.ok:
                return SecdedDecodeResult(
                    bits=received.copy(), errors_corrected=0, ok=False,
                    double_error=True,
                )
            total += result.errors_corrected
            corrected_words.append(result.bits[: self.word_bits])
            corrected_checks.append(result.bits[self.word_bits :])
        bits = np.concatenate([*corrected_words, *corrected_checks])
        return SecdedDecodeResult(
            bits=bits, errors_corrected=total, ok=True, double_error=False
        )

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        codeword = SecdedCode._check_array(codeword, self.codeword_bits, "codeword")
        return codeword[: self.data_bits].copy()
