"""GF(2^m) arithmetic via log/antilog tables.

Everything BCH needs: field element multiply/divide/power, minimal
polynomials of field elements (over GF(2)), and carry-less GF(2)[x]
polynomial arithmetic on int bitmasks (bit i of the mask is the coefficient
of x^i).
"""

from __future__ import annotations

from functools import lru_cache

#: Standard primitive polynomials (bitmask includes the x^m term).
PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
}


class GF2m:
    """The field GF(2^m), constructed from a primitive polynomial.

    Elements are ints in ``[0, 2^m)``.  ``alpha`` (the residue of x) is a
    generator of the multiplicative group; exp/log tables make multiply and
    inverse O(1).
    """

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYS:
            raise ValueError(
                f"m={m} unsupported; choose one of {sorted(PRIMITIVE_POLYS)}"
            )
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.primitive_poly = PRIMITIVE_POLYS[m]

        self.exp = [0] * (2 * self.order)
        self.log = [0] * self.size
        value = 1
        for power in range(self.order):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & self.size:
                value ^= self.primitive_poly
        if value != 1:
            raise AssertionError(f"polynomial for m={m} is not primitive")
        # Duplicate the table so exp[a + b] never needs a mod.
        for power in range(self.order, 2 * self.order):
            self.exp[power] = self.exp[power - self.order]

    # -- element arithmetic ------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Field product."""
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        """Field quotient a / b."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self.exp[(self.log[a] - self.log[b]) % self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[(self.order - self.log[a]) % self.order]

    def pow(self, a: int, exponent: int) -> int:
        """a ** exponent (exponent may be negative)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 ** negative")
            return 0
        return self.exp[(self.log[a] * exponent) % self.order]

    def alpha_pow(self, exponent: int) -> int:
        """alpha ** exponent, the workhorse of syndrome evaluation."""
        return self.exp[exponent % self.order]

    # -- polynomials with coefficients in this field -------------------------
    # Represented as lists, index = degree.

    def poly_eval(self, coeffs: list[int], x: int) -> int:
        """Evaluate sum(coeffs[i] * x^i) by Horner's rule."""
        acc = 0
        for coeff in reversed(coeffs):
            acc = self.mul(acc, x) ^ coeff
        return acc

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        """Product of two coefficient lists."""
        if not a or not b:
            return []
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= self.mul(ca, cb)
        return out

    # -- minimal polynomials -----------------------------------------------------

    def cyclotomic_coset(self, i: int) -> list[int]:
        """The 2-cyclotomic coset of ``i`` modulo 2^m - 1."""
        i %= self.order
        coset = []
        j = i
        while True:
            coset.append(j)
            j = (j * 2) % self.order
            if j == i:
                break
        return coset

    @lru_cache(maxsize=None)
    def minimal_polynomial(self, i: int) -> int:
        """Minimal polynomial of alpha^i over GF(2), as an int bitmask.

        Computed as prod_{j in coset(i)} (x - alpha^j); the product has all
        coefficients in GF(2) by Galois theory, which we assert.
        """
        coset = self.cyclotomic_coset(i)
        poly = [1]  # constant 1
        for j in coset:
            poly = self.poly_mul(poly, [self.alpha_pow(j), 1])  # (alpha^j + x)
        mask = 0
        for degree, coeff in enumerate(poly):
            if coeff not in (0, 1):
                raise AssertionError("minimal polynomial has non-binary coefficient")
            if coeff:
                mask |= 1 << degree
        return mask


# ---------------------------------------------------------------------------
# GF(2)[x] arithmetic on int bitmasks (bit i = coefficient of x^i)
# ---------------------------------------------------------------------------


def poly2_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial bitmask (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def poly2_mul(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        b >>= 1
    return out


def poly2_mod(a: int, b: int) -> int:
    """Remainder of GF(2) polynomial division a mod b."""
    if b == 0:
        raise ZeroDivisionError("polynomial modulo zero")
    deg_b = poly2_degree(b)
    while poly2_degree(a) >= deg_b:
        a ^= b << (poly2_degree(a) - deg_b)
    return a


def poly2_lcm(a: int, b: int) -> int:
    """Least common multiple of two GF(2) polynomials."""
    if a == 0 or b == 0:
        return 0
    quotient, remainder = poly2_divmod(poly2_mul(a, b), poly2_gcd(a, b))
    if remainder:
        raise AssertionError("gcd does not divide product")
    return quotient


def poly2_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while b:
        a, b = b, poly2_mod(a, b)
    return a


def poly2_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2) polynomial division."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = poly2_degree(b)
    quotient = 0
    while poly2_degree(a) >= deg_b:
        shift = poly2_degree(a) - deg_b
        quotient |= 1 << shift
        a ^= b << shift
    return quotient, a
