"""Binary BCH codes: systematic encoding and Berlekamp-Massey decoding.

A BCH code over GF(2^m) has natural length ``n = 2^m - 1`` and corrects any
``t`` bit errors using roughly ``m*t`` check bits.  The paper's strong-ECC
mechanism protects each 512-bit memory line with a *shortened* BCH code
(m = 10, n = 1023 shortened to 512 data bits), so ECC-4 costs 40 check bits
and ECC-8 costs 80 - versus SECDED's 64 bits for only single-error
correction per word.

Decoding is the classical pipeline:

1. syndromes ``S_i = r(alpha^i)`` for ``i = 1..2t``,
2. Berlekamp-Massey to find the error-locator polynomial,
3. Chien search for its roots (error positions),
4. bit flips; root-count mismatches are reported as *decode failures*
   (detected uncorrectable patterns).

Bits are numpy int8 arrays; index 0 is the first data bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gf import GF2m, poly2_degree, poly2_lcm, poly2_mod


@dataclass(frozen=True)
class BchDecodeResult:
    """Outcome of decoding one received word."""

    #: Corrected data+parity bits (valid only if ``ok``).
    bits: np.ndarray
    #: Number of bit errors the decoder corrected.
    errors_corrected: int
    #: False when the decoder detected an uncorrectable pattern.
    ok: bool


class BchCode:
    """A shortened binary BCH code with ``data_bits`` message bits.

    Parameters
    ----------
    data_bits:
        Message length (e.g. 512 for a 64-byte line).
    t:
        Designed correction capability in bits.
    m:
        Field degree; the natural length ``2^m - 1`` must fit the message
        plus check bits.  Chosen automatically if omitted.
    """

    def __init__(self, data_bits: int, t: int, m: int | None = None):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if t <= 0:
            raise ValueError("t must be positive; use CrcDetector for detect-only")
        self.data_bits = data_bits
        self.t = t
        if m is None:
            m = self._choose_m(data_bits, t)
        self.field = GF2m(m)
        self.n = self.field.order  # natural code length

        # Generator polynomial: lcm of minimal polynomials of alpha^1..alpha^2t.
        generator = 1
        for i in range(1, 2 * t + 1):
            generator = poly2_lcm(generator, self.field.minimal_polynomial(i))
        self.generator = generator
        self.check_bits = poly2_degree(generator)
        self.k = self.n - self.check_bits  # natural message length
        if data_bits > self.k:
            raise ValueError(
                f"data_bits={data_bits} exceeds k={self.k} for m={m}, t={t}; "
                "use a larger m"
            )
        #: Length of the stored (shortened) codeword: data + parity.
        self.codeword_bits = self.data_bits + self.check_bits

    @staticmethod
    def _choose_m(data_bits: int, t: int) -> int:
        """Smallest field degree whose natural code fits the message."""
        for m in range(3, 15):
            n = (1 << m) - 1
            if n - m * t >= data_bits:
                return m
        raise ValueError(f"no supported field fits data_bits={data_bits}, t={t}")

    # -- encoding -------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic encode: returns ``data`` followed by parity bits.

        Shortening: the message is implicitly left-padded with zeros to the
        natural length; zeros contribute nothing to the remainder, so we can
        work directly on the short message.
        """
        data = self._check_bits_array(data, self.data_bits, "data")
        # Message polynomial (bit i of the int = coefficient of x^i).  Data
        # bit 0 is the highest-degree message coefficient, matching the
        # conventional systematic layout.
        message = 0
        for bit in data:
            message = (message << 1) | int(bit)
        remainder = poly2_mod(message << self.check_bits, self.generator)
        parity = np.zeros(self.check_bits, dtype=np.int8)
        for i in range(self.check_bits):
            parity[i] = (remainder >> (self.check_bits - 1 - i)) & 1
        return np.concatenate([data, parity])

    # -- decoding ----------------------------------------------------------------

    def decode(self, received: np.ndarray) -> BchDecodeResult:
        """Correct up to ``t`` bit errors in ``received``.

        Returns a failure result (``ok=False``) when the error pattern is
        detectably uncorrectable: locator degree > t, root count mismatch,
        or a root pointing into the shortened (nonexistent) prefix.
        """
        received = self._check_bits_array(received, self.codeword_bits, "received")
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return BchDecodeResult(bits=received.copy(), errors_corrected=0, ok=True)

        locator = self._berlekamp_massey(syndromes)
        degree = len(locator) - 1
        if degree > self.t:
            return BchDecodeResult(bits=received.copy(), errors_corrected=0, ok=False)

        positions = self._chien_search(locator)
        if len(positions) != degree:
            return BchDecodeResult(bits=received.copy(), errors_corrected=0, ok=False)

        corrected = received.copy()
        for pos in positions:
            if pos < 0 or pos >= self.codeword_bits:
                # Error located in the shortened prefix: detectable failure.
                return BchDecodeResult(
                    bits=received.copy(), errors_corrected=0, ok=False
                )
            corrected[pos] ^= 1

        # Sanity: corrected word must have zero syndromes.
        if any(self._syndromes(corrected)):
            return BchDecodeResult(bits=received.copy(), errors_corrected=0, ok=False)
        return BchDecodeResult(
            bits=corrected, errors_corrected=len(positions), ok=True
        )

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        """Message bits of a (corrected) codeword."""
        codeword = self._check_bits_array(codeword, self.codeword_bits, "codeword")
        return codeword[: self.data_bits].copy()

    # -- internals --------------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> list[int]:
        """S_i = r(alpha^i), i = 1..2t.

        The stored word covers degrees ``n-1 .. n-codeword_bits`` of the
        natural codeword (shortened prefix is zero).  Bit j of the array is
        the coefficient of x^(n-1-j).
        """
        field = self.field
        ones = np.flatnonzero(received)
        out = []
        for i in range(1, 2 * self.t + 1):
            acc = 0
            for j in ones:
                exponent = (self.n - 1 - int(j)) * i
                acc ^= field.alpha_pow(exponent)
            out.append(acc)
        return out

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial Lambda(x) from the syndrome sequence."""
        field = self.field
        locator = [1]
        prev = [1]
        length = 0
        shift = 1
        prev_discrepancy = 1
        for step, syndrome in enumerate(syndromes):
            # Discrepancy: S_step + sum Lambda_i * S_{step-i}.
            discrepancy = syndrome
            for i in range(1, length + 1):
                if i < len(locator) and locator[i]:
                    discrepancy ^= field.mul(locator[i], syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            adjustment = [0] * shift + [field.mul(scale, c) for c in prev]
            updated = list(locator) + [0] * max(0, len(adjustment) - len(locator))
            for i, coeff in enumerate(adjustment):
                updated[i] ^= coeff
            if 2 * length <= step:
                prev = locator
                prev_discrepancy = discrepancy
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            locator = updated
        # Trim trailing zeros.
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Array bit positions whose cells are in error.

        A root alpha^{-p} of Lambda corresponds to an error at natural
        position p (coefficient of x^p), i.e. array index n-1-p.
        """
        field = self.field
        positions = []
        # Only natural positions covered by the shortened word plus the
        # prefix need checking; check the whole group to detect mismatches.
        for p in range(self.n):
            x = field.alpha_pow(-p % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(self.n - 1 - p)
        return positions

    @staticmethod
    def _check_bits_array(bits: np.ndarray, expected: int, name: str) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int8)
        if bits.shape != (expected,):
            raise ValueError(f"{name} must have shape ({expected},), got {bits.shape}")
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError(f"{name} must contain only 0/1")
        return bits
