"""ECC substrate: finite fields, BCH, SECDED Hamming, and CRC detection.

The paper's first mechanism is replacing DRAM-style SECDED with strong
multi-bit ECC; its second is gating the expensive decoder behind a cheap
error-detection code.  This package provides bit-exact implementations of
all three code families plus the :mod:`repro.ecc.schemes` registry that the
scrub policies and simulators consume (per-line correction strength, check
bit overhead, decode cost scaling).
"""

from __future__ import annotations

from .gf import GF2m
from .bch import BchCode, BchDecodeResult
from .hamming import SecdedCode, SecdedDecodeResult
from .crc import CrcDetector
from .schemes import EccScheme, SCHEMES, scheme_for_strength

__all__ = [
    "BchCode",
    "BchDecodeResult",
    "CrcDetector",
    "EccScheme",
    "GF2m",
    "SCHEMES",
    "SecdedCode",
    "SecdedDecodeResult",
    "scheme_for_strength",
]
