"""ECC scheme registry: the line-level abstraction scrub policies consume.

Simulators and scrub policies do not care how Chien search works; they care
about four numbers per scheme:

* ``t`` - how many cell errors per line the code corrects (with Gray-coded
  levels, one drifted cell = one bit error, so bit-strength equals
  cell-strength),
* ``check_bits`` - storage overhead per line,
* ``detector_bits`` - extra bits for the lightweight detection code (0 when
  the scheme has none),
* decode-cost scaling - handled by :class:`repro.pcm.energy.OperationCosts`
  via ``t``.

``make_codec`` builds the real bit-level codec for the bit-exact engine and
tests.  SECDED is modelled line-level with ``t = 1``: the DRAM baseline
treats a second error in a line as uncorrectable, which is both the paper's
framing and the conservative bound for the per-word (72,64) layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .bch import BchCode
from .crc import CrcDetector
from .hamming import InterleavedSecded


@dataclass(frozen=True)
class EccScheme:
    """One per-line protection configuration."""

    name: str
    #: Cell/bit errors correctable per line.
    t: int
    #: ECC check bits stored per line.
    check_bits: int
    #: Lightweight-detection bits stored per line (0 = no detector).
    detector_bits: int
    #: Builds the bit-level codec for a given data length.
    make_codec: Callable[[int], object]

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("t must be >= 0")
        if self.check_bits < 0 or self.detector_bits < 0:
            raise ValueError("bit overheads must be >= 0")

    @property
    def has_detector(self) -> bool:
        return self.detector_bits > 0

    @property
    def total_overhead_bits(self) -> int:
        """Check bits plus detector bits."""
        return self.check_bits + self.detector_bits

    def overhead_fraction(self, data_bits: int) -> float:
        """Storage overhead relative to the protected data."""
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        return self.total_overhead_bits / data_bits

    def make_detector(self) -> CrcDetector | None:
        """Lightweight detector instance, or ``None``."""
        if not self.has_detector:
            return None
        return CrcDetector(self.detector_bits)


#: Data bits per protected line throughout the reproduction (64 B).
LINE_DATA_BITS = 512
#: Detection CRC width used by detector-equipped schemes.
DETECTOR_BITS = 16


def _bch_check_bits(t: int, data_bits: int = LINE_DATA_BITS) -> int:
    """Check bits of the shortened BCH used for strength ``t``."""
    return BchCode(data_bits, t).check_bits


# Codec factories are module-level dataclasses rather than closures so
# that schemes — and the policies that embed them — pickle cleanly for
# the process-pool sweep path (repro.sim.parallel).


@dataclass(frozen=True)
class _BchCodecFactory:
    data_bits: int
    t: int

    def __call__(self, data_bits: int | None = None) -> BchCode:
        return BchCode(self.data_bits if data_bits is None else data_bits, self.t)


@dataclass(frozen=True)
class _SecdedCodecFactory:
    data_bits: int

    def __call__(self, data_bits: int | None = None) -> InterleavedSecded:
        return InterleavedSecded(self.data_bits if data_bits is None else data_bits)


@dataclass(frozen=True)
class _RsCodecFactory:
    data_bits: int
    t: int
    symbol_bits: int

    def __call__(self, data_bits: int | None = None):
        from .rs import RsBitCodec

        return RsBitCodec(
            self.data_bits if data_bits is None else data_bits,
            self.t,
            self.symbol_bits,
        )


def scheme_for_strength(
    t: int,
    with_detector: bool = False,
    data_bits: int = LINE_DATA_BITS,
) -> EccScheme:
    """Build a BCH-backed scheme correcting ``t`` errors per line.

    >>> scheme_for_strength(4).check_bits
    40
    """
    if t <= 0:
        raise ValueError("t must be positive")
    name = f"bch{t}" + ("+crc" if with_detector else "")
    return EccScheme(
        name=name,
        t=t,
        check_bits=_bch_check_bits(t, data_bits),
        detector_bits=DETECTOR_BITS if with_detector else 0,
        make_codec=_BchCodecFactory(data_bits, t),
    )


def secded_scheme(with_detector: bool = False, data_bits: int = LINE_DATA_BITS) -> EccScheme:
    """The DRAM baseline: per-word (72,64) SECDED, line-level t = 1."""
    words = data_bits // 64
    name = "secded" + ("+crc" if with_detector else "")
    return EccScheme(
        name=name,
        t=1,
        check_bits=8 * words,
        detector_bits=DETECTOR_BITS if with_detector else 0,
        make_codec=_SecdedCodecFactory(data_bits),
    )


def rs_scheme(
    t: int,
    with_detector: bool = False,
    data_bits: int = LINE_DATA_BITS,
    symbol_bits: int = 8,
) -> EccScheme:
    """Reed-Solomon scheme correcting ``t`` symbol errors per line.

    Line-level ``t`` maps symbol correction conservatively onto cell
    errors: each drifted cell lands in some symbol, so ``t`` symbol
    corrections absorb at least ``t`` cell errors (more when errors
    cluster within symbols - the bit-exact engine captures that upside).
    """
    if t <= 0:
        raise ValueError("t must be positive")
    name = f"rs{t}" + ("+crc" if with_detector else "")
    return EccScheme(
        name=name,
        t=t,
        check_bits=2 * t * symbol_bits,
        detector_bits=DETECTOR_BITS if with_detector else 0,
        make_codec=_RsCodecFactory(data_bits, t, symbol_bits),
    )


def _build_registry() -> dict[str, EccScheme]:
    registry: dict[str, EccScheme] = {}
    for with_detector in (False, True):
        scheme = secded_scheme(with_detector)
        registry[scheme.name] = scheme
        for t in (1, 2, 3, 4, 6, 8):
            scheme = scheme_for_strength(t, with_detector)
            registry[scheme.name] = scheme
        for t in (2, 4, 8):
            scheme = rs_scheme(t, with_detector)
            registry[scheme.name] = scheme
    return registry


#: All registered schemes by name ("secded", "bch4", "bch8+crc", ...).
SCHEMES: dict[str, EccScheme] = _build_registry()


def get_scheme(name: str) -> EccScheme:
    """Look up a scheme by its registry name.

    >>> get_scheme("bch8").t
    8
    """
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown ECC scheme {name!r}; available: {sorted(SCHEMES)}"
        ) from None
