"""CRC lightweight error detection.

The paper's second mechanism gates the expensive multi-bit ECC decoder
behind a near-free detection check: store a small CRC alongside each line,
and on a scrub read recompute and compare it.  Only mismatching lines pay
for decode (and possibly write-back).  A CRC-16 misses a random multi-bit
error pattern with probability ~2^-16, which is negligible against the
error rates scrub operates at; the guaranteed-detection properties for
small patterns come for free.

Bits are numpy int8 arrays to match the rest of the ECC substrate.
"""

from __future__ import annotations

import numpy as np

#: Common generator polynomials, bitmask including the top term.
CRC_POLYNOMIALS = {
    8: 0x107,        # CRC-8-CCITT: x^8 + x^2 + x + 1
    16: 0x11021,     # CRC-16-CCITT: x^16 + x^12 + x^5 + 1
    32: 0x104C11DB7,  # CRC-32 (IEEE)
}


class CrcDetector:
    """A ``width``-bit CRC over a fixed-length bit message.

    >>> crc = CrcDetector(16)
    >>> data = np.zeros(512, dtype=np.int8)
    >>> crc.check(data, crc.compute(data))
    True
    """

    def __init__(self, width: int = 16, polynomial: int | None = None):
        if polynomial is None:
            if width not in CRC_POLYNOMIALS:
                raise ValueError(
                    f"no default polynomial for width {width}; "
                    f"choose one of {sorted(CRC_POLYNOMIALS)} or pass polynomial"
                )
            polynomial = CRC_POLYNOMIALS[width]
        if polynomial.bit_length() != width + 1:
            raise ValueError(
                f"polynomial degree {polynomial.bit_length() - 1} != width {width}"
            )
        self.width = width
        self.polynomial = polynomial
        self._top = 1 << width
        self._mask = self._top - 1

    @property
    def check_bits(self) -> int:
        """Storage overhead in bits per protected line."""
        return self.width

    def compute(self, bits: np.ndarray) -> np.ndarray:
        """CRC of a bit array, returned as a ``width``-length bit array."""
        bits = self._check_array(bits)
        register = 0
        for bit in bits:
            register = (register << 1) | int(bit)
            if register & self._top:
                register ^= self.polynomial
        # Flush ``width`` zero bits so every message bit affects the CRC.
        for _ in range(self.width):
            register <<= 1
            if register & self._top:
                register ^= self.polynomial
        register &= self._mask
        out = np.zeros(self.width, dtype=np.int8)
        for i in range(self.width):
            out[i] = (register >> (self.width - 1 - i)) & 1
        return out

    def check(self, bits: np.ndarray, stored_crc: np.ndarray) -> bool:
        """True when ``bits`` still matches ``stored_crc``."""
        stored_crc = np.asarray(stored_crc, dtype=np.int8)
        if stored_crc.shape != (self.width,):
            raise ValueError(
                f"stored_crc must have shape ({self.width},), got {stored_crc.shape}"
            )
        return bool(np.array_equal(self.compute(bits), stored_crc))

    @staticmethod
    def _check_array(bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int8)
        if bits.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("bits must contain only 0/1")
        return bits
