"""Explicit access traces for the bit-exact engine and controller model.

A trace is a time-ordered sequence of line-granularity requests.  Traces
are generated from the same :class:`~repro.workloads.generators.DemandRates`
the population engine consumes (Poisson thinning), so the two engines see
statistically identical traffic - the property experiment E2's validation
relies on.

The serialization format is a simple CSV (``time,op,line``) so traces can
be inspected, diffed, and checked into test fixtures.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from enum import Enum

import numpy as np

from .generators import DemandRates


class Op(str, Enum):
    """Request kind."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True)
class Request:
    """One line-granularity memory request."""

    time: float
    op: Op
    line: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("request time must be >= 0")
        if self.line < 0:
            raise ValueError("line must be >= 0")


class AccessTrace:
    """A time-ordered request sequence over ``num_lines`` lines."""

    def __init__(self, requests: list[Request], num_lines: int):
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        for request in requests:
            if request.line >= num_lines:
                raise ValueError(
                    f"request touches line {request.line} >= num_lines {num_lines}"
                )
        times = [request.time for request in requests]
        if times != sorted(times):
            requests = sorted(requests, key=lambda r: r.time)
        self.requests = requests
        self.num_lines = num_lines

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration(self) -> float:
        return self.requests[-1].time if self.requests else 0.0

    @property
    def num_writes(self) -> int:
        return sum(1 for request in self.requests if request.op is Op.WRITE)

    @property
    def num_reads(self) -> int:
        return len(self.requests) - self.num_writes

    # -- (de)serialization ---------------------------------------------------

    def to_csv(self) -> str:
        """Render as ``time,op,line`` CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "op", "line"])
        for request in self.requests:
            writer.writerow([f"{request.time!r}", request.op.value, request.line])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str, num_lines: int) -> "AccessTrace":
        """Parse the CSV produced by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["time", "op", "line"]:
            raise ValueError(f"unexpected trace header: {header}")
        requests = [
            Request(time=float(row[0]), op=Op(row[1]), line=int(row[2]))
            for row in reader
            if row
        ]
        return cls(requests, num_lines)


def trace_from_rates(
    rates: DemandRates,
    duration: float,
    rng: np.random.Generator,
    max_requests: int = 5_000_000,
) -> AccessTrace:
    """Sample an explicit Poisson trace realizing ``rates`` over ``duration``.

    Each line's events are a Poisson process at its own rate; the merged
    trace is returned time-ordered.  ``max_requests`` guards against
    accidentally materializing an astronomically long trace.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    expected = (rates.total_write_rate + rates.total_read_rate) * duration
    if expected > max_requests:
        raise ValueError(
            f"trace would contain ~{expected:.0f} requests "
            f"(max_requests={max_requests}); lower the rates or duration"
        )
    requests: list[Request] = []
    for op, rate_vector in ((Op.WRITE, rates.write_rate), (Op.READ, rates.read_rate)):
        active = np.flatnonzero(rate_vector > 0)
        counts = rng.poisson(rate_vector[active] * duration)
        for line, count in zip(active, counts):
            if count == 0:
                continue
            for time in rng.random(count) * duration:
                requests.append(Request(time=float(time), op=op, line=int(line)))
    requests.sort(key=lambda r: r.time)
    return AccessTrace(requests, rates.num_lines)
