"""Demand-traffic substrate.

The paper drove its simulator with SPEC and server traces; we substitute
parameterized synthetic traffic (see DESIGN.md).  Scrub interacts with
demand traffic through two channels, and both are captured:

* demand **writes** re-program whole lines, resetting their drift clocks
  (write-hot lines need almost no scrubbing) while consuming endurance;
* demand traffic occupies banks, competing with scrub bandwidth.

Two representations are produced from one distribution description:

* **rate vectors** (:class:`~repro.workloads.generators.DemandRates`) -
  per-line Poisson read/write rates for the population engine;
* **access traces** (:class:`~repro.workloads.trace.AccessTrace`) -
  explicit timestamped requests for the bit-exact engine and the memory
  controller model.
"""

from __future__ import annotations

from .generators import (
    DemandRates,
    hotspot_rates,
    streaming_rates,
    uniform_rates,
    zipf_rates,
)
from .trace import AccessTrace, Request, trace_from_rates

__all__ = [
    "AccessTrace",
    "DemandRates",
    "Request",
    "hotspot_rates",
    "streaming_rates",
    "trace_from_rates",
    "uniform_rates",
    "zipf_rates",
]
