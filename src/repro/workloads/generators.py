"""Synthetic demand-rate generators.

Each generator returns a :class:`DemandRates`: per-line Poisson rates for
reads and writes.  The shapes mirror the workload families the paper's
evaluation mixes span:

* :func:`uniform_rates` - uniform random traffic (worst case for locality).
* :func:`zipf_rates` - skewed popularity, the standard server-workload
  model; high alpha concentrates writes on few lines, leaving a long cold
  tail that only scrub protects.
* :func:`streaming_rates` - every line rewritten on a fixed period, as in
  sequential-sweep kernels; modelled as equal Poisson rates at the sweep
  frequency.
* :func:`hotspot_rates` - a hot fraction of lines takes almost all traffic
  (banked hotspot), the sharpest soft/hard contrast across regions and the
  workload that motivates per-region adaptive scrub.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DemandRates:
    """Per-line Poisson demand rates (events per second)."""

    write_rate: np.ndarray
    read_rate: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        write = np.asarray(self.write_rate, dtype=np.float64)
        read = np.asarray(self.read_rate, dtype=np.float64)
        if write.shape != read.shape or write.ndim != 1:
            raise ValueError("rate vectors must be 1-D and the same length")
        if (write < 0).any() or (read < 0).any():
            raise ValueError("rates must be >= 0")

    @property
    def num_lines(self) -> int:
        return self.write_rate.shape[0]

    @property
    def total_write_rate(self) -> float:
        return float(self.write_rate.sum())

    @property
    def total_read_rate(self) -> float:
        return float(self.read_rate.sum())

    def scaled(self, factor: float) -> "DemandRates":
        """Same shape, total intensity scaled by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return DemandRates(
            write_rate=self.write_rate * factor,
            read_rate=self.read_rate * factor,
            name=f"{self.name}*{factor:g}",
        )


def idle_rates(num_lines: int) -> DemandRates:
    """No demand traffic at all - scrub alone protects memory."""
    zeros = np.zeros(num_lines)
    return DemandRates(write_rate=zeros, read_rate=zeros.copy(), name="idle")


def uniform_rates(
    num_lines: int,
    total_write_rate: float,
    read_write_ratio: float = 2.0,
) -> DemandRates:
    """Uniformly spread traffic: every line equally likely."""
    _check_common(num_lines, total_write_rate, read_write_ratio)
    per_line = total_write_rate / num_lines
    write = np.full(num_lines, per_line)
    return DemandRates(
        write_rate=write,
        read_rate=write * read_write_ratio,
        name="uniform",
    )


def zipf_rates(
    num_lines: int,
    total_write_rate: float,
    alpha: float = 1.0,
    read_write_ratio: float = 2.0,
    rng: np.random.Generator | None = None,
) -> DemandRates:
    """Zipf(alpha)-popular traffic.

    Line popularity ranks are randomly permuted (hot lines scattered across
    the address space) unless ``rng`` is None, in which case line 0 is the
    hottest - convenient for tests.
    """
    _check_common(num_lines, total_write_rate, read_write_ratio)
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    ranks = np.arange(1, num_lines + 1, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    if rng is not None:
        weights = rng.permutation(weights)
    write = weights * total_write_rate
    return DemandRates(
        write_rate=write,
        read_rate=write * read_write_ratio,
        name=f"zipf({alpha:g})",
    )


def streaming_rates(
    num_lines: int,
    sweep_period: float,
    read_write_ratio: float = 1.0,
) -> DemandRates:
    """Sequential-sweep traffic: each line rewritten every ``sweep_period``.

    The Poisson approximation of the periodic rewrite keeps the key
    property - drift clocks reset about once per period on every line.
    """
    if sweep_period <= 0:
        raise ValueError("sweep_period must be positive")
    _check_common(num_lines, 1.0, read_write_ratio)
    write = np.full(num_lines, 1.0 / sweep_period)
    return DemandRates(
        write_rate=write,
        read_rate=write * read_write_ratio,
        name=f"streaming({sweep_period:g}s)",
    )


def hotspot_rates(
    num_lines: int,
    total_write_rate: float,
    hot_fraction: float = 0.1,
    hot_share: float = 0.9,
    read_write_ratio: float = 2.0,
    contiguous: bool = True,
) -> DemandRates:
    """Hot/cold split: ``hot_fraction`` of lines takes ``hot_share`` of writes.

    ``contiguous=True`` puts the hot set at the front of the address space
    (hot *banks*), which is the case per-region adaptive scrub exploits.
    """
    _check_common(num_lines, total_write_rate, read_write_ratio)
    if not 0 < hot_fraction < 1:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0 <= hot_share <= 1:
        raise ValueError("hot_share must be in [0, 1]")
    num_hot = max(1, int(round(num_lines * hot_fraction)))
    write = np.empty(num_lines)
    hot_rate = total_write_rate * hot_share / num_hot
    cold_count = num_lines - num_hot
    cold_rate = (
        total_write_rate * (1.0 - hot_share) / cold_count if cold_count else 0.0
    )
    if not contiguous:
        raise NotImplementedError(
            "scattered hotspots are expressed via zipf_rates with a rng"
        )
    write[:num_hot] = hot_rate
    write[num_hot:] = cold_rate
    return DemandRates(
        write_rate=write,
        read_rate=write * read_write_ratio,
        name=f"hotspot({hot_fraction:g}/{hot_share:g})",
    )


def remap_rates(rates: DemandRates, physical_of_logical: np.ndarray) -> DemandRates:
    """Permute per-line rates from logical onto physical line indices.

    The generators above describe traffic over *logical* addresses; the
    scrub engine's lines are *physical*.  Given the address map (physical
    index of each logical line, a bijection - e.g. built from
    :class:`repro.mem.geometry.MemoryGeometry`), this produces the rate
    vector the engine should see.  Interleaved mappings scatter logical
    hotspots across banks, which is exactly the effect experiment A13
    quantifies against per-region adaptive scrub.
    """
    mapping = np.asarray(physical_of_logical)
    if mapping.shape != (rates.num_lines,):
        raise ValueError("mapping must assign one physical line per logical line")
    if not np.array_equal(np.sort(mapping), np.arange(rates.num_lines)):
        raise ValueError("mapping must be a bijection over the line space")
    write = np.empty_like(rates.write_rate)
    read = np.empty_like(rates.read_rate)
    write[mapping] = rates.write_rate
    read[mapping] = rates.read_rate
    return DemandRates(
        write_rate=write, read_rate=read, name=f"{rates.name}|remapped"
    )


def _check_common(num_lines: int, total_rate: float, ratio: float) -> None:
    if num_lines <= 0:
        raise ValueError("num_lines must be positive")
    if total_rate < 0:
        raise ValueError("total rate must be >= 0")
    if ratio < 0:
        raise ValueError("read_write_ratio must be >= 0")
