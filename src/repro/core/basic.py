"""The DRAM-style baseline scrub every mechanism is measured against.

Modern DRAM systems pair (72,64) SECDED with a hardware scrubber that walks
memory at a fixed rate, runs every line through the ECC logic, and writes
back any line in which a (single-bit) error was corrected - the goal being
to fix the first error before a second one makes the word uncorrectable.

Transplanted to MLC PCM this recipe is the paper's strawman: SECDED's
single-error budget is consumed almost immediately by drift, every scrub
pass decodes every line, and every line with any error gets a full
program-and-verify write-back - maximal energy and wear for minimal
protection.  The abstract's headline numbers (96.5 % / 24.4x / 37.8 %) are
all measured relative to this policy.
"""

from __future__ import annotations

from ..ecc.schemes import secded_scheme
from .threshold import ThresholdScrubPolicy


def basic_scrub(interval: float) -> ThresholdScrubPolicy:
    """DRAM-style scrub: SECDED, decode every line, write back on any error.

    >>> policy = basic_scrub(interval=3600.0)
    >>> policy.scheme.t
    1
    """
    return ThresholdScrubPolicy(
        secded_scheme(with_detector=False),
        interval,
        threshold=1,
        label="basic(secded)",
    )
