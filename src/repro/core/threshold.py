"""Threshold write-back scrub - deferring writes until they matter.

A drift error, once corrected by the decoder, does not need to be *written
back* immediately: the corrected data is delivered to the requester either
way, and the stored line remains correctable as long as its accumulated
error count stays at or below the code's strength ``t``.  Writing back on
the first error (the DRAM habit) wastes the most expensive operation PCM
has on lines that were in no danger.

The threshold mechanism writes a line back only when its observed error
count reaches ``threshold`` (with ``threshold <= t``), letting errors
accumulate across scrub passes in the safe band ``[1, threshold)``.  The
trade-off is explicit: higher thresholds save writes (and the wear they
cause) but leave less slack for errors arriving between two passes, so
uncorrectable errors rise as the threshold approaches ``t``.

:class:`ThresholdScrubPolicy` is also the shared implementation behind the
basic, strong-ECC, and lightweight-detection mechanisms - each is a
configuration of (scheme, detector, threshold); see the sibling modules.
"""

from __future__ import annotations

import numpy as np

from ..ecc.schemes import EccScheme, scheme_for_strength
from .policy import BatchVisitDecision, ScrubPolicy, VisitDecision


class ThresholdScrubPolicy(ScrubPolicy):
    """Scrub with a write-back threshold and optional detector gating.

    Parameters
    ----------
    scheme:
        ECC scheme; when it carries a detector, decode is gated behind it.
    interval:
        Static scrub interval (seconds) for every region.
    threshold:
        Write back a correctable line iff its error count >= ``threshold``.
        ``threshold=1`` restores immediate write-back.
    partial_writeback:
        Re-program only the drifted cells instead of the whole line (PCM
        programs cells individually).  Energy and wear scale with the
        error count; protection is identical.
    label:
        Display name for tables (defaults to the class name).
    """

    def __init__(
        self,
        scheme: EccScheme,
        interval: float,
        threshold: int = 1,
        partial_writeback: bool = False,
        label: str | None = None,
    ):
        super().__init__(scheme, interval)
        if not 1 <= threshold <= scheme.t:
            raise ValueError(
                f"threshold must be in [1, t={scheme.t}], got {threshold}"
            )
        self.threshold = threshold
        self.partial_writeback = partial_writeback
        self._label = label

    @property
    def name(self) -> str:
        return self._label if self._label else type(self).__name__

    def fast_forward_interval(self, region: int) -> float | None:
        """Static-interval policies are always fast-forward eligible.

        A zero-error pass decodes deterministically (all-or-nothing per the
        detector gate), writes nothing back (``threshold >= 1``), and
        reschedules at the fixed ``interval``.
        """
        return self.interval

    def batch_interval(self) -> float | None:
        """Static-interval policies batch whole device rounds.

        Every region is visited at the same fixed cadence and every
        decision reschedules at it unchanged, so the batch engine may
        replay full rounds of the stagger schedule.
        """
        return self.interval

    def visit_batch(
        self,
        times: np.ndarray,
        regions: np.ndarray,
        error_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> BatchVisitDecision:
        """The threshold rule over a whole cohort in one set of array ops.

        Decision logic is identical to :meth:`visit` row by row; the
        detector draw is one C-order fill over the cohort, which is
        bitwise the scalar per-visit draws in visit order.
        """
        flagged, missed = self._detect_batch(error_counts, rng)
        decoded = flagged
        uncorrectable = decoded & (error_counts > self.scheme.t)
        correctable = decoded & ~uncorrectable
        written_back = correctable & (error_counts >= self.threshold)
        return BatchVisitDecision(
            decoded=decoded,
            written_back=written_back,
            uncorrectable=uncorrectable,
            missed=missed,
            next_intervals=np.full(regions.shape[0], self.interval),
        )

    def visit(
        self,
        time: float,
        region: int,
        error_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> VisitDecision:
        flagged, missed = self._detect(error_counts, rng)
        decoded = flagged
        correctable, uncorrectable = self._classify(error_counts, decoded)
        written_back = correctable & (error_counts >= self.threshold)
        return VisitDecision(
            decoded=decoded,
            written_back=written_back,
            uncorrectable=uncorrectable,
            missed=missed,
            next_interval=self.interval,
        )


def threshold_scrub(
    interval: float,
    strength: int = 4,
    threshold: int | None = None,
    with_detector: bool = True,
) -> ThresholdScrubPolicy:
    """The paper's threshold write-back mechanism.

    Defaults to BCH-``strength`` with a CRC detector and a threshold of
    ``t - 1``: write back only lines one error away from the correction
    limit, the most write-frugal setting that still leaves one error of
    slack between passes.
    """
    scheme = scheme_for_strength(strength, with_detector=with_detector)
    if threshold is None:
        threshold = max(1, scheme.t - 1)
    return ThresholdScrubPolicy(
        scheme,
        interval,
        threshold=threshold,
        label=f"threshold(t={scheme.t},theta={threshold})",
    )


def partial_scrub(
    interval: float,
    strength: int = 4,
    threshold: int | None = None,
) -> ThresholdScrubPolicy:
    """Threshold scrub with cell-selective (partial) write-back.

    The most write-frugal configuration short of not writing at all: the
    write-back event count matches :func:`threshold_scrub`, but each event
    re-programs only the handful of drifted cells, so write energy and
    wear drop by roughly ``cells_per_line / threshold``.
    """
    scheme = scheme_for_strength(strength, with_detector=True)
    if threshold is None:
        threshold = max(1, scheme.t - 1)
    return ThresholdScrubPolicy(
        scheme,
        interval,
        threshold=threshold,
        partial_writeback=True,
        label=f"partial(t={scheme.t},theta={threshold})",
    )
