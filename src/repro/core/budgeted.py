"""Bandwidth-budgeted scrub: derive the scrub rate from a bank-time budget.

Deployments do not pick scrub intervals in the abstract - they grant the
scrubber a slice of bank time ("at most 0.1 % of each bank") and want the
best reliability that slice buys.  This module closes the loop:

* :func:`interval_for_budget` converts a budget fraction into the shortest
  interval whose scan traffic (reads + expected decodes + expected
  write-backs) fits the slice, using the analytic error model to predict
  the per-visit decode/write probabilities at the interval being tested
  (the interval appears on both sides, so the solve is a fixed point on a
  geometric grid);
* :func:`budgeted_scrub` wraps it into a ready policy;
* :func:`reliability_at_budget` reports the per-visit line-failure
  probability that budget ends up buying - the number to compare across
  ECC strengths when provisioning.
"""

from __future__ import annotations

from ..ecc.schemes import EccScheme, scheme_for_strength
from ..params import EnergySpec, LineSpec
from ..pcm.energy import OperationCosts
from ..sim.analytic import AnalyticModel
from .threshold import ThresholdScrubPolicy


def _visit_cost_seconds(
    model: AnalyticModel,
    scheme: EccScheme,
    costs: OperationCosts,
    interval: float,
    threshold: int,
) -> float:
    """Expected bank-seconds one line visit costs at this interval.

    Decode fires for lines with any error (detector-gated schemes) or
    always; write-back fires when the count reaches the threshold.  The
    between-visit age is ``interval`` in steady state with write-back (an
    upper bound for threshold policies, hence conservative on budget).
    """
    pmf_limit = max(scheme.t, threshold) + 1
    pmf = model.line_error_count_pmf(interval, pmf_limit)
    p_any_error = 1.0 - float(pmf[0])
    p_writeback = 1.0 - float(pmf[:threshold].sum())
    p_decode = p_any_error if scheme.has_detector else 1.0
    return (
        costs.read_latency
        + p_decode * costs.decode_latency
        + p_writeback * costs.write_latency
    )


def interval_for_budget(
    model: AnalyticModel,
    scheme: EccScheme,
    costs: OperationCosts,
    lines_per_bank: int,
    budget_fraction: float,
    threshold: int = 1,
    min_interval: float = 1.0,
    max_interval: float = 30 * 86400.0,
) -> float:
    """Shortest interval whose scan traffic fits ``budget_fraction``.

    A bank of ``lines_per_bank`` lines scrubbed every ``T`` seconds costs
    ``lines_per_bank * visit_cost(T) / T`` bank-seconds per second; we
    return the smallest ``T`` (on a fine geometric grid) keeping that at
    or below the budget.  Raises when even ``max_interval`` cannot fit.
    """
    if lines_per_bank <= 0:
        raise ValueError("lines_per_bank must be positive")
    if not 0 < budget_fraction < 1:
        raise ValueError("budget_fraction must be in (0, 1)")
    if not 0 < min_interval < max_interval:
        raise ValueError("need 0 < min_interval < max_interval")

    def occupancy(interval: float) -> float:
        visit_cost = _visit_cost_seconds(model, scheme, costs, interval, threshold)
        return lines_per_bank * visit_cost / interval

    if occupancy(max_interval) > budget_fraction:
        raise ValueError(
            f"budget {budget_fraction:.2e} cannot be met even at "
            f"interval {max_interval:g}s"
        )
    # Occupancy is not perfectly monotone (write probability grows with
    # the interval), so scan a geometric grid rather than bisecting.
    points = 400
    ratio = (max_interval / min_interval) ** (1.0 / (points - 1))
    interval = min_interval
    for __ in range(points):
        if occupancy(interval) <= budget_fraction:
            return interval
        interval *= ratio
    return max_interval


def budgeted_scrub(
    model: AnalyticModel,
    lines_per_bank: int,
    budget_fraction: float,
    strength: int = 4,
    threshold: int | None = None,
    energy: EnergySpec | None = None,
    line: LineSpec | None = None,
) -> ThresholdScrubPolicy:
    """Threshold scrub policy running as fast as the bank budget allows.

    >>> from repro.params import CellSpec
    >>> from repro.sim.analytic import AnalyticModel, CrossingDistribution
    >>> model = AnalyticModel(CrossingDistribution(CellSpec()), 256)
    >>> policy = budgeted_scrub(model, 1 << 20, budget_fraction=1e-3)
    >>> policy.interval > 0
    True
    """
    scheme = scheme_for_strength(strength, with_detector=True)
    if threshold is None:
        threshold = max(1, scheme.t - 1)
    costs = OperationCosts.for_line(
        energy if energy is not None else EnergySpec(),
        line if line is not None else LineSpec(),
        scheme.total_overhead_bits,
        scheme.t,
    )
    interval = interval_for_budget(
        model, scheme, costs, lines_per_bank, budget_fraction, threshold
    )
    return ThresholdScrubPolicy(
        scheme,
        interval,
        threshold=threshold,
        label=f"budgeted(t={scheme.t},{budget_fraction:.0e})",
    )


def reliability_at_budget(
    model: AnalyticModel,
    lines_per_bank: int,
    budget_fraction: float,
    strength: int,
    energy: EnergySpec | None = None,
    line: LineSpec | None = None,
) -> tuple[float, float]:
    """(interval, per-visit line-failure probability) a budget buys.

    The provisioning comparison: run this across ECC strengths and pick
    the code whose failure probability at the affordable interval meets
    the reliability target.
    """
    scheme = scheme_for_strength(strength, with_detector=True)
    costs = OperationCosts.for_line(
        energy if energy is not None else EnergySpec(),
        line if line is not None else LineSpec(),
        scheme.total_overhead_bits,
        scheme.t,
    )
    interval = interval_for_budget(
        model, scheme, costs, lines_per_bank, budget_fraction,
        threshold=max(1, scheme.t - 1),
    )
    failure = model.line_failure_probability(interval, scheme.t)
    return interval, failure
