"""The scrub statistics ledger.

Every metric the paper reports flows through this object: uncorrectable
errors, scrub-related writes (the 24.4x metric), scrub energy and its
read/detect/decode/write breakdown (the 37.8% metric), wear added by
scrubbing versus demand, and the observed error-count histogram that the
threshold and adaptive mechanisms are designed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pcm.energy import EnergyLedger, OperationCosts


@dataclass
class ScrubStats:
    """Counters and energy for one simulation run.

    ``error_histogram[k]`` counts scrub observations of lines with exactly
    ``k`` errors (capped into the last bucket), across all visits.
    """

    costs: OperationCosts
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    #: Lines found uncorrectable at a scrub visit.
    uncorrectable: int = 0
    #: Scrub visits that observed at least one error.
    visits_with_errors: int = 0
    #: Total line visits by the scrubber.
    visits: int = 0
    #: Detector misses (line had errors, CRC matched anyway).
    detector_misses: int = 0
    #: Lines retired for excessive hard errors.
    retired: int = 0
    #: Demand writes applied (for wear attribution).
    demand_writes: int = 0
    #: Cells rewritten by partial write-backs (0 under full write-back).
    partial_cells: int = 0
    #: Observed per-line error counts across all scrub decodes:
    #: ``error_histogram[k]`` counts lines seen with exactly ``k`` errors
    #: (capped into the last bucket).
    error_histogram: np.ndarray = field(
        default_factory=lambda: np.zeros(33, dtype=np.int64)
    )

    # -- recording helpers (engine-facing) -----------------------------------

    def record_reads(self, count: int) -> None:
        self.ledger.add("scrub_read", self.costs.read_energy, count)
        self.visits += count

    def record_detects(self, count: int) -> None:
        self.ledger.add("scrub_detect", self.costs.detect_energy, count)

    def record_decodes(self, count: int) -> None:
        self.ledger.add("scrub_decode", self.costs.decode_energy, count)

    def record_scrub_writes(self, count: int) -> None:
        self.ledger.add("scrub_write", self.costs.write_energy, count)

    def record_partial_scrub_writes(self, lines: int, cells: int) -> None:
        """Partial write-backs: ``lines`` events touching ``cells`` cells.

        Energy scales with the rewritten cells; the event count (what the
        24.4x metric counts) is per line, as for full write-backs.
        """
        if lines < 0 or cells < 0:
            raise ValueError("lines and cells must be >= 0")
        if lines == 0:
            return
        per_line = cells * self.costs.write_energy_per_cell / lines
        self.ledger.add("scrub_write", per_line, lines)
        self.partial_cells += cells

    def record_demand_writes(self, count: int) -> None:
        self.ledger.add("demand_write", self.costs.write_energy, count)
        self.demand_writes += count

    def record_zero_error_visits(
        self, visits: int, lines: int, detector: bool, decode_all: bool
    ) -> None:
        """Charge ``visits`` consecutive error-free scans of ``lines`` lines.

        The fast-forward bulk API.  Bit-identical to the per-visit path: a
        zero-error visit reads and (with a detector) checks every line;
        detector-less schemes additionally decode every line and drop
        ``lines`` of mass into ``histogram[0]``, while detector-gated
        schemes decode nothing (their per-visit ``add(..., 0)`` adds
        ``+0.0`` joules, a bitwise no-op, so it is elided here).  Float
        accumulators advance by iterated per-visit additions via
        :meth:`~repro.pcm.energy.EnergyLedger.add_repeated`, never by one
        fused term.
        """
        if visits < 0 or lines < 0:
            raise ValueError("visits and lines must be >= 0")
        self.ledger.add_repeated(
            "scrub_read", self.costs.read_energy, lines, visits
        )
        self.visits += lines * visits
        if detector:
            self.ledger.add_repeated(
                "scrub_detect", self.costs.detect_energy, lines, visits
            )
        if decode_all:
            self.ledger.add_repeated(
                "scrub_decode", self.costs.decode_energy, lines, visits
            )
            self.error_histogram[0] += lines * visits

    # -- bulk recording (batch-engine-facing) --------------------------------

    def record_reads_bulk(self, lines: int, visits: int) -> None:
        """Charge ``visits`` region scans of ``lines`` lines each.

        Bit-identical to ``visits`` successive :meth:`record_reads` calls:
        the energy accumulator replays the per-visit additions
        (:meth:`~repro.pcm.energy.EnergyLedger.add_repeated`).
        """
        if lines < 0 or visits < 0:
            raise ValueError("lines and visits must be >= 0")
        self.ledger.add_repeated("scrub_read", self.costs.read_energy, lines, visits)
        self.visits += lines * visits

    def record_detects_bulk(self, lines: int, visits: int) -> None:
        """Charge ``visits`` detector passes over ``lines`` lines each."""
        if lines < 0 or visits < 0:
            raise ValueError("lines and visits must be >= 0")
        self.ledger.add_repeated(
            "scrub_detect", self.costs.detect_energy, lines, visits
        )

    def record_decodes_bulk(self, counts) -> None:
        """Charge one visit's decode count per entry of ``counts``, in order.

        Bit-identical to per-visit :meth:`record_decodes` calls in the same
        order (:meth:`~repro.pcm.energy.EnergyLedger.add_sequence`).
        """
        self.ledger.add_sequence("scrub_decode", self.costs.decode_energy, counts)

    def record_scrub_writes_bulk(self, counts) -> None:
        """Charge one visit's write-back count per entry of ``counts``."""
        self.ledger.add_sequence("scrub_write", self.costs.write_energy, counts)

    def record_error_counts(self, counts: np.ndarray) -> None:
        """Fold one visit's observed per-line error counts into the histogram."""
        counts = np.asarray(counts)
        if counts.size == 0:
            return
        capped = np.minimum(counts, self.error_histogram.size - 1)
        self.error_histogram += np.bincount(
            capped, minlength=self.error_histogram.size
        ).astype(np.int64)
        self.visits_with_errors += int((counts > 0).sum())

    # -- derived metrics (benchmark-facing) ------------------------------------

    @property
    def scrub_writes(self) -> int:
        """Scrub write-back events, in line units.

        Scrub-induced cell-writes = ``scrub_writes * cells_per_line`` for
        full write-backs; wear analysis converts.
        """
        return self.ledger.counts["scrub_write"]

    @property
    def scrub_reads(self) -> int:
        return self.ledger.counts["scrub_read"]

    @property
    def scrub_decodes(self) -> int:
        return self.ledger.counts["scrub_decode"]

    @property
    def scrub_energy(self) -> float:
        return self.ledger.scrub_energy

    def energy_breakdown(self) -> dict[str, float]:
        """Scrub energy by stage (read/detect/decode/write)."""
        return {
            key.removeprefix("scrub_"): value
            for key, value in self.ledger.breakdown().items()
            if key.startswith("scrub_")
        }

    def scrub_busy_time(self) -> float:
        """Seconds of bank time consumed by scrubbing (bandwidth overhead)."""
        return (
            self.scrub_reads * self.costs.read_latency
            + self.scrub_decodes * self.costs.decode_latency
            + self.scrub_writes * self.costs.write_latency
        )

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline metrics, for tables and JSON export."""
        return {
            "visits": float(self.visits),
            "uncorrectable": float(self.uncorrectable),
            "scrub_reads": float(self.scrub_reads),
            "scrub_decodes": float(self.scrub_decodes),
            "scrub_writes": float(self.scrub_writes),
            "scrub_energy_j": self.scrub_energy,
            "detector_misses": float(self.detector_misses),
            "retired": float(self.retired),
            "demand_writes": float(self.demand_writes),
        }
