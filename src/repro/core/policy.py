"""The scrub-policy contract between mechanisms and simulation engines.

A :class:`ScrubPolicy` is stateful per run (adaptive policies track
per-region intervals) and is driven by the engine one *visit* at a time: the
engine hands it the true per-line error counts for the region being scanned,
and the policy returns a :class:`VisitDecision` describing what the hardware
would have done - which lines engaged the full decoder, which were written
back, which were uncorrectable, and when this region should be scanned next.

The engine, not the policy, applies the physical consequences (state resets,
wear, energy) - policies stay pure decision logic, which is what makes them
composable and unit-testable in isolation.

Observability rules the engine enforces for every policy:

* a line's error count is only *known* to the policy after a decode;
* a CRC detector reports error-present/absent (with a 2^-width miss
  probability on true errors) without revealing the count;
* error counts above the scheme's correction strength mean the decode
  fails: the line is uncorrectable, and no write-back can save it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..ecc.schemes import EccScheme
from ..obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class VisitDecision:
    """What the scrub hardware did for one region visit.

    All masks are boolean arrays over the visited region's lines.
    """

    #: Lines that ran the full ECC decoder.
    decoded: np.ndarray
    #: Lines written back (correctable lines only).
    written_back: np.ndarray
    #: Lines whose decode failed (error count exceeded correction strength).
    uncorrectable: np.ndarray
    #: Lines whose errors went unnoticed (detector miss); state untouched.
    missed: np.ndarray
    #: Seconds until this region's next scrub pass.
    next_interval: float

    def __post_init__(self) -> None:
        n = self.decoded.shape[0]
        for name in ("written_back", "uncorrectable", "missed"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"mask {name} length mismatch")
        if self.next_interval <= 0:
            raise ValueError("next_interval must be positive")
        if bool((self.written_back & self.uncorrectable).any()):
            raise ValueError("a line cannot be both written back and uncorrectable")


@dataclass(frozen=True)
class BatchVisitDecision:
    """What the scrub hardware did for a whole cohort of region visits.

    The vectorized counterpart of :class:`VisitDecision`: all masks are
    boolean ``(regions, region_size)`` arrays, row ``i`` describing the
    cohort's ``i``-th region exactly as the scalar decision's masks would.
    """

    #: Lines that ran the full ECC decoder.
    decoded: np.ndarray
    #: Lines written back (correctable lines only).
    written_back: np.ndarray
    #: Lines whose decode failed (error count exceeded correction strength).
    uncorrectable: np.ndarray
    #: Lines whose errors went unnoticed (detector miss); state untouched.
    missed: np.ndarray
    #: Seconds until each cohort region's next scrub pass, shape ``(regions,)``.
    next_intervals: np.ndarray

    def __post_init__(self) -> None:
        shape = self.decoded.shape
        if len(shape) != 2:
            raise ValueError("batch decision masks must be 2-D")
        for name in ("written_back", "uncorrectable", "missed"):
            if getattr(self, name).shape != shape:
                raise ValueError(f"mask {name} shape mismatch")
        if self.next_intervals.shape != (shape[0],):
            raise ValueError("next_intervals must have one entry per region")
        if bool((self.next_intervals <= 0).any()):
            raise ValueError("next_intervals must be positive")
        if bool((self.written_back & self.uncorrectable).any()):
            raise ValueError("a line cannot be both written back and uncorrectable")


class ScrubPolicy(ABC):
    """Base class for scrub mechanisms.

    Subclasses implement :meth:`visit`.  The shared machinery here
    implements the observability rules (detector gating, decode failure)
    so that concrete policies only express their *decision* logic.
    """

    def __init__(self, scheme: EccScheme, interval: float):
        if interval <= 0:
            raise ValueError("scrub interval must be positive")
        self.scheme = scheme
        self.interval = interval
        #: Event sink for policy-level decisions (``interval_adapted``).
        #: The engine rebinds this to the run's tracer at construction;
        #: outside an engine it stays the no-op tracer.
        self.tracer: Tracer = NULL_TRACER

    @property
    def name(self) -> str:
        return type(self).__name__

    def initial_interval(self, region: int) -> float:
        """First-pass interval for ``region`` (static by default)."""
        return self.interval

    def fast_forward_interval(self, region: int) -> float | None:
        """Interval between zero-error visits, or ``None`` if ineligible.

        The fast-forward eligibility contract: a policy may return the
        interval it would schedule after an error-free pass over ``region``
        **only if** that pass is fully deterministic — the decision depends
        on nothing but the (all-zero) observed counts, draws no extra RNG,
        writes nothing back, and leaves the region's interval unchanged.
        The engine then folds runs of such visits into one bulk charge.
        Policies that cannot promise this (the default) return ``None``.
        """
        return None

    def batch_interval(self) -> float | None:
        """Uniform static interval for device-round batching, or ``None``.

        The batch engine's round-mode eligibility contract: a policy may
        return its interval **only if** every region's visit cadence is the
        same fixed value for the whole run — ``initial_interval(r)`` equals
        it for all ``r`` and every decision reschedules at it unchanged.
        The engine then replays whole device rounds (all regions, in the
        scheduler's stagger order) as single batched evaluations.  Policies
        that steer per-region intervals (the default) return ``None`` and
        are driven through per-tick scheduler cohorts instead.
        """
        return None

    # -- suspend/resume state --------------------------------------------------

    def state_dict(self) -> dict:
        """The policy's mutable per-run state, as JSON-clean values.

        The suspend/resume contract: together with
        :meth:`load_state_dict`, this must round-trip *everything* the
        policy mutates during a run, so a policy restored into a fresh
        object continues bit-identically.  Stateless policies (the
        default) have nothing to save.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this policy."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but was handed "
                f"snapshot state {sorted(state)}"
            )

    @abstractmethod
    def visit(
        self,
        time: float,
        region: int,
        error_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> VisitDecision:
        """Decide what happens to each line of ``region`` scanned at ``time``.

        ``error_counts`` are the ground-truth per-line totals (drift + hard);
        implementations must only act on them through the helpers below,
        which model what the hardware can actually observe.
        """

    def visit_batch(
        self,
        times: np.ndarray,
        regions: np.ndarray,
        error_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> BatchVisitDecision | None:
        """Decide a whole cohort of visits at once, or ``None`` to opt out.

        ``error_counts`` is ``(len(regions), region_size)``; row ``i`` is
        region ``regions[i]`` observed at ``times[i]``.  Opting in requires
        the RNG draw-order contract: any randomness must be drawn exactly
        as the scalar path would draw it for the cohort's visits processed
        in row order (one C-order array fill over the cohort satisfies
        this - ``Generator`` fills element-sequentially, so
        ``rng.random((R, S))`` is bitwise the R successive per-visit
        ``rng.random(S)`` draws).  Policies that return ``None`` (the
        default) are driven through :meth:`visit` row by row, which
        preserves the scalar draw order by construction.
        """
        return None

    # -- observability helpers -------------------------------------------------

    def _detect(
        self, error_counts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the lightweight detector.

        Returns ``(flagged, missed)``: lines the CRC flagged for decode, and
        erroneous lines the CRC failed to flag (aliasing), respectively.
        Schemes without a detector flag everything (decode-all).
        """
        has_error = error_counts > 0
        if not self.scheme.has_detector:
            return np.ones_like(has_error, dtype=bool), np.zeros_like(has_error)
        miss_probability = 2.0 ** (-self.scheme.detector_bits)
        missed = has_error & (rng.random(error_counts.shape[0]) < miss_probability)
        flagged = has_error & ~missed
        return flagged, missed

    def _detect_batch(
        self, error_counts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the detector to a ``(regions, region_size)`` cohort.

        One array fill covers the whole cohort; ``Generator.random`` fills
        C-order element-sequentially, so the draw for row ``i`` is bitwise
        the ``rng.random(region_size)`` the scalar :meth:`_detect` would
        make for that visit, in the same order.
        """
        has_error = error_counts > 0
        if not self.scheme.has_detector:
            return np.ones_like(has_error, dtype=bool), np.zeros_like(has_error)
        miss_probability = 2.0 ** (-self.scheme.detector_bits)
        missed = has_error & (rng.random(error_counts.shape) < miss_probability)
        flagged = has_error & ~missed
        return flagged, missed

    def _classify(
        self, error_counts: np.ndarray, decoded: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split decoded lines into correctable and uncorrectable."""
        uncorrectable = decoded & (error_counts > self.scheme.t)
        correctable = decoded & ~uncorrectable
        return correctable, uncorrectable
