"""Scrub scheduling: which region is scanned next, and when.

Memory is scrubbed region by region (a region is a bank or a fixed-size
chunk of lines); each region has its own next-visit time, seeded with
staggered phases so scrub traffic spreads evenly over the interval instead
of arriving as a burst.  Adaptive policies move individual regions' periods
around, so the scheduler is a priority queue rather than a fixed rotation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class ScheduledVisit:
    """One pending region scan."""

    time: float
    region: int


class ScrubScheduler:
    """Priority queue of per-region scrub visits.

    >>> sched = ScrubScheduler(num_regions=2, initial_intervals=[10.0, 10.0])
    >>> sched.pop().region
    0
    """

    def __init__(self, num_regions: int, initial_intervals: list[float]):
        if num_regions <= 0:
            raise ValueError("num_regions must be positive")
        if len(initial_intervals) != num_regions:
            raise ValueError("one initial interval per region required")
        self.num_regions = num_regions
        self._now = 0.0
        self._heap: list[ScheduledVisit] = []
        for region, interval in enumerate(initial_intervals):
            if interval <= 0:
                raise ValueError("intervals must be positive")
            # Stagger first visits across one interval so regions do not
            # all scan at once.
            phase = interval * (region + 1) / num_regions
            heapq.heappush(self._heap, ScheduledVisit(time=phase, region=region))

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> float:
        """Time of the next visit without removing it."""
        if not self._heap:
            raise IndexError("scheduler is empty")
        return self._heap[0].time

    @property
    def now(self) -> float:
        """Time of the most recently popped visit (0.0 before any pop)."""
        return self._now

    def pop(self) -> ScheduledVisit:
        """Remove and return the earliest pending visit."""
        if not self._heap:
            raise IndexError("scheduler is empty")
        visit = heapq.heappop(self._heap)
        self._now = visit.time
        return visit

    def push(self, time: float, region: int) -> None:
        """Schedule the next visit of ``region`` at absolute ``time``."""
        if not 0 <= region < self.num_regions:
            raise ValueError(f"region {region} out of range")
        heapq.heappush(self._heap, ScheduledVisit(time=time, region=region))

    def advance_to(self, time: float, region: int) -> None:
        """Reschedule ``region`` directly at ``time``, skipping ahead.

        The fast-forward entry point: where :meth:`push` schedules the next
        visit one interval out, ``advance_to`` jumps a region past a block
        of skipped visits.  Time must not run backwards relative to the
        most recently popped visit.
        """
        if not 0 <= region < self.num_regions:
            raise ValueError(f"region {region} out of range")
        if time < self._now:
            raise ValueError(
                f"cannot advance region {region} to {time} "
                f"before current time {self._now}"
            )
        heapq.heappush(self._heap, ScheduledVisit(time=time, region=region))

    # -- suspend/resume state ------------------------------------------------

    def state(self) -> dict:
        """The scheduler's complete mutable state, as plain values.

        ``(time, region)`` keys are unique (one pending visit per region),
        so the pop sequence is a function of the entry *set*, not of the
        heap's internal layout - a sorted entry list restores bit-identical
        pop order.
        """
        return {
            "now": self._now,
            "entries": sorted((visit.time, visit.region) for visit in self._heap),
        }

    @classmethod
    def from_state(cls, num_regions: int, state: dict) -> "ScrubScheduler":
        """Rebuild a scheduler from :meth:`state` output."""
        scheduler = cls.__new__(cls)
        scheduler.num_regions = num_regions
        scheduler._now = float(state["now"])
        heap = [
            ScheduledVisit(time=float(time), region=int(region))
            for time, region in state["entries"]
        ]
        heapq.heapify(heap)
        scheduler._heap = heap
        return scheduler
