"""Strong-ECC scrub: the paper's first mechanism.

Replacing SECDED with a multi-bit BCH code raises the number of drift
errors a line can absorb between scrub passes from 1 to ``t``, which drops
the uncorrectable-error probability by orders of magnitude at the same
scrub interval (a Binomial(cells, p) tail moves from P(k > 1) to
P(k > t)).  The costs are modest extra storage (10 check bits per corrected
error for 512-bit lines, versus SECDED's flat 64) and a more expensive
decoder - which the lightweight-detection mechanism then takes back off the
common path (:mod:`repro.core.light`).

The scrub *algorithm* here is unchanged from the baseline: decode every
line, write back on any error.  Only the code is stronger; later mechanisms
change the algorithm.
"""

from __future__ import annotations

from ..ecc.schemes import scheme_for_strength
from .threshold import ThresholdScrubPolicy


def strong_ecc_scrub(interval: float, strength: int = 4) -> ThresholdScrubPolicy:
    """Baseline scrub algorithm with a BCH-``strength`` code.

    >>> strong_ecc_scrub(3600.0, strength=8).scheme.t
    8
    """
    return ThresholdScrubPolicy(
        scheme_for_strength(strength, with_detector=False),
        interval,
        threshold=1,
        label=f"strong(bch{strength})",
    )
