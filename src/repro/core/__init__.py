"""Scrub mechanisms - the paper's primary contribution.

A scrub mechanism is a :class:`~repro.core.policy.ScrubPolicy`: it owns an
ECC scheme, decides per scrub visit which lines engage the decoder and which
get written back, and controls the (possibly adaptive, per-region) scrub
interval.  The simulation engines apply its decisions to the device state
and charge the energy ledger.

Concrete mechanisms, in the order the paper develops them:

* :func:`~repro.core.basic.basic_scrub` - the DRAM-style baseline: SECDED,
  decode every line, write back any line with a correctable error.
* :func:`~repro.core.strong.strong_ecc_scrub` - same algorithm with a
  multi-bit BCH code.
* :func:`~repro.core.light.light_scrub` - gate the decoder behind a
  lightweight CRC detection check.
* :func:`~repro.core.threshold.threshold_scrub` - defer write-back until
  the accumulated error count approaches the correction limit.
* :func:`~repro.core.adaptive.adaptive_scrub` - adapt per-region scrub
  intervals to observed error pressure (soft/hard trade-off).
* :func:`~repro.core.combined.combined_scrub` - all mechanisms together;
  the configuration behind the abstract's headline numbers.
"""

from __future__ import annotations

from .policy import ScrubPolicy, VisitDecision
from .stats import ScrubStats
from .basic import basic_scrub
from .strong import strong_ecc_scrub
from .light import light_scrub
from .threshold import partial_scrub, threshold_scrub
from .adaptive import adaptive_scrub, AdaptiveIntervalController
from .combined import combined_scrub
from .budgeted import budgeted_scrub, interval_for_budget, reliability_at_budget
from .scheduler import ScrubScheduler

__all__ = [
    "AdaptiveIntervalController",
    "ScrubPolicy",
    "ScrubScheduler",
    "ScrubStats",
    "VisitDecision",
    "adaptive_scrub",
    "basic_scrub",
    "budgeted_scrub",
    "combined_scrub",
    "interval_for_budget",
    "light_scrub",
    "partial_scrub",
    "reliability_at_budget",
    "strong_ecc_scrub",
    "threshold_scrub",
]
