"""Lightweight-detection scrub: keep the decoder off the common path.

Almost every line a scrub pass reads is error-free, yet the baseline
algorithm runs the full ECC decoder on all of them - and multi-bit BCH
decoding is exactly the operation the strong-ECC mechanism made expensive.
The paper's fix is a cheap error-*detection* code (a per-line CRC checked
by an XOR tree in a few gate delays): scrub reads the line, verifies the
CRC, and engages the BCH decoder only on mismatch.

Error-free lines - the overwhelming majority - now cost one array read plus
a near-free checksum compare.  The residual risk is CRC aliasing (a true
error pattern whose CRC matches), with probability 2^-width per erroneous
line; missed lines are simply caught on a later pass, and the engines model
the miss explicitly.
"""

from __future__ import annotations

from ..ecc.schemes import scheme_for_strength
from .threshold import ThresholdScrubPolicy


def light_scrub(interval: float, strength: int = 4) -> ThresholdScrubPolicy:
    """Strong-ECC scrub with CRC-gated decoding, immediate write-back.

    >>> light_scrub(3600.0).scheme.has_detector
    True
    """
    return ThresholdScrubPolicy(
        scheme_for_strength(strength, with_detector=True),
        interval,
        threshold=1,
        label=f"light(bch{strength}+crc)",
    )
