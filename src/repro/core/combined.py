"""The combined mechanism - the abstract's headline configuration.

All three proposals stacked:

* **strong ECC** (BCH-8 by default) for orders-of-magnitude more drift
  tolerance per line than SECDED,
* **lightweight detection** so the expensive decoder runs only on the rare
  lines that actually contain errors,
* **threshold write-back + adaptive intervals** so the even more expensive
  write-backs happen only when a line nears the correction limit, at a rate
  each region individually needs.

Relative to :func:`repro.core.basic.basic_scrub` the abstract reports a
96.5 % reduction in uncorrectable errors, a 24.4x reduction in scrub-related
writes, and a 37.8 % reduction in scrub energy; experiment E9 regenerates
this comparison.
"""

from __future__ import annotations

from ..ecc.schemes import scheme_for_strength
from .adaptive import AdaptiveIntervalController, AdaptiveScrubPolicy


def combined_scrub(
    interval: float,
    strength: int = 8,
    threshold: int | None = None,
    min_interval: float | None = None,
    max_interval: float | None = None,
) -> AdaptiveScrubPolicy:
    """Strong ECC + CRC detection + threshold write-back + adaptive rate.

    ``threshold`` defaults to ``t - 2``: write back with two errors of slack
    so that a between-pass burst rarely reaches the correction limit even
    when a region's interval has been relaxed.

    >>> policy = combined_scrub(3600.0)
    >>> policy.scheme.name
    'bch8+crc'
    """
    scheme = scheme_for_strength(strength, with_detector=True)
    if threshold is None:
        threshold = max(1, scheme.t - 2)
    controller = AdaptiveIntervalController(
        base_interval=interval,
        min_interval=interval / 4 if min_interval is None else min_interval,
        max_interval=interval * 16 if max_interval is None else max_interval,
    )
    return AdaptiveScrubPolicy(
        scheme,
        controller,
        threshold=threshold,
        label=f"combined(t={scheme.t},theta={threshold})",
    )
