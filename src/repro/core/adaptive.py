"""Adaptive-interval scrub: trading soft errors against hard errors.

Scrubbing faster catches drift errors earlier (fewer uncorrectable errors,
i.e. fewer *soft*-error escapes) but performs more write-backs, and every
write-back burns one endurance cycle of every cell in the line - converting
scrub aggressiveness into *hard* errors years down the road.  The right
rate also varies across memory: write-hot regions get their drift clocks
reset by demand traffic for free, while cold regions accumulate errors for
the scrubber alone to find.

The adaptive mechanism gives each region its own interval, steered by what
scrub passes actually observe, AIMD-style:

* **panic** - any line at or above ``panic_fraction * t`` errors halves the
  region's interval (multiplicative decrease: the region is one burst away
  from an uncorrectable error);
* **relax** - a pass whose worst line stays below ``relax_fraction * t``
  lengthens the interval by ``relax_factor`` (additive-ish increase: the
  region is over-scrubbed and write wear is being wasted).

Intervals are clamped to ``[min_interval, max_interval]``.
"""

from __future__ import annotations

import numpy as np

from ..ecc.schemes import EccScheme, scheme_for_strength
from .policy import ScrubPolicy, VisitDecision


class AdaptiveIntervalController:
    """Per-region AIMD interval state, usable by any policy."""

    def __init__(
        self,
        base_interval: float,
        min_interval: float,
        max_interval: float,
        panic_divisor: float = 2.0,
        relax_factor: float = 1.25,
    ):
        if not 0 < min_interval <= base_interval <= max_interval:
            raise ValueError(
                "need 0 < min_interval <= base_interval <= max_interval"
            )
        if panic_divisor <= 1.0:
            raise ValueError("panic_divisor must exceed 1")
        if relax_factor <= 1.0:
            raise ValueError("relax_factor must exceed 1")
        self.base_interval = base_interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.panic_divisor = panic_divisor
        self.relax_factor = relax_factor
        self._intervals: dict[int, float] = {}

    def interval(self, region: int) -> float:
        return self._intervals.get(region, self.base_interval)

    def panic(self, region: int) -> float:
        """Multiplicative decrease; returns the new interval."""
        new = max(self.min_interval, self.interval(region) / self.panic_divisor)
        self._intervals[region] = new
        return new

    def relax(self, region: int) -> float:
        """Gentle increase; returns the new interval."""
        new = min(self.max_interval, self.interval(region) * self.relax_factor)
        self._intervals[region] = new
        return new

    def hold(self, region: int) -> float:
        """No change; returns the current interval."""
        return self.interval(region)


class AdaptiveScrubPolicy(ScrubPolicy):
    """Threshold write-back plus AIMD per-region intervals.

    Parameters
    ----------
    scheme, threshold:
        As in :class:`repro.core.threshold.ThresholdScrubPolicy`.
    controller:
        Interval state shared across visits.
    panic_level:
        Worst observed per-line error count at which the region's interval
        is halved.  Defaults to the correction strength ``t``: a line that
        reached the limit within one interval was one error from being
        lost, so the interval was too long.  Must exceed ``threshold`` -
        counts up to the write-back threshold are routine, not alarming.
    relax_level:
        Worst observed count at or below which the interval is lengthened.
        Defaults to ``threshold - 1``: the pass wrote nothing back, so the
        region is over-scrubbed (typical for write-hot regions whose drift
        clocks demand traffic resets for free).
    """

    def __init__(
        self,
        scheme: EccScheme,
        controller: AdaptiveIntervalController,
        threshold: int = 1,
        panic_level: int | None = None,
        relax_level: int | None = None,
        label: str | None = None,
    ):
        super().__init__(scheme, controller.base_interval)
        if not 1 <= threshold <= scheme.t:
            raise ValueError(f"threshold must be in [1, t={scheme.t}]")
        self.controller = controller
        self.threshold = threshold
        self.panic_level = scheme.t if panic_level is None else panic_level
        self.relax_level = threshold - 1 if relax_level is None else relax_level
        if not self.relax_level < self.panic_level:
            raise ValueError("relax_level must be below panic_level")
        if self.panic_level <= threshold:
            raise ValueError(
                "panic_level must exceed the write-back threshold; counts up "
                "to the threshold occur on every pass by design"
            )
        self._label = label

    @property
    def name(self) -> str:
        return self._label if self._label else type(self).__name__

    def initial_interval(self, region: int) -> float:
        return self.controller.interval(region)

    def state_dict(self) -> dict:
        # The AIMD controller's per-region intervals are the only state
        # this policy mutates during a run.  JSON round-trips finite
        # floats exactly, so restored intervals are bitwise the saved ones.
        return {
            "intervals": {
                str(region): interval
                for region, interval in self.controller._intervals.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self.controller._intervals = {
            int(region): float(interval)
            for region, interval in state.get("intervals", {}).items()
        }

    def fast_forward_interval(self, region: int) -> float | None:
        """Opt in only where a zero-error pass cannot move the interval.

        A zero-error visit observes ``worst == 0``.  That relaxes the
        region (or holds it when ``relax_level < 0``); the interval is
        provably unchanged in exactly two situations:

        * the region is already clamped at ``max_interval`` — relax is a
          no-op there, or
        * ``relax_level < 0`` — zero errors take the hold branch.

        Anywhere else the zero-error visit *grows* the interval, so the
        region is not fast-forwardable until the relax ladder tops out.
        (Skipped visits also skip their ``interval_adapted`` relax trace
        events; stats and state are untouched either way.)
        """
        current = self.controller.interval(region)
        if self.relax_level < 0 or current == self.controller.max_interval:
            return current
        return None

    def visit(
        self,
        time: float,
        region: int,
        error_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> VisitDecision:
        flagged, missed = self._detect(error_counts, rng)
        decoded = flagged
        correctable, uncorrectable = self._classify(error_counts, decoded)
        written_back = correctable & (error_counts >= self.threshold)

        # Steer the region's interval from what the decoder revealed.  A
        # detector-gated pass still learns the worst decoded count, which is
        # the worst count overall except for the (rare) missed lines.
        observed = error_counts[decoded]
        worst = int(observed.max()) if observed.size else 0
        if worst >= self.panic_level or bool(uncorrectable.any()):
            next_interval = self.controller.panic(region)
            action = "panic"
        elif worst <= self.relax_level:
            next_interval = self.controller.relax(region)
            action = "relax"
        else:
            next_interval = self.controller.hold(region)
            action = None
        if action is not None and self.tracer.enabled:
            self.tracer.emit(
                "interval_adapted",
                time,
                region=region,
                action=action,
                interval=float(next_interval),
                worst=worst,
            )

        return VisitDecision(
            decoded=decoded,
            written_back=written_back,
            uncorrectable=uncorrectable,
            missed=missed,
            next_interval=next_interval,
        )


def adaptive_scrub(
    interval: float,
    strength: int = 4,
    threshold: int | None = None,
    min_interval: float | None = None,
    max_interval: float | None = None,
) -> AdaptiveScrubPolicy:
    """The paper's adaptive mechanism with sensible interval bounds.

    The default bounds are asymmetric - panic can tighten the interval by at
    most 4x (bounding worst-case scrub bandwidth), while relax can stretch
    it 16x (write-hot regions genuinely need almost no scrubbing).  The
    default threshold leaves two errors of slack below the correction
    limit so the panic signal (a line *at* the limit) stays rare.
    """
    scheme = scheme_for_strength(strength, with_detector=True)
    if threshold is None:
        threshold = max(1, scheme.t - 2)
    controller = AdaptiveIntervalController(
        base_interval=interval,
        min_interval=interval / 4 if min_interval is None else min_interval,
        max_interval=interval * 16 if max_interval is None else max_interval,
    )
    return AdaptiveScrubPolicy(
        scheme,
        controller,
        threshold=threshold,
        label=f"adaptive(t={scheme.t},theta={threshold})",
    )
