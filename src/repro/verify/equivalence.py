"""Statistical cross-validation of the Monte-Carlo engine against models.

The repository carries three independent implementations of the same
physics: the Monte-Carlo engine (:mod:`repro.sim.population`), the
closed-form single-visit model (:class:`repro.sim.analytic.AnalyticModel`),
and the steady-state renewal solver (:class:`repro.sim.renewal.RenewalModel`).
This module runs the engine over a configuration grid and checks that its
counts land inside statistically principled bands around each model's
prediction.

Two regimes, because the models answer different questions:

* **Single visit** (``analytic_equivalence``).  Scrub policies do not
  rewrite error-free lines, so per-visit independence only holds on a
  fresh population.  We therefore run exactly one scrub pass (single
  region, horizon just past one interval) and compare the uncorrectable
  count against ``N x line_failure_probability(T, t)``.  The UE count is
  a sum of N i.i.d. Bernoulli trials with small p, so the exact Garwood
  Poisson interval on the observed count must cover the expectation.

* **Finite horizon** (``renewal_equivalence``).  Multi-visit dynamics -
  lines accumulating errors across visits until a threshold write-back
  or a UE resets them - are exactly a renewal process when the policy is
  a pure threshold rule with no detector, no demand traffic, and no
  endurance.  We compare horizon totals for uncorrectables *and* scrub
  write-backs against the *exact* finite-horizon expectation from
  :meth:`repro.sim.renewal.RenewalModel.finite_horizon`, which resolves
  the discrete renewal recursion over aligned visits instead of
  approximating by ``rate x horizon`` (that approximation carries up to
  half a renewal cycle of bias per line and used to force a 12% floor on
  the band).  With the transient gone the only residual is sampling
  noise, so the band is the pure relative ladder ``z / sqrt(expected)``
  (see :data:`RENEWAL_REL_Z`): UEs are rare per line and Poisson-like,
  and write-back counts are renewal counts whose cycle-length dispersion
  is sub-Poisson, so Poisson width bounds both.

Both grids reuse the run pipeline end-to-end (``run_many``), so an
equivalence pass also exercises the process-pool path, the distribution
cache, and the stats ledger the invariant checker audits.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from .. import units
from ..analysis.stats import poisson_interval
from ..sim.analytic import AnalyticModel
from ..sim.config import SimulationConfig
from ..sim.parallel import RunSpec, run_many
from ..sim.renewal import RenewalModel
from ..sim.runner import crossing_distribution_for

#: Sampling multiplier for the renewal band: ``z / sqrt(expected)`` is a
#: z-sigma Poisson interval in relative terms.  The expectation is the
#: exact finite-horizon renewal solution, so no transient floor is needed
#: - the band is pure sampling width (4 sigma keeps the family-wise false
#: alarm rate across the grid's 18 comparisons well under 0.1%, while a
#: broken threshold rule shifts counts by 2x or more).
RENEWAL_REL_Z = 4.0

#: Relative-error floor for the batch-vs-scalar comparison.  The two runs
#: share a seed but the batch engine consumes the workload and population
#: streams in a different order (see :mod:`repro.sim.batch`), so they are
#: effectively two independent samples of the same process: the paired
#: difference scales like ``sqrt(2)`` of one run's sampling noise plus a
#: small trajectory-divergence term.  Measured slack on the default grid
#: is under 7%; 10% keeps headroom without admitting real regressions.
BATCH_REL_FLOOR = 0.10

#: Sampling multiplier for the batch ladder: ``z * sqrt(2 / expected)``
#: is a z-sigma band on the difference of two independent Poisson-like
#: counts of the same mean, in relative terms.
BATCH_REL_Z = 4.0

#: Relative tolerance for the batched renewal kernel against the scalar
#: recursion.  Both paths perform the same float operations in the same
#: order per device up to numpy-vs-libm transcendental rounding (log/exp
#: differ by <= 1 ulp) and dot-product summation order, so the observed
#: divergence is ~1e-15; 1e-9 leaves six orders of headroom while still
#: failing loudly on any real algorithmic drift.
SURROGATE_REL_TOL = 1e-9


@dataclass(frozen=True)
class EquivalenceRow:
    """One grid point x metric comparison."""

    #: Which cross-check produced the row (``analytic`` or ``renewal``).
    check: str
    #: Human-readable grid point, e.g. ``"T=4.0h t=3"``.
    label: str
    #: Ledger metric compared (``uncorrectable`` or ``scrub_writes``).
    metric: str
    #: Monte-Carlo count.
    observed: float
    #: Model prediction.
    expected: float
    #: Acceptance band (inclusive).
    low: float
    high: float
    passed: bool

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "label": self.label,
            "metric": self.metric,
            "observed": self.observed,
            "expected": self.expected,
            "low": self.low,
            "high": self.high,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class EquivalenceReport:
    """All rows from one cross-validation sweep."""

    rows: tuple[EquivalenceRow, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(row.passed for row in self.rows)

    @property
    def failures(self) -> tuple[EquivalenceRow, ...]:
        return tuple(row for row in self.rows if not row.passed)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "rows": [row.to_dict() for row in self.rows],
        }


def analytic_grid(quick: bool = False) -> list[tuple[float, int]]:
    """(interval, ECC strength) points for the single-visit comparison.

    Chosen so expected UE counts span roughly 10 to 5000 at the default
    population - enough mass for tight Poisson bands at the top and a
    meaningful zero-inflation check at the bottom.
    """
    intervals = [4 * units.HOUR, 8 * units.HOUR, 12 * units.HOUR]
    strengths = [2, 3, 4]
    if quick:
        intervals = intervals[1:]
        strengths = strengths[:2]
    return [(interval, t) for interval in intervals for t in strengths]


def renewal_grid(quick: bool = False) -> list[tuple[float, int]]:
    """(interval, ECC strength) points for the steady-state comparison."""
    intervals = [2 * units.HOUR, 3 * units.HOUR, 4 * units.HOUR]
    strengths = [3, 4, 6]
    if quick:
        intervals = intervals[:2]
        strengths = strengths[:2]
    return [(interval, t) for interval in intervals for t in strengths]


def _single_visit_config(
    interval: float, num_lines: int, seed: int
) -> SimulationConfig:
    """Exactly one scrub visit per line: single region, horizon 1.5T.

    With one region the scheduler fires at ``k x interval`` exactly, so a
    horizon of 1.5 intervals contains the first full pass and nothing
    else, and no float boundary ties arise.
    """
    return SimulationConfig(
        num_lines=num_lines,
        region_size=num_lines,
        horizon=1.5 * interval,
        seed=seed,
        endurance=None,
    )


def analytic_equivalence(
    seed: int = 2012,
    jobs: int = 1,
    quick: bool = False,
    confidence: float = 0.9999,
) -> EquivalenceReport:
    """MC single-visit UE counts vs the closed-form analytic model.

    The acceptance band is the exact Poisson interval on the *observed*
    count at a very high confidence (a sweep is many simultaneous tests;
    the default keeps the family-wise false-alarm rate well under 1%),
    and passing requires it to cover the model's expectation.
    """
    grid = analytic_grid(quick)
    num_lines = 4096 if quick else 16384
    specs = [
        RunSpec(
            policy="threshold",
            config=_single_visit_config(interval, num_lines, seed),
            policy_kwargs={
                "interval": interval,
                "strength": t,
                "threshold": 1,
                "with_detector": False,
            },
        )
        for interval, t in grid
    ]
    results = run_many(specs, jobs=jobs)

    rows = []
    for (interval, t), result in zip(grid, results):
        model = AnalyticModel(
            crossing_distribution_for(result.config),
            result.config.cells_per_line,
        )
        expected = float(num_lines * model.line_failure_probability(interval, t))
        observed = float(result.stats.uncorrectable)
        low, high = poisson_interval(result.stats.uncorrectable, confidence)
        rows.append(
            EquivalenceRow(
                check="analytic",
                label=f"T={interval / units.HOUR:g}h t={t}",
                metric="uncorrectable",
                observed=observed,
                expected=expected,
                low=low,
                high=high,
                passed=bool(low <= expected <= high),
            )
        )
    return EquivalenceReport(rows=tuple(rows))


def _relative_band(expected: float) -> tuple[float, float]:
    """Pure-Poisson relative band ``expected * (1 +- z / sqrt(expected))``."""
    if expected <= 0.0:
        return 0.0, 0.0
    rel = RENEWAL_REL_Z / math.sqrt(expected)
    return expected * (1.0 - rel), expected * (1.0 + rel)


def renewal_equivalence(
    seed: int = 2012,
    jobs: int = 1,
    quick: bool = False,
) -> EquivalenceReport:
    """MC horizon totals vs the exact finite-horizon renewal solution.

    Checks uncorrectables and scrub write-backs at every grid point with
    threshold ``theta = t - 1`` (write back just before the correction
    budget is exhausted - the regime the paper's threshold mechanism
    targets).
    """
    grid = renewal_grid(quick)
    num_lines = 4096 if quick else 8192
    horizon = (7 if quick else 14) * units.DAY
    specs = [
        RunSpec(
            policy="threshold",
            config=SimulationConfig(
                num_lines=num_lines,
                region_size=num_lines,
                horizon=horizon,
                seed=seed,
                endurance=None,
            ),
            policy_kwargs={
                "interval": interval,
                "strength": t,
                "threshold": t - 1,
                "with_detector": False,
            },
        )
        for interval, t in grid
    ]
    results = run_many(specs, jobs=jobs)

    rows = []
    for (interval, t), result in zip(grid, results):
        solver = RenewalModel(
            crossing_distribution_for(result.config),
            result.config.cells_per_line,
        )
        solution = solver.finite_horizon(
            interval, t_ecc=t, threshold=t - 1, horizon=horizon
        )
        label = f"T={interval / units.HOUR:g}h t={t}"
        for metric, observed, per_line in (
            ("uncorrectable", float(result.stats.uncorrectable), solution.expected_ue),
            ("scrub_writes", float(result.stats.scrub_writes), solution.expected_writes),
        ):
            expected = float(per_line * num_lines)
            low, high = _relative_band(expected)
            rows.append(
                EquivalenceRow(
                    check="renewal",
                    label=label,
                    metric=metric,
                    observed=observed,
                    expected=expected,
                    low=low,
                    high=high,
                    passed=bool(low <= observed <= high),
                )
            )
    return EquivalenceReport(rows=tuple(rows))


def _batch_band(expected: float) -> tuple[float, float]:
    """Acceptance band for batch-vs-scalar around the scalar count."""
    if expected <= 0.0:
        return 0.0, 0.0
    rel = max(BATCH_REL_FLOOR, BATCH_REL_Z * math.sqrt(2.0 / expected))
    return expected * (1.0 - rel), expected * (1.0 + rel)


def batch_equivalence(
    seed: int = 2012,
    jobs: int = 1,
    quick: bool = False,
) -> EquivalenceReport:
    """Batch-engine totals vs the scalar engine outside the identity domain.

    The one regime where the batch engine is *not* bit-identical to the
    scalar reference: a multi-region device under demand traffic in round
    mode, where batching the round's Poisson demand into single fills
    reorders the workload and population streams (the ``batch_identity``
    metamorphic law pins every other regime exactly).  Both engines run
    the same seeded configuration; the scalar totals serve as the
    expectation and the batch totals must land inside the relative ladder
    ``max(floor, z * sqrt(2 / expected))`` for uncorrectables and scrub
    write-backs (see :data:`BATCH_REL_FLOOR`).
    """
    from ..workloads.generators import uniform_rates

    intervals = [2 * units.HOUR, 4 * units.HOUR]
    if quick:
        intervals = intervals[:1]
    num_lines = 2048 if quick else 8192
    horizon = (3 if quick else 7) * units.DAY
    specs = []
    for interval in intervals:
        for engine in ("scalar", "batch"):
            specs.append(
                RunSpec(
                    policy="threshold",
                    config=SimulationConfig(
                        num_lines=num_lines,
                        region_size=num_lines // 8,
                        horizon=horizon,
                        seed=seed,
                        endurance=None,
                        engine=engine,
                    ),
                    policy_kwargs={"interval": interval, "strength": 3},
                    rates=uniform_rates(
                        num_lines,
                        total_write_rate=num_lines * 2.0 / units.DAY,
                    ),
                )
            )
    results = run_many(specs, jobs=jobs)

    rows = []
    for i, interval in enumerate(intervals):
        scalar, batch = results[2 * i], results[2 * i + 1]
        label = f"T={interval / units.HOUR:g}h multi-busy"
        for metric in ("uncorrectable", "scrub_writes"):
            expected = float(getattr(scalar.stats, metric))
            observed = float(getattr(batch.stats, metric))
            low, high = _batch_band(expected)
            rows.append(
                EquivalenceRow(
                    check="batch_vs_scalar",
                    label=label,
                    metric=metric,
                    observed=observed,
                    expected=expected,
                    low=low,
                    high=high,
                    passed=bool(low <= observed <= high),
                )
            )
    return EquivalenceReport(rows=tuple(rows))


def _relative_gap(a: float, b: float) -> float:
    """|a - b| relative to the reference magnitude (absolute near zero)."""
    scale = max(abs(b), 1.0e-300)
    return abs(a - b) / scale if abs(b) > 1e-30 else abs(a - b)


def surrogate_equivalence(
    seed: int = 2012,
    jobs: int = 1,
    quick: bool = False,
) -> EquivalenceReport:
    """Batched renewal kernel vs the scalar recursion oracle.

    Two layers, no Monte Carlo in either:

    * **Kernel grid** - :func:`repro.sim.renewal_batch.finite_horizon_batch`
      against per-point :meth:`RenewalModel.finite_horizon` over an
      (interval, strength) x temperature grid, all points in one batched
      call so grouping, memo dedup, and zero-padding are exercised.  Each
      expectation must agree within :data:`SURROGATE_REL_TOL` relative.
    * **Fleet screen** - :func:`repro.screen.planner.plan_screen` with
      ``batch=True`` (and the ``jobs`` fan-out) against ``batch=False``
      on an in-regime three-lot fleet: classifications must match
      *exactly* (zero mismatches), surrogate expectations within the same
      tolerance.

    The expectation of every row is 0 observed divergence with the band
    ``[0, tol]`` (``[0, 0]`` for the classification row), so the rows
    render in the standard equivalence table.
    """
    from ..fleet.spec import Lot, LotParameter
    from ..screen.planner import ScreenConstraints, plan_screen
    from ..sim.config import SimulationConfig
    from ..sim.renewal_batch import RenewalTask, finite_horizon_batch
    from ..fleet.report import FIT_HOURS
    from ..fleet.spec import FleetSpec

    metrics = ("expected_ue", "expected_writes", "no_ue_probability")

    # -- kernel grid ---------------------------------------------------------
    horizon = (3 if quick else 7) * units.DAY
    points = [(2 * units.HOUR, 3), (4 * units.HOUR, 4)]
    temperatures = [300.0, 330.0] if quick else [300.0, 330.0, 350.0]
    config = SimulationConfig(num_lines=64, region_size=64, horizon=horizon,
                              seed=seed, endurance=None)
    grid = []
    for temperature_k in temperatures:
        point_config = dataclasses.replace(config, temperature_k=temperature_k)
        distribution = crossing_distribution_for(point_config)
        for interval, t in points:
            grid.append((temperature_k, interval, t, distribution))
    tasks = [
        RenewalTask(
            distribution=distribution,
            cells_per_line=config.cells_per_line,
            interval=interval,
            t_ecc=t,
            threshold=t - 1,
        )
        for _, interval, t, distribution in grid
    ]
    batched = finite_horizon_batch(tasks, horizon)
    rows = []
    worst: dict[str, float] = {metric: 0.0 for metric in metrics}
    for (temperature_k, interval, t, distribution), batch_solution in zip(
        grid, batched
    ):
        scalar_solution = RenewalModel(
            distribution, config.cells_per_line
        ).finite_horizon(interval, t_ecc=t, threshold=t - 1, horizon=horizon)
        if batch_solution.visits != scalar_solution.visits:
            worst = {metric: float("inf") for metric in metrics}
            break
        for metric in metrics:
            worst[metric] = max(
                worst[metric],
                _relative_gap(
                    getattr(batch_solution, metric),
                    getattr(scalar_solution, metric),
                ),
            )
    for metric in metrics:
        rows.append(
            EquivalenceRow(
                check="surrogate_batch",
                label=f"kernel {len(tasks)}pt",
                metric=metric,
                observed=worst[metric],
                expected=0.0,
                low=0.0,
                high=SURROGATE_REL_TOL,
                passed=bool(worst[metric] <= SURROGATE_REL_TOL),
            )
        )

    # -- fleet screen --------------------------------------------------------
    spec = FleetSpec(
        name="surrogate-equivalence",
        devices=8 if quick else 16,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 3,
            "threshold": 2,
            "with_detector": False,
        },
        base_config=SimulationConfig(
            num_lines=64, region_size=64, horizon=units.DAY, seed=seed,
            endurance=None,
        ),
        lots=(
            Lot(name="cool", weight=5, temperature_k=LotParameter(300.0, 0.0)),
            Lot(name="hot", weight=2, temperature_k=LotParameter(316.0, 0.0)),
            Lot(name="recalled", weight=1,
                temperature_k=LotParameter(350.0, 0.0)),
        ),
    )
    horizon_hours = spec.base_config.horizon / units.HOUR
    constraints = ScreenConstraints(
        fit_limit=5.0 * FIT_HOURS * spec.capacity_scale / horizon_hours,
    )
    plan_batch = plan_screen(spec, constraints, jobs=jobs)
    plan_scalar = plan_screen(spec, constraints, batch=False)
    mismatches = sum(
        1
        for a, b in zip(plan_batch.decisions, plan_scalar.decisions)
        if a.classification != b.classification or a.reasons != b.reasons
    )
    rows.append(
        EquivalenceRow(
            check="surrogate_batch",
            label=f"screen {spec.devices}dev",
            metric="classification_mismatches",
            observed=float(mismatches),
            expected=0.0,
            low=0.0,
            high=0.0,
            passed=bool(mismatches == 0),
        )
    )
    screen_worst = {metric: 0.0 for metric in metrics}
    for a, b in zip(plan_batch.decisions, plan_scalar.decisions):
        if a.expected_ue is None or b.expected_ue is None:
            continue
        for metric in metrics:
            screen_worst[metric] = max(
                screen_worst[metric],
                _relative_gap(getattr(a, metric), getattr(b, metric)),
            )
    for metric in metrics:
        rows.append(
            EquivalenceRow(
                check="surrogate_batch",
                label=f"screen {spec.devices}dev",
                metric=metric,
                observed=screen_worst[metric],
                expected=0.0,
                low=0.0,
                high=SURROGATE_REL_TOL,
                passed=bool(screen_worst[metric] <= SURROGATE_REL_TOL),
            )
        )
    return EquivalenceReport(rows=tuple(rows))


def run_equivalence(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> EquivalenceReport:
    """All cross-checks, merged into one report."""
    analytic = analytic_equivalence(seed=seed, jobs=jobs, quick=quick)
    renewal = renewal_equivalence(seed=seed, jobs=jobs, quick=quick)
    batch = batch_equivalence(seed=seed, jobs=jobs, quick=quick)
    surrogate = surrogate_equivalence(seed=seed, jobs=jobs, quick=quick)
    return EquivalenceReport(
        rows=analytic.rows + renewal.rows + batch.rows + surrogate.rows
    )
