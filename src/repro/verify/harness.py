"""The ``repro verify`` harness: all three verification pillars in one run.

The harness composes:

1. an **invariant sweep** - full simulations over a deliberately diverse
   set of configurations (every policy family, demand traffic, partial
   write-back, retirement with spares, read-triggered refresh) with
   :class:`repro.verify.invariants.InvariantChecker` armed, so every
   conservation law is audited on every code path;
2. the **metamorphic property suite** (:mod:`repro.verify.metamorphic`);
3. the **statistical cross-validation** of the Monte-Carlo engine against
   the analytic and renewal models (:mod:`repro.verify.equivalence`).

:func:`run_verification` returns a :class:`VerifyReport` that the CLI
renders as tables and JSON; ``passed`` is the single bit CI gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import units
from ..core import (
    adaptive_scrub,
    basic_scrub,
    combined_scrub,
    light_scrub,
    partial_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from ..params import EnduranceSpec
from ..sim.config import SimulationConfig
from ..sim.parallel import parallel_map
from ..sim.runner import crossing_distribution_for, run_experiment
from ..workloads import uniform_rates
from .bitexact import run_checked as run_bitexact_checked
from .config import VerifyConfig
from .equivalence import EquivalenceReport, run_equivalence
from .invariants import InvariantViolation
from .metamorphic import MetamorphicReport, run_metamorphic


@dataclass(frozen=True)
class InvariantCase:
    """One configuration of the invariant sweep and its outcome."""

    name: str
    passed: bool
    #: Structured violation payload when the case failed, else ``None``.
    violation: dict | None = None
    #: Headline counters for the report (visits / uncorrectables).
    visits: int = 0
    uncorrectable: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "violation": self.violation,
            "visits": self.visits,
            "uncorrectable": self.uncorrectable,
        }


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of the invariant sweep."""

    cases: tuple[InvariantCase, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(case.passed for case in self.cases)

    @property
    def failures(self) -> tuple[InvariantCase, ...]:
        return tuple(case for case in self.cases if not case.passed)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "cases": [case.to_dict() for case in self.cases],
        }


@dataclass(frozen=True)
class VerifyReport:
    """Everything ``repro verify`` produced."""

    invariants: InvariantReport
    metamorphic: MetamorphicReport
    equivalence: EquivalenceReport

    @property
    def passed(self) -> bool:
        return (
            self.invariants.passed
            and self.metamorphic.passed
            and self.equivalence.passed
        )

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "invariants": self.invariants.to_dict(),
            "metamorphic": self.metamorphic.to_dict(),
            "equivalence": self.equivalence.to_dict(),
        }


def invariant_cases(
    seed: int = 2012, quick: bool = False
) -> list[tuple[str, object, SimulationConfig, object]]:
    """(name, policy, config, rates) tuples covering every engine path.

    Each case exists to drive a distinct ledger flow: the detector-less
    strong-ECC path, the partial write-back accounting, demand traffic
    through the adaptive controller, retirement drawing on the spare
    pool under a deliberately weak endurance spec, and read-triggered
    refresh bypassing the policy decision entirely.
    """
    base = SimulationConfig(
        num_lines=1024 if quick else 2048,
        region_size=512,
        horizon=(2 if quick else 3) * units.DAY,
        seed=seed,
        verify=VerifyConfig(invariants=True),
    )
    wl = uniform_rates(num_lines=base.num_lines, total_write_rate=5.0)
    interval = 2 * units.HOUR
    cases: list[tuple[str, object, SimulationConfig, object]] = [
        ("basic", basic_scrub(interval=interval), base, None),
        ("threshold", threshold_scrub(interval=interval), base, None),
        ("strong_ecc", strong_ecc_scrub(interval=2 * interval), base, None),
        ("partial", partial_scrub(interval=interval), base, None),
        ("light", light_scrub(interval=interval), base, None),
        ("adaptive+demand", adaptive_scrub(interval=interval), base, wl),
        ("combined+demand", combined_scrub(interval=interval), base, wl),
        (
            # Deliberately weak endurance + rewrite-everything policy so
            # retirements actually happen and the spare-pool identities
            # (and refusal counting past exhaustion) are live, not vacuous.
            "retire+spares",
            basic_scrub(interval=interval),
            replace(
                base,
                retire_hard_limit=2,
                spares_per_region=8,
                endurance=EnduranceSpec(mean_writes=20.0),
            ),
            None,
        ),
        (
            "read_refresh",
            threshold_scrub(interval=2 * interval),
            replace(base, read_refresh=True),
            wl,
        ),
    ]
    if quick:
        keep = {"basic", "threshold", "partial", "retire+spares", "read_refresh"}
        cases = [case for case in cases if case[0] in keep]
    return cases


def _invariant_case_task(
    case: tuple[str, object, SimulationConfig, object],
) -> InvariantCase:
    """Run one sweep case; a violation becomes a failed case, not a raise.

    Module-level so it pickles across the spawn pool; the (policy, config,
    rates) payload is picklable by the same argument ``sweep_policies``
    relies on.
    """
    name, policy, config, rates = case
    try:
        result = run_experiment(policy, config, rates)
    except InvariantViolation as violation:
        return InvariantCase(name=name, passed=False, violation=violation.to_dict())
    return InvariantCase(
        name=name,
        passed=True,
        visits=result.stats.visits,
        uncorrectable=result.stats.uncorrectable,
    )


def _bitexact_case(seed: int, quick: bool) -> InvariantCase:
    """The bit-exact ledger cross-check as one sweep case."""
    try:
        visits, uncorrectable, __ = run_bitexact_checked(seed=seed, quick=quick)
    except InvariantViolation as violation:
        return InvariantCase(
            name="bitexact", passed=False, violation=violation.to_dict()
        )
    return InvariantCase(
        name="bitexact", passed=True, visits=visits, uncorrectable=uncorrectable
    )


def run_invariants(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> InvariantReport:
    """Run the invariant sweep, fanned over the process pool for ``jobs > 1``.

    Case order (and therefore the report) is identical for any ``jobs``;
    each case's run is seeded from its own config, so parallel execution
    is bit-identical to serial.  The bit-exact cross-check runs in the
    parent (it is small and keeps the pool payload to population runs).
    """
    cases = invariant_cases(seed=seed, quick=quick)
    if jobs > 1 and len(cases) > 1:
        # Tabulate (or disk-load) each distinct crossing distribution once
        # in the parent so spawn workers hit the disk cache.
        for __, __policy, config, __rates in cases:
            crossing_distribution_for(config)
    outcomes = parallel_map(_invariant_case_task, cases, jobs=jobs)
    outcomes.append(_bitexact_case(seed, quick))
    return InvariantReport(cases=tuple(outcomes))


def run_verification(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> VerifyReport:
    """All three pillars; the CLI's ``repro verify`` calls exactly this."""
    return VerifyReport(
        invariants=run_invariants(seed=seed, jobs=jobs, quick=quick),
        metamorphic=run_metamorphic(seed=seed, jobs=jobs, quick=quick),
        equivalence=run_equivalence(seed=seed, jobs=jobs, quick=quick),
    )
