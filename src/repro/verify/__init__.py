"""Runtime verification: invariants, metamorphic properties, equivalence.

Three independent pillars guard the simulator's correctness:

* :mod:`repro.verify.invariants` - conservation-law checkers that ride
  inside a run (armed via ``SimulationConfig(verify=VerifyConfig(...))``)
  and raise :class:`InvariantViolation` the moment the stats ledger
  disagrees with what the engine actually did.
* :mod:`repro.verify.metamorphic` - ordering laws between paired runs
  (shorter interval / stronger ECC / less drift variance never hurt).
* :mod:`repro.verify.equivalence` - statistical cross-validation of the
  Monte-Carlo engine against the analytic and renewal models.

``repro verify`` on the command line runs all three via
:func:`repro.verify.harness.run_verification`.
"""

from .config import VerifyConfig
from .invariants import (
    NULL_VERIFIER,
    InvariantChecker,
    InvariantViolation,
    Verifier,
)

#: The harness pillars import :mod:`repro.sim`, which itself imports
#: :class:`VerifyConfig` from this package - so they resolve lazily
#: (PEP 562) to keep ``repro.sim.config -> repro.verify.config`` acyclic.
_LAZY = {
    "EquivalenceReport": "equivalence",
    "EquivalenceRow": "equivalence",
    "analytic_equivalence": "equivalence",
    "renewal_equivalence": "equivalence",
    "run_equivalence": "equivalence",
    "surrogate_equivalence": "equivalence",
    "MetamorphicReport": "metamorphic",
    "PropertyCase": "metamorphic",
    "PropertyResult": "metamorphic",
    "run_metamorphic": "metamorphic",
    "InvariantCase": "harness",
    "InvariantReport": "harness",
    "VerifyReport": "harness",
    "run_invariants": "harness",
    "run_verification": "harness",
    "BitExactChecker": "bitexact",
    "BitExactVerifier": "bitexact",
    "NULL_BITEXACT_VERIFIER": "bitexact",
}


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        return getattr(import_module(f".{_LAZY[name]}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "VerifyConfig",
    "InvariantChecker",
    "InvariantViolation",
    "Verifier",
    "NULL_VERIFIER",
    "EquivalenceReport",
    "EquivalenceRow",
    "analytic_equivalence",
    "renewal_equivalence",
    "run_equivalence",
    "MetamorphicReport",
    "PropertyCase",
    "PropertyResult",
    "run_metamorphic",
    "InvariantCase",
    "InvariantReport",
    "VerifyReport",
    "run_invariants",
    "run_verification",
    "BitExactChecker",
    "BitExactVerifier",
    "NULL_BITEXACT_VERIFIER",
]
