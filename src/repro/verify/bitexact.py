"""Invariant coverage for the bit-exact engine's ledger.

The :class:`repro.sim.bitexact.BitExactEngine` classifies every scrubbed
line (CRC-clean, aliased detector miss, uncorrectable, silent
miscorrection, threshold write-back) and tallies each outcome into its
:class:`~repro.core.stats.ScrubStats` and the ``silent_corruptions``
counter.  A misplaced branch there corrupts the validation numbers the
population engine is cross-checked against - precisely the numbers
nothing else audits.

:class:`BitExactChecker` closes that gap, mirroring the population-side
:class:`repro.verify.invariants.InvariantChecker`: the engine hands it
the *raw facts* of each visit (sensed bits, stored word, ground-truth
data, decode outcome) and the checker re-derives the classification
independently - recomputing the raw/stored comparison and the
decoded/ground-truth comparison itself rather than trusting the engine's
branch.  After every scrub pass it compares its independently accumulated
ledger against the engine's counters and raises
:class:`~repro.verify.invariants.InvariantViolation` on the first
disagreement.  The silent-miscorrection tally is the headline identity:
``engine.silent_corruptions`` must equal the checker's own count of
decodes that "succeeded" onto the wrong data.

The checker never mutates engine state and draws no randomness, so a
checked run is bit-identical to an unchecked one.
"""

from __future__ import annotations

import numpy as np

from .config import VerifyConfig
from .invariants import InvariantViolation


class BitExactVerifier:
    """No-op base verifier for :class:`repro.sim.bitexact.BitExactEngine`.

    ``enabled`` is the hot-path guard (the engine checks it before
    copying any per-line arrays), exactly like
    :class:`repro.verify.invariants.Verifier`.
    """

    enabled: bool = False

    def observe_line(self, **kwargs) -> None:
        """Fold one scrubbed line's raw facts into the expectations."""

    def check_pass(self, engine, now: float) -> None:
        """Compare the accumulated ledger against the engine's counters."""

    def check_final(self, engine) -> None:
        """Horizon check (re-runs the ledger comparison one last time)."""


#: Shared default instance; safe because the null verifier is stateless.
NULL_BITEXACT_VERIFIER = BitExactVerifier()


class BitExactChecker(BitExactVerifier):
    """Independently re-derive the bit-exact engine's scrub ledger.

    Per visited line the engine supplies the sensed word, the stored
    word, the ground-truth data, the CRC verdict, and the decode outcome;
    the checker classifies the visit *itself* and accumulates reads,
    detects, decodes, write-backs, uncorrectables, detector misses, and
    silent miscorrections.  :meth:`check_pass` (called by the engine at
    the end of every scrub pass) and :meth:`check_final` compare every
    counter against the engine's.
    """

    enabled = True

    def __init__(self, config: VerifyConfig | None = None):
        self.config = config if config is not None else VerifyConfig(invariants=True)
        self._reads = 0
        self._detects = 0
        self._decodes = 0
        self._writebacks = 0
        self._uncorrectable = 0
        self._misses = 0
        self._silent = 0

    # -- engine-facing hooks --------------------------------------------------

    def observe_line(
        self,
        *,
        time: float,
        line: int,
        raw: np.ndarray,
        stored: np.ndarray,
        true_data: np.ndarray,
        crc_clean: bool | None,
        decode_ok: bool | None,
        decoded_data: np.ndarray | None,
        corrected: int,
        threshold: int,
    ) -> None:
        """Classify one scrubbed line from its raw facts.

        ``crc_clean`` is ``None`` for detector-less schemes; ``decode_ok``
        is ``None`` when the CRC short-circuited the decode.  The
        classification below intentionally re-derives what the engine's
        branches *should* have concluded.
        """
        self._reads += 1
        if crc_clean is not None:
            self._detects += 1
            if crc_clean:
                if decode_ok is not None:
                    raise InvariantViolation(
                        "bitexact_decode_after_clean_crc",
                        expected=None, actual=decode_ok,
                        time=time, context={"line": line},
                    )
                # A clean CRC over a word that differs from what was
                # stored is an aliased detector miss.
                if not np.array_equal(raw, stored):
                    self._misses += 1
                return
        if decode_ok is None:
            raise InvariantViolation(
                "bitexact_missing_decode",
                expected="a decode outcome", actual=None,
                time=time, context={"line": line, "crc_clean": crc_clean},
            )
        self._decodes += 1
        if not decode_ok:
            self._uncorrectable += 1
            return
        if decoded_data is None:
            raise InvariantViolation(
                "bitexact_missing_decoded_data",
                expected="decoded data bits", actual=None,
                time=time, context={"line": line},
            )
        if not np.array_equal(decoded_data, true_data):
            # The decoder "succeeded" onto the wrong codeword: a silent
            # miscorrection, counted as uncorrectable.
            self._silent += 1
            self._uncorrectable += 1
            return
        if corrected >= threshold:
            self._writebacks += 1

    def check_pass(self, engine, now: float) -> None:
        self._check_ledger(engine, time=now)

    def check_final(self, engine) -> None:
        self._check_ledger(engine, time=None)

    # -- the identities -------------------------------------------------------

    def _check_ledger(self, engine, time: float | None) -> None:
        stats = engine.stats
        counts = stats.ledger.counts
        expected = {
            "bitexact_scrub_read_count": (self._reads, counts["scrub_read"]),
            "bitexact_scrub_detect_count": (self._detects, counts["scrub_detect"]),
            "bitexact_scrub_decode_count": (self._decodes, counts["scrub_decode"]),
            "bitexact_scrub_write_count": (self._writebacks, counts["scrub_write"]),
            "bitexact_uncorrectable_count": (
                self._uncorrectable, stats.uncorrectable
            ),
            "bitexact_detector_miss_count": (self._misses, stats.detector_misses),
            "bitexact_silent_corruptions": (
                self._silent, engine.silent_corruptions
            ),
        }
        for invariant, (want, got) in expected.items():
            if want != got:
                raise InvariantViolation(
                    invariant, expected=want, actual=got, time=time
                )
        # Structural corollaries of the classification itself.
        if self._silent > self._uncorrectable:
            raise InvariantViolation(
                "bitexact_silent_within_uncorrectable",
                expected=f"<= {self._uncorrectable}", actual=self._silent,
                time=time,
            )
        if self._decodes > self._reads:
            raise InvariantViolation(
                "bitexact_decodes_within_reads",
                expected=f"<= {self._reads}", actual=self._decodes,
                time=time,
            )


def run_checked(seed: int = 2012, quick: bool = False):
    """Drive checked bit-exact runs over both detector paths.

    Runs a CRC-carrying threshold policy and a detector-less strong-ECC
    policy over a deliberately fast-drifting population, each with a
    :class:`BitExactChecker` armed, so decodes, write-backs,
    uncorrectables, detector misses, and (under SECDED-class miscorrection
    pressure) silent corruptions are all live.  Returns
    ``(visits, uncorrectable, silent_corruptions)`` summed over the runs;
    raises :class:`InvariantViolation` on the first ledger disagreement.
    """
    from .. import units
    from ..core import basic_scrub, strong_ecc_scrub, threshold_scrub
    from ..params import CellSpec, DriftParams, LineSpec, replace
    from ..sim.bitexact import BitExactEngine
    from ..sim.rng import RngStreams

    cell = CellSpec()
    fast = LineSpec(
        cell=replace(
            cell,
            drift=(
                cell.drift[0],
                DriftParams(0.03, 0.012),
                DriftParams(0.08, 0.032),
                cell.drift[3],
            ),
        )
    )
    num_lines = 4 if quick else 6
    horizon = (12 if quick else 24) * units.HOUR
    policies = [
        threshold_scrub(interval=2 * units.HOUR, strength=4, threshold=2),
        strong_ecc_scrub(interval=2 * units.HOUR, strength=8),
        # SECDED has real miscorrection mass under multi-bit patterns, so
        # this leg exercises the silent-corruption identity non-vacuously.
        basic_scrub(interval=4 * units.HOUR),
    ]
    visits = uncorrectable = silent = 0
    for offset, policy in enumerate(policies):
        engine = BitExactEngine(
            policy,
            num_lines,
            RngStreams(seed + offset),
            line_spec=fast,
            verifier=BitExactChecker(),
        )
        result = engine.run(horizon=horizon)
        visits += result.stats.visits
        uncorrectable += result.stats.uncorrectable
        silent += result.silent_corruptions
    return visits, uncorrectable, silent
