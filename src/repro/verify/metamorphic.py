"""Metamorphic properties of the scrub simulator.

Metamorphic testing checks *relations between runs* instead of absolute
numbers: we may not know how many uncorrectable errors a configuration
should produce, but we know with certainty which direction the count must
move when one knob turns.  Each property here encodes one such ordering
law from the paper's problem structure:

* **Shorter scrub interval never hurts** - scrubbing more often catches
  drifted cells earlier, so uncorrectables are non-decreasing in the
  interval (`interval_monotonicity`).
* **Stronger ECC never hurts** - a code correcting more errors per line
  strictly dominates a weaker one on the same error pattern, for both
  the BCH and the Reed-Solomon ladder (`ecc_monotonicity`).
* **More drift variance hurts** - widening the drift-coefficient spread
  puts more mass in the fast-drifting tail, so uncorrectables are
  non-decreasing in the sigma scale (`drift_monotonicity`).
* **Failures accelerate** - a fresh population starts error-free and
  ramps toward steady state, so the second half of a run produces at
  least as many uncorrectables as the first: doubling the horizon at
  least doubles the count (`horizon_superadditivity`).
* **A laxer write-back threshold never writes more** - raising the
  threshold theta only removes lines from the write-back set, so scrub
  writes - and with them scrub energy, since reads/detects/decodes are
  pass-count-fixed - are non-increasing in theta
  (`threshold_write_monotonicity`, `threshold_energy_monotonicity`).
* **Partial write-back never costs more energy** - re-programming only
  the drifted cells is cheaper per event than rewriting the line, so
  the partial policy's scrub energy never exceeds the full-line
  threshold policy's at the same knob settings
  (`partial_writeback_economy`).

All runs in a property share one seed.  The population's crossing times
are drawn before the engine starts and the idle-workload engine is
deterministic afterwards, so each comparison is *paired*: the orderings
hold sample-path-wise, not merely in expectation, and the checks need no
statistical slack (the horizon property alone keeps a small epsilon for
the boundary case where both halves tie).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import units
from ..analysis.sweeps import sweep_policies
from ..core.threshold import ThresholdScrubPolicy
from ..ecc.schemes import get_scheme
from ..sim.config import SimulationConfig
from ..sim.parallel import RunSpec, run_many

#: Slack factor for the superadditivity check: UE(2H) >= 2 * UE(H) * (1 - eps).
#: The relation is deterministic for a paired seed; the epsilon only
#: tolerates the degenerate near-tie when counts are tiny.
SUPERADDITIVITY_EPS = 0.02


@dataclass(frozen=True)
class PropertyCase:
    """One run inside a property: the knob setting and the metric."""

    label: str
    value: float

    def to_dict(self) -> dict:
        return {"label": self.label, "value": self.value}


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one metamorphic property."""

    name: str
    #: The ordering law, stated for a reader of the report.
    relation: str
    #: Cases in the order the law requires (each step must satisfy it).
    cases: tuple[PropertyCase, ...]
    passed: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "relation": self.relation,
            "cases": [case.to_dict() for case in self.cases],
            "passed": self.passed,
        }


@dataclass(frozen=True)
class MetamorphicReport:
    """All property outcomes from one suite run."""

    results: tuple[PropertyResult, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> tuple[PropertyResult, ...]:
        return tuple(result for result in self.results if not result.passed)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "results": [result.to_dict() for result in self.results],
        }


def _non_decreasing(values: list[float]) -> bool:
    return all(a <= b for a, b in zip(values, values[1:]))


def _base_config(seed: int, quick: bool) -> SimulationConfig:
    return SimulationConfig(
        num_lines=2048 if quick else 8192,
        region_size=2048 if quick else 8192,
        horizon=(3 if quick else 7) * units.DAY,
        seed=seed,
        endurance=None,
    )


def interval_monotonicity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Uncorrectables are non-decreasing in the scrub interval."""
    intervals = [2 * units.HOUR, 4 * units.HOUR, 8 * units.HOUR]
    config = _base_config(seed, quick)
    specs = [
        RunSpec(
            policy="threshold",
            config=config,
            policy_kwargs={"interval": interval, "strength": 3, "threshold": 1},
        )
        for interval in intervals
    ]
    results = run_many(specs, jobs=jobs)
    cases = tuple(
        PropertyCase(
            label=f"T={interval / units.HOUR:g}h",
            value=float(result.stats.uncorrectable),
        )
        for interval, result in zip(intervals, results)
    )
    return PropertyResult(
        name="interval_monotonicity",
        relation="UE(T1) <= UE(T2) for T1 <= T2 (same seed)",
        cases=cases,
        passed=_non_decreasing([case.value for case in cases]),
    )


def ecc_monotonicity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> list[PropertyResult]:
    """Uncorrectables are non-increasing in ECC strength (BCH and RS)."""
    ladders = [("bch", ["bch2", "bch4", "bch8"]), ("rs", ["rs2", "rs4", "rs8"])]
    if quick:
        ladders = [(family, names[:2]) for family, names in ladders]
    config = _base_config(seed, quick)
    interval = 4 * units.HOUR
    # RS schemes are not reachable through the RunSpec factory's strength
    # knob, so run ready-built policies instead.
    policies = [
        ThresholdScrubPolicy(get_scheme(name), interval=interval, threshold=1)
        for _, names in ladders
        for name in names
    ]
    results = sweep_policies(policies, config, jobs=jobs)

    outcomes = []
    cursor = 0
    for family, names in ladders:
        chunk = results[cursor : cursor + len(names)]
        cursor += len(names)
        cases = tuple(
            PropertyCase(label=name, value=float(result.stats.uncorrectable))
            for name, result in zip(names, chunk)
        )
        values = [case.value for case in cases]
        outcomes.append(
            PropertyResult(
                name=f"ecc_monotonicity_{family}",
                relation="UE(stronger code) <= UE(weaker code) (same seed)",
                cases=cases,
                passed=_non_decreasing(values[::-1]),
            )
        )
    return outcomes


def drift_monotonicity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Uncorrectables are non-decreasing in the drift-sigma scale."""
    scales = [1.0, 1.5, 2.0]
    if quick:
        scales = scales[:2]
    base = _base_config(seed, quick)
    specs = []
    for scale in scales:
        cell = base.line.cell
        scaled = replace(
            cell,
            drift=tuple(
                replace(d, nu_sigma=d.nu_sigma * scale) for d in cell.drift
            ),
        )
        specs.append(
            RunSpec(
                policy="threshold",
                config=replace(base, line=replace(base.line, cell=scaled)),
                policy_kwargs={
                    "interval": 4 * units.HOUR,
                    "strength": 3,
                    "threshold": 1,
                },
            )
        )
    results = run_many(specs, jobs=jobs)
    cases = tuple(
        PropertyCase(
            label=f"sigma x{scale:g}", value=float(result.stats.uncorrectable)
        )
        for scale, result in zip(scales, results)
    )
    return PropertyResult(
        name="drift_monotonicity",
        relation="UE(sigma1) <= UE(sigma2) for sigma1 <= sigma2 (same seed)",
        cases=cases,
        passed=_non_decreasing([case.value for case in cases]),
    )


def horizon_superadditivity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Doubling the horizon at least doubles the uncorrectable count.

    The first half of the doubled run replays the short run exactly (same
    seed, idle workload, deterministic engine), so the check isolates the
    second window: a fresh population cannot fail faster early than late.
    """
    base = _base_config(seed, quick)
    specs = [
        RunSpec(
            policy="threshold",
            config=replace(base, horizon=horizon),
            policy_kwargs={
                "interval": 4 * units.HOUR,
                "strength": 3,
                "threshold": 2,
            },
        )
        for horizon in (base.horizon, 2 * base.horizon)
    ]
    results = run_many(specs, jobs=jobs)
    short, doubled = (float(r.stats.uncorrectable) for r in results)
    cases = (
        PropertyCase(label="H", value=short),
        PropertyCase(label="2H", value=doubled),
    )
    return PropertyResult(
        name="horizon_superadditivity",
        relation="UE(2H) >= 2 * UE(H) (same seed)",
        cases=cases,
        passed=doubled >= 2.0 * short * (1.0 - SUPERADDITIVITY_EPS),
    )


def threshold_monotonicity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> list[PropertyResult]:
    """Scrub writes and scrub energy are non-increasing in the threshold.

    Raising theta only shrinks the set of lines eligible for write-back
    on each pass, and the remaining scrub work (reads, detects, decodes)
    is fixed by the pass count - so both orderings hold sample-path-wise
    on a shared seed.  One triple of runs feeds both properties.
    """
    thresholds = [1, 2, 3]
    if quick:
        thresholds = thresholds[:2]
    config = _base_config(seed, quick)
    specs = [
        RunSpec(
            policy="threshold",
            config=config,
            policy_kwargs={
                "interval": 4 * units.HOUR,
                "strength": 3,
                "threshold": threshold,
            },
        )
        for threshold in thresholds
    ]
    results = run_many(specs, jobs=jobs)
    outcomes = []
    for metric, values in (
        ("write", [float(r.stats.scrub_writes) for r in results]),
        ("energy", [float(r.stats.scrub_energy) for r in results]),
    ):
        cases = tuple(
            PropertyCase(label=f"theta={threshold}", value=value)
            for threshold, value in zip(thresholds, values)
        )
        outcomes.append(
            PropertyResult(
                name=f"threshold_{metric}_monotonicity",
                relation=(
                    f"scrub {metric}(theta1) >= scrub {metric}(theta2) "
                    "for theta1 <= theta2 (same seed)"
                ),
                cases=cases,
                passed=_non_decreasing(values[::-1]),
            )
        )
    return outcomes


def partial_writeback_economy(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Cell-selective write-back never spends more scrub energy.

    The partial policy re-programs only the drifted cells per write-back
    event instead of the whole line, so at identical interval / strength
    / threshold settings its scrub energy cannot exceed the full-line
    threshold policy's.  (Only energy is paired: resetting a subset of
    cells changes the population trajectory, so event and UE counts may
    legitimately differ between the two runs.)
    """
    config = _base_config(seed, quick)
    kwargs = {"interval": 4 * units.HOUR, "strength": 3, "threshold": 1}
    specs = [
        RunSpec(policy="threshold", config=config, policy_kwargs=kwargs),
        RunSpec(policy="partial", config=config, policy_kwargs=kwargs),
    ]
    full, partial = run_many(specs, jobs=jobs)
    cases = (
        PropertyCase(label="full-line", value=float(full.stats.scrub_energy)),
        PropertyCase(label="partial", value=float(partial.stats.scrub_energy)),
    )
    return PropertyResult(
        name="partial_writeback_economy",
        relation="scrub energy(partial) <= scrub energy(full-line) (same seed)",
        cases=cases,
        passed=partial.stats.scrub_energy <= full.stats.scrub_energy,
    )


def _run_fingerprint(result) -> tuple:
    """Everything a run measures, for exact (bitwise) comparison."""
    return (
        result.stats.summary(),
        result.stats.energy_breakdown(),
        [int(v) for v in result.stats.error_histogram],
        result.stats.visits_with_errors,
        result.stats.partial_cells,
        dict(result.final_state),
    )


def fast_forward_identity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Fast-forward on == off, bit-exact, across the policy matrix.

    The fast-forward layer's whole contract: folding quiescent visits into
    bulk charges must not move a single bit of any measured quantity.  Each
    policy runs twice on the same seed — naive walk vs fast-forward — at a
    drift-compensated operating point where long error-free stretches make
    the fast path actually engage (basic scrub folds the most; threshold
    and adaptive engage until their first standing sub-threshold error).
    """
    config = replace(_base_config(seed, quick), compensated_sensing=True)
    policies = ["basic", "strong", "threshold", "adaptive"]
    kwargs: dict[str, dict] = {p: {"interval": 2 * units.HOUR} for p in policies}
    kwargs["threshold"]["strength"] = 3
    kwargs["adaptive"]["strength"] = 3
    # Clamp adaptive at its base interval so relax is a no-op from the first
    # visit — otherwise the relax ladder keeps the region ineligible and the
    # adaptive case would only exercise the (trivial) never-engaged identity.
    kwargs["adaptive"]["max_interval"] = 2 * units.HOUR
    specs = []
    for name in policies:
        for fast_forward in (True, False):
            specs.append(
                RunSpec(
                    policy=name,
                    config=replace(config, fast_forward=fast_forward),
                    policy_kwargs=kwargs[name],
                )
            )
    results = run_many(specs, jobs=jobs)
    cases = []
    passed = True
    for i, name in enumerate(policies):
        on, off = results[2 * i], results[2 * i + 1]
        identical = _run_fingerprint(on) == _run_fingerprint(off)
        passed = passed and identical
        skipped = (on.fast_forward or {}).get("skipped_visits", 0)
        cases.append(
            PropertyCase(label=f"{name} (skipped {skipped})", value=float(identical))
        )
    return PropertyResult(
        name="fast_forward_identity",
        relation="run(fast-forward) == run(naive walk), bit-exact (same seed)",
        cases=tuple(cases),
        passed=passed,
    )


def batch_identity(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> PropertyResult:
    """Batch engine == scalar engine, bit-exact, on its identity domain.

    The batch engine's draw-order contract
    (:mod:`repro.sim.batch`): wherever batching preserves each RNG
    stream's draw order, whole-cohort evaluation must not move a single
    bit of any measured quantity.  Each case runs twice on the same seed —
    ``engine="batch"`` vs ``engine="scalar"`` — across the domains the
    contract covers: multi-region idle devices for decode-all, detector,
    and partial policies (round mode, including the batched detector
    fill), a scheduler-driven adaptive policy under demand (cohort mode),
    and a single-region device under demand (round mode with workload
    draws).  Multi-region demand in round mode is deliberately absent:
    batching reorders the workload stream there, and that regime is
    gated by the ``batch_vs_scalar`` equivalence band instead.
    """
    base = _base_config(seed, quick)
    multi = replace(base, region_size=base.region_size // 8)
    from ..workloads.generators import uniform_rates

    busy = uniform_rates(
        base.num_lines, total_write_rate=base.num_lines * 2.0 / units.DAY
    )
    scenarios: list[tuple[str, str, SimulationConfig, dict, object]] = [
        ("basic multi-idle", "basic", multi, {"interval": 2 * units.HOUR}, None),
        (
            "threshold multi-idle",
            "threshold",
            multi,
            {"interval": 2 * units.HOUR, "strength": 3},
            None,
        ),
        (
            "partial multi-idle",
            "partial",
            multi,
            {"interval": 2 * units.HOUR, "strength": 3},
            None,
        ),
        (
            "adaptive multi-busy",
            "adaptive",
            multi,
            {"interval": 2 * units.HOUR, "strength": 3},
            busy,
        ),
        (
            "threshold single-busy",
            "threshold",
            base,
            {"interval": 2 * units.HOUR, "strength": 3},
            busy,
        ),
    ]
    if quick:
        scenarios = scenarios[:3] + scenarios[4:]
    specs = []
    for _, policy, config, kwargs, rates in scenarios:
        for engine in ("batch", "scalar"):
            specs.append(
                RunSpec(
                    policy=policy,
                    config=replace(config, engine=engine),
                    policy_kwargs=kwargs,
                    rates=rates,
                )
            )
    results = run_many(specs, jobs=jobs)
    cases = []
    passed = True
    for i, (label, *_rest) in enumerate(scenarios):
        batch, scalar = results[2 * i], results[2 * i + 1]
        identical = _run_fingerprint(batch) == _run_fingerprint(scalar)
        passed = passed and identical
        cases.append(PropertyCase(label=label, value=float(identical)))
    return PropertyResult(
        name="batch_identity",
        relation="run(engine=batch) == run(engine=scalar), bit-exact (same seed)",
        cases=tuple(cases),
        passed=passed,
    )


def run_metamorphic(
    seed: int = 2012, jobs: int = 1, quick: bool = False
) -> MetamorphicReport:
    """The full property suite as one report."""
    results = [interval_monotonicity(seed=seed, jobs=jobs, quick=quick)]
    results.extend(ecc_monotonicity(seed=seed, jobs=jobs, quick=quick))
    results.append(drift_monotonicity(seed=seed, jobs=jobs, quick=quick))
    results.append(horizon_superadditivity(seed=seed, jobs=jobs, quick=quick))
    results.extend(threshold_monotonicity(seed=seed, jobs=jobs, quick=quick))
    results.append(partial_writeback_economy(seed=seed, jobs=jobs, quick=quick))
    results.append(fast_forward_identity(seed=seed, jobs=jobs, quick=quick))
    results.append(batch_identity(seed=seed, jobs=jobs, quick=quick))
    return MetamorphicReport(results=tuple(results))
