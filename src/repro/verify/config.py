"""Verification configuration.

:class:`VerifyConfig` rides on :class:`repro.sim.config.SimulationConfig`
(mirroring :class:`repro.obs.config.ObsConfig`) and selects which runtime
checks a simulation performs:

* ``invariants`` - conservation-law checking over the stats ledger and the
  device state (:mod:`repro.verify.invariants`), per scrub visit and at the
  horizon.

The default is everything off, which must cost (essentially) nothing: the
engine keeps a single no-op verifier check per visit and draws no extra
randomness, so disabled runs are bit-identical to runs of a build without
the subsystem.  Enabled runs are *also* bit-identical - checkers only read
state - they merely raise :class:`repro.verify.invariants.InvariantViolation`
when an identity breaks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VerifyConfig:
    """Which runtime checks one simulation run performs (default: none)."""

    #: Check the conservation identities during and after the run.
    invariants: bool = False
    #: Check the ledger identities every Nth scrub visit (1 = every visit).
    #: The horizon checks always run when ``invariants`` is on, so a larger
    #: stride trades detection latency for per-visit overhead, never
    #: coverage.
    check_every: int = 1
    #: Relative tolerance for floating-point energy identities.  Energy
    #: totals are sums of per-op costs, so the only slack needed is
    #: accumulation rounding.
    energy_rtol: float = 1e-9

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.energy_rtol < 0:
            raise ValueError("energy_rtol must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any check is on (the engine then builds a verifier)."""
        return self.invariants
