"""Runtime conservation-law checking over a running simulation.

The stats ledger (:class:`repro.core.stats.ScrubStats`) is the sole source
of every number the reproduction reports, so a silent accounting bug - a
missed ``record_*`` call, a double-charged energy category, a mask that
drifts out of sync with its counter - corrupts every downstream claim
while all goldens regenerate "cleanly".  This module makes the ledger
self-checking: an :class:`InvariantChecker` rides along with the engine
(behind ``SimulationConfig.verify``, zero-overhead when off, mirroring the
observability pattern) and re-derives every counter independently from the
per-visit decisions the engine hands it, raising a structured
:class:`InvariantViolation` the moment the two disagree.

Identities enforced (per visit, modulo ``check_every``, and at horizon):

* **visit accounting** - ``stats.visits`` equals lines visited; decode,
  detect, write-back, miss, retire, and UE counters each equal the sum of
  the per-visit decisions (including read-refresh events, which bypass the
  policy);
* **histogram conservation** - every decode contributes exactly one
  histogram observation (``error_histogram.sum() == scrub_decodes``), the
  erroneous-visit counter equals the nonzero mass
  (``visits_with_errors == error_histogram[1:].sum()``), and the observed
  error mass equals the resolved-plus-pending split of each decision;
* **energy = sum of per-op costs** - each ledger category's joules equal
  its op count times the :class:`repro.pcm.energy.OperationCosts` price
  (write-backs split into full-line and per-cell partial components);
* **spare-pool conservation** - allocations never exceed the provisioned
  budget and every granted spare corresponds to exactly one retirement.

The checker never mutates simulation state and draws no randomness, so
enabling it cannot perturb results - verified runs are bit-identical to
unverified ones.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .config import VerifyConfig


class InvariantViolation(RuntimeError):
    """A conservation law broke during (or after) a simulation.

    Carries structured context so harnesses can report the violation
    without parsing the message: the invariant name, the expected and
    actual values, the simulated time and region of the offending visit
    (``None`` for horizon checks), a free-form detail dict, and - when the
    run was tracing (:mod:`repro.obs.trace`) - the tail of the event trace
    leading up to the violation.
    """

    def __init__(
        self,
        invariant: str,
        *,
        expected: Any,
        actual: Any,
        time: float | None = None,
        region: int | None = None,
        context: dict | None = None,
        trace_tail: list[dict] | None = None,
    ):
        self.invariant = invariant
        self.expected = expected
        self.actual = actual
        self.time = time
        self.region = region
        self.context = dict(context) if context else {}
        self.trace_tail = list(trace_tail) if trace_tail else []
        where = ""
        if time is not None:
            where = f" at t={time:g}" + (
                f" region={region}" if region is not None else ""
            )
        super().__init__(
            f"invariant {invariant!r} violated{where}: "
            f"expected {expected!r}, got {actual!r}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable violation record (feeds the verify report)."""
        return {
            "invariant": self.invariant,
            "expected": _jsonable(self.expected),
            "actual": _jsonable(self.actual),
            "time": self.time,
            "region": self.region,
            "context": {k: _jsonable(v) for k, v in self.context.items()},
            "trace_tail": self.trace_tail,
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class Verifier:
    """No-op base verifier.

    ``enabled`` is the hot-path guard, exactly like
    :class:`repro.obs.trace.Tracer`: the engine checks it before gathering
    any per-visit decision detail, so a disabled verifier costs one
    attribute read per visit.
    """

    enabled: bool = False

    def check_visit(self, **kwargs) -> None:
        """Fold one visit's decisions in and check the ledger against them."""

    def note_refresh(self, writes: int, ues: int) -> None:
        """Account read-refresh events (they bypass the policy decision)."""

    def note_fast_forward(self, visited: int, detected: int, decoded: int) -> None:
        """Account a bulk-charged block of zero-error visits."""

    def check_final(self, final_state: dict[str, float]) -> None:
        """Run the horizon checks against the end-of-run state."""


#: Shared default instance; safe because the null verifier is stateless.
NULL_VERIFIER = Verifier()


class InvariantChecker(Verifier):
    """Re-derives the stats ledger independently and compares continuously.

    Parameters
    ----------
    stats:
        The live ledger the engine charges; read-only from here.
    config:
        Check stride and float tolerances.
    spare_pool:
        The run's :class:`repro.mem.sparing.SparePool`, when provisioned.
    tracer:
        The run's tracer; when it records events in memory, violations
        carry the trace tail for post-mortem context.
    """

    enabled = True

    #: Trace events attached to a violation for context.
    TRACE_TAIL_EVENTS = 8

    def __init__(
        self,
        stats,
        config: VerifyConfig | None = None,
        spare_pool=None,
        tracer=None,
    ):
        self.stats = stats
        self.config = config if config is not None else VerifyConfig(invariants=True)
        self.spare_pool = spare_pool
        self.tracer = tracer
        #: Conservation-law violations found (populated only when raising).
        self._visit_index = 0
        # Independently accumulated expectations, one per ledger identity.
        self._lines_visited = 0
        self._detects = 0
        self._decodes = 0
        self._writebacks = 0
        self._partial_events = 0
        self._partial_cells = 0
        self._uncorrectable = 0
        self._missed = 0
        self._retired = 0
        self._refresh_writes = 0
        self._refresh_ues = 0
        self._errors_observed = 0

    # -- engine-facing hooks -------------------------------------------------

    def note_refresh(self, writes: int, ues: int) -> None:
        self._refresh_writes += writes
        self._refresh_ues += ues

    def note_fast_forward(self, visited: int, detected: int, decoded: int) -> None:
        """Fold a fast-forward bulk charge into the expectations and check.

        A fast-forwarded block is ``k`` zero-error visits: every line is
        read (``visited``), detector schemes check every line, decode-all
        schemes decode every line (adding exactly ``decoded`` zeros of
        histogram mass, which :meth:`_check_ledger`'s histogram identity
        absorbs because the observed-error mass is unchanged).  Nothing is
        written back, missed, uncorrectable, or retired.
        """
        if not 0 <= decoded <= visited or not 0 <= detected <= visited:
            self._raise(
                "fast_forward_within_visit", expected=f"<= {visited}",
                actual={"detected": detected, "decoded": decoded},
            )
        self._lines_visited += visited
        self._detects += detected
        self._decodes += decoded
        self._visit_index += 1
        if self._visit_index % self.config.check_every == 0:
            self._check_ledger(time=None, region=None)

    def check_visit(
        self,
        *,
        time: float,
        region: int,
        visited: int,
        detected: int,
        decoded: int,
        written_back: int,
        partial_cells: int | None,
        uncorrectable: int,
        missed: int,
        retired: int,
        errors_observed: int,
        errors_resolved: int,
        errors_pending: int,
    ) -> None:
        """Fold one scrub visit's decision into the expectations and check.

        ``partial_cells`` is ``None`` for full-line write-backs and the
        rewritten-cell total for partial write-backs.  ``errors_observed``
        is the histogram-capped error mass over the decoded lines;
        ``errors_resolved``/``errors_pending`` split it by whether the
        decision reset the line (write-back or UE recovery) or left it in
        service.
        """
        # Decision-shape sanity: these come straight from the masks, so a
        # failure here means the policy or the engine miscounted.
        if decoded > visited:
            self._raise(
                "decoded_within_visit", expected=f"<= {visited}",
                actual=decoded, time=time, region=region,
            )
        if written_back + uncorrectable > decoded:
            self._raise(
                "decisions_within_decoded", expected=f"<= {decoded}",
                actual=written_back + uncorrectable, time=time, region=region,
                context={"written_back": written_back,
                         "uncorrectable": uncorrectable},
            )
        if missed > visited:
            self._raise(
                "missed_within_visit", expected=f"<= {visited}",
                actual=missed, time=time, region=region,
            )
        if errors_observed != errors_resolved + errors_pending:
            self._raise(
                "observed_errors_split", expected=errors_observed,
                actual=errors_resolved + errors_pending, time=time,
                region=region,
                context={"resolved": errors_resolved, "pending": errors_pending},
            )

        self._lines_visited += visited
        self._detects += detected
        self._decodes += decoded
        if partial_cells is None:
            self._writebacks += written_back
        else:
            self._partial_events += written_back
            self._partial_cells += partial_cells
        self._uncorrectable += uncorrectable
        self._missed += missed
        self._retired += retired
        self._errors_observed += errors_observed

        self._visit_index += 1
        if self._visit_index % self.config.check_every == 0:
            self._check_ledger(time=time, region=region)

    def check_final(self, final_state: dict[str, float]) -> None:
        """Horizon checks: ledger identities plus end-of-run device state."""
        self._check_ledger(time=None, region=None)
        self._check_demand(time=None, region=None)
        stuck = final_state.get("stuck_cells", 0.0)
        mismatch = final_state.get("hard_mismatch_cells", 0.0)
        if mismatch > stuck:
            self._raise(
                "hard_mismatch_within_stuck", expected=f"<= {stuck}",
                actual=mismatch, context={"final_state": dict(final_state)},
            )
        if final_state.get("mean_writes_per_line", 0.0) < 0:
            self._raise(
                "nonnegative_wear", expected=">= 0",
                actual=final_state["mean_writes_per_line"],
            )

    # -- the identities ------------------------------------------------------

    def _check_ledger(self, time: float | None, region: int | None) -> None:
        stats = self.stats
        counts = stats.ledger.counts
        expected_counts = {
            "visits": (self._lines_visited, stats.visits),
            "scrub_read_count": (self._lines_visited, counts["scrub_read"]),
            "scrub_detect_count": (self._detects, counts["scrub_detect"]),
            "scrub_decode_count": (self._decodes, counts["scrub_decode"]),
            "scrub_write_count": (
                self._writebacks + self._partial_events + self._refresh_writes,
                counts["scrub_write"],
            ),
            "uncorrectable_count": (
                self._uncorrectable + self._refresh_ues, stats.uncorrectable
            ),
            "detector_miss_count": (self._missed, stats.detector_misses),
            "retired_count": (self._retired, stats.retired),
            "partial_cell_count": (self._partial_cells, stats.partial_cells),
        }
        for invariant, (expected, actual) in expected_counts.items():
            if expected != actual:
                self._raise(invariant, expected=expected, actual=actual,
                            time=time, region=region)

        # Histogram conservation: one observation per decode, erroneous
        # visits equal the nonzero mass, and the error mass matches the
        # decision-level resolved + pending split.
        hist = stats.error_histogram
        hist_total = int(hist.sum())
        if hist_total != self._decodes:
            self._raise(
                "histogram_mass", expected=self._decodes, actual=hist_total,
                time=time, region=region,
            )
        nonzero = int(hist[1:].sum())
        if stats.visits_with_errors != nonzero:
            self._raise(
                "visits_with_errors", expected=nonzero,
                actual=stats.visits_with_errors, time=time, region=region,
            )
        observed = int(np.dot(np.arange(hist.size), hist))
        if observed != self._errors_observed:
            self._raise(
                "observed_error_mass", expected=self._errors_observed,
                actual=observed, time=time, region=region,
            )

        self._check_energy(time=time, region=region)
        self._check_spares(time=time, region=region)

    def _check_energy(self, time: float | None, region: int | None) -> None:
        """Energy = sum of per-op costs, category by category."""
        stats = self.stats
        costs = stats.costs
        ledger = stats.ledger
        per_op = {
            "scrub_read": costs.read_energy,
            "scrub_detect": costs.detect_energy,
            "scrub_decode": costs.decode_energy,
            "demand_write": costs.write_energy,
        }
        for category, price in per_op.items():
            expected = ledger.counts[category] * price
            self._check_close(
                f"energy_{category}", expected, ledger.energy[category],
                time=time, region=region,
            )
        expected_write = (
            (self._writebacks + self._refresh_writes) * costs.write_energy
            + self._partial_cells * costs.write_energy_per_cell
        )
        self._check_close(
            "energy_scrub_write", expected_write, ledger.energy["scrub_write"],
            time=time, region=region,
        )
        scrub_total = sum(
            ledger.energy[cat] for cat in ledger.energy if cat.startswith("scrub_")
        )
        self._check_close(
            "scrub_energy_total", scrub_total, stats.scrub_energy,
            time=time, region=region,
        )

    def _check_demand(self, time: float | None, region: int | None) -> None:
        """Demand-side identities (reads are bulk-charged at the horizon)."""
        stats = self.stats
        ledger = stats.ledger
        if ledger.counts["demand_write"] != stats.demand_writes:
            self._raise(
                "demand_write_count", expected=stats.demand_writes,
                actual=ledger.counts["demand_write"], time=time, region=region,
            )
        self._check_close(
            "energy_demand_read",
            ledger.counts["demand_read"] * stats.costs.read_energy,
            ledger.energy["demand_read"], time=time, region=region,
        )

    def _check_spares(self, time: float | None, region: int | None) -> None:
        pool = self.spare_pool
        if pool is None:
            return
        if (pool.used > pool.spares_per_region).any():
            self._raise(
                "spares_within_budget",
                expected=f"<= {pool.spares_per_region} per region",
                actual=pool.used.max(), time=time, region=region,
                context={"used_per_region": pool.used},
            )
        total_used = int(pool.used.sum())
        if total_used != self.stats.retired:
            self._raise(
                "spares_match_retirements", expected=self.stats.retired,
                actual=total_used, time=time, region=region,
            )
        if pool.refused < 0:
            self._raise(
                "nonnegative_refusals", expected=">= 0", actual=pool.refused,
                time=time, region=region,
            )

    # -- plumbing ------------------------------------------------------------

    def _check_close(
        self,
        invariant: str,
        expected: float,
        actual: float,
        time: float | None,
        region: int | None,
    ) -> None:
        tolerance = self.config.energy_rtol * max(abs(expected), abs(actual), 1e-300)
        if abs(expected - actual) > tolerance:
            self._raise(invariant, expected=expected, actual=actual,
                        time=time, region=region,
                        context={"rtol": self.config.energy_rtol})

    def _raise(
        self,
        invariant: str,
        *,
        expected: Any,
        actual: Any,
        time: float | None = None,
        region: int | None = None,
        context: dict | None = None,
    ) -> None:
        trace_tail: list[dict] | None = None
        events = getattr(self.tracer, "events", None)
        if events:
            trace_tail = list(events[-self.TRACE_TAIL_EVENTS:])
        raise InvariantViolation(
            invariant,
            expected=expected,
            actual=actual,
            time=time,
            region=region,
            context=context,
            trace_tail=trace_tail,
        )
