"""Surrogate screening: classify fleet devices before any MC is spent.

A million-device campaign cannot Monte-Carlo every device.  But most
devices in a real fleet are nowhere near their reliability budget, and
for the paper's own modelling assumptions the finite-horizon renewal
solution (:meth:`repro.sim.renewal.RenewalModel.finite_horizon`) is an
*exact* surrogate for the engine: same expected UE and write-back
counts, same per-line survival probability, at closed-form cost.  The
planner evaluates every lot-sampled device parameter point through that
surrogate and classifies it against the campaign's constraints:

``pass``
    the device's predictive interval clears every constraint - no MC;
``fail``
    the predictive interval violates a constraint outright - no MC
    either (the verdict is already deterministic);
``uncertain``
    the interval straddles a constraint, *or* the device sits outside
    the surrogate's validated regime (demand traffic, non-threshold
    policies, detector-gated decode, wear, spares, multi-region phase
    offsets) - these escalate to the full MC engine.

Classification is a pure function of ``(spec, constraints)``: device
parameters are drawn from ``default_rng([seed, index])`` exactly as the
campaign runner draws them, so the plan is independent of shard layout,
``--jobs``, or resume boundaries - the property the deterministic-
classification tests pin.  In-regime devices are evaluated through the
grid-batched kernel (:func:`repro.sim.renewal_batch.finite_horizon_batch`)
- one call per lot-policy parameter group with vectorized Poisson
predictive bounds - and ``jobs > 1`` fans contiguous device chunks over
the process pool; ``batch=False`` keeps the per-device scalar path as
the reference oracle.

The *FIT* constraint is a per-device budget on the capacity-scaled FIT
(the same scaling as :attr:`repro.fleet.report.FleetReport.fit_scaled`).
The surrogate gives the exact expectation ``lambda`` of the device's UE
count over the horizon; the realized count is Poisson-distributed around
it, so the screen compares the central predictive interval against the
count budget ``c* = fit_limit * horizon_hours / (1e9 * capacity_scale)``.
The *availability* constraint compares the exact probability of a
UE-free horizon ``p0 = q(V)^num_lines`` against the floor, with a
configurable margin band that routes borderline devices to MC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.stats import poisson

from ..fleet.report import FIT_HOURS
from ..fleet.spec import DeviceSpec, FleetSpec
from ..obs.metrics import GLOBAL_REGISTRY
from ..sim.parallel import parallel_map
from ..sim.renewal import RenewalModel
from ..sim.renewal_batch import RenewalTask, finite_horizon_batch
from ..sim.runner import crossing_distribution_for


class ScreenError(ValueError):
    """A screening request is malformed or unsatisfiable."""


class ScreenInvariantError(RuntimeError):
    """A screening artifact failed an internal cross-check."""


#: Decision labels.
PASS, FAIL, UNCERTAIN = "pass", "fail", "uncertain"
#: Provenance labels.
SURROGATE, MC = "surrogate", "mc"


@dataclass(frozen=True)
class ScreenConstraints:
    """The reliability budget devices are screened against.

    At least one of ``fit_limit`` (capacity-scaled per-device FIT) and
    ``min_availability`` (per-device probability of a UE-free horizon)
    must be set.  ``confidence`` is the central coverage of the Poisson
    predictive interval used for the FIT screen; ``availability_margin``
    is the +-band around ``min_availability`` inside which a device is
    escalated instead of classified.
    """

    fit_limit: float | None = None
    min_availability: float | None = None
    confidence: float = 0.95
    availability_margin: float = 0.02

    def __post_init__(self) -> None:
        if self.fit_limit is None and self.min_availability is None:
            raise ScreenError(
                "screening needs at least one constraint: fit_limit "
                "and/or min_availability"
            )
        if self.fit_limit is not None and self.fit_limit <= 0:
            raise ScreenError("fit_limit must be positive")
        if self.min_availability is not None and not 0 < self.min_availability < 1:
            raise ScreenError("min_availability must be in (0, 1)")
        if not 0 < self.confidence < 1:
            raise ScreenError("confidence must be in (0, 1)")
        if self.availability_margin < 0:
            raise ScreenError("availability_margin must be >= 0")

    def to_dict(self) -> dict:
        return {
            "fit_limit": self.fit_limit,
            "min_availability": self.min_availability,
            "confidence": self.confidence,
            "availability_margin": self.availability_margin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScreenConstraints":
        return cls(
            fit_limit=(
                None if data.get("fit_limit") is None else float(data["fit_limit"])
            ),
            min_availability=(
                None
                if data.get("min_availability") is None
                else float(data["min_availability"])
            ),
            confidence=float(data.get("confidence", 0.95)),
            availability_margin=float(data.get("availability_margin", 0.02)),
        )


@dataclass(frozen=True)
class ScreenDecision:
    """One device's screening verdict and its surrogate evaluation."""

    index: int
    lot: str
    #: ``pass`` / ``fail`` / ``uncertain``.
    classification: str
    #: Why the device escalated (empty for surrogate-resolved devices):
    #: ``regime:*`` markers for out-of-regime points, ``fit_ci_overlap``
    #: and ``availability_margin`` for constraint-straddling ones.
    reasons: tuple[str, ...] = ()
    #: Exact expected device UE count over the horizon (``None`` when the
    #: surrogate was not evaluated because the device is out of regime).
    expected_ue: float | None = None
    #: Exact expected scrub write-backs over the horizon.
    expected_writes: float | None = None
    #: Exact probability of a UE-free horizon.
    no_ue_probability: float | None = None
    #: Capacity-scaled FIT implied by ``expected_ue``.
    fit_scaled: float | None = None

    @property
    def method(self) -> str:
        """Where this device's report contribution comes from."""
        return MC if self.classification == UNCERTAIN else SURROGATE

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "lot": self.lot,
            "classification": self.classification,
            "method": self.method,
            "reasons": list(self.reasons),
            "expected_ue": self.expected_ue,
            "expected_writes": self.expected_writes,
            "no_ue_probability": self.no_ue_probability,
            "fit_scaled": self.fit_scaled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScreenDecision":
        def opt(key: str) -> float | None:
            return None if data.get(key) is None else float(data[key])

        return cls(
            index=int(data["index"]),
            lot=str(data["lot"]),
            classification=str(data["classification"]),
            reasons=tuple(str(r) for r in data.get("reasons", [])),
            expected_ue=opt("expected_ue"),
            expected_writes=opt("expected_writes"),
            no_ue_probability=opt("no_ue_probability"),
            fit_scaled=opt("fit_scaled"),
        )


@dataclass(frozen=True)
class ScreenPlan:
    """Every device's decision plus the constraints that produced them."""

    spec_hash: str
    constraints: ScreenConstraints
    decisions: tuple[ScreenDecision, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        indices = [decision.index for decision in self.decisions]
        if indices != list(range(len(indices))):
            raise ScreenInvariantError(
                "screen plan decisions must cover device indices "
                f"0..{len(indices) - 1} in order"
            )

    @property
    def devices(self) -> int:
        return len(self.decisions)

    @property
    def escalated(self) -> tuple[int, ...]:
        """Device indices routed to the MC engine, ascending."""
        return tuple(
            decision.index
            for decision in self.decisions
            if decision.method == MC
        )

    @property
    def surrogate_indices(self) -> tuple[int, ...]:
        return tuple(
            decision.index
            for decision in self.decisions
            if decision.method == SURROGATE
        )

    @property
    def mc_fraction(self) -> float:
        return len(self.escalated) / self.devices if self.devices else 0.0

    def counts(self) -> dict[str, int]:
        out = {PASS: 0, FAIL: 0, UNCERTAIN: 0}
        for decision in self.decisions:
            out[decision.classification] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "constraints": self.constraints.to_dict(),
            "decisions": [decision.to_dict() for decision in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScreenPlan":
        return cls(
            spec_hash=str(data["spec_hash"]),
            constraints=ScreenConstraints.from_dict(data["constraints"]),
            decisions=tuple(
                ScreenDecision.from_dict(entry) for entry in data["decisions"]
            ),
        )


# -- regime checks ------------------------------------------------------------

#: Policies whose visit rule the renewal surrogate models exactly.  The
#: threshold family covers basic-style immediate write-back through
#: ``threshold=1``; adaptive/combined/budgeted schedules and partial
#: (cell-selective) write-back change the dynamics the solver propagates.
SURROGATE_POLICIES = frozenset({"threshold"})


def regime_reasons(spec: FleetSpec, device: DeviceSpec) -> tuple[str, ...]:
    """Why the surrogate's validity assumptions fail for ``device``.

    Empty means the finite-horizon renewal solution is exact for this
    device (idle, pure threshold rule without a detector, single region,
    no wear/retire/refresh/spares).  The policy checks run against the
    device's *lot-effective* assignment, so a per-lot provisioned fleet
    screens each lot under its own policy.
    """
    reasons = []
    policy, policy_kwargs = spec.policy_for(device.lot)
    if policy not in SURROGATE_POLICIES:
        reasons.append(f"regime:policy:{policy}")
    elif policy_kwargs.get("with_detector", True):
        # The CRC detector gates decode and can miss; the solver models
        # unconditional decode.  ``threshold_scrub`` defaults it on.
        reasons.append("regime:detector")
    if spec.demand_write_rate is not None:
        reasons.append("regime:demand_workload")
    config = device.config
    if config.region_size != config.num_lines:
        # Multi-region devices stagger first-visit phases off the aligned
        # grid the recursion assumes.
        reasons.append("regime:multi_region")
    if config.endurance is not None:
        reasons.append("regime:endurance")
    if config.retire_hard_limit is not None:
        reasons.append("regime:retire_limit")
    if config.read_refresh:
        reasons.append("regime:read_refresh")
    if config.spares_per_region:
        reasons.append("regime:spares")
    return tuple(reasons)


def _poisson_predictive(lam, confidence: float):
    """Central predictive interval(s) on Poisson(``lam``) realizations.

    Scalar ``lam`` returns ``(int, int)``; an array returns a pair of
    ``int64`` arrays with the same truncation semantics per element
    (non-positive rates map to the degenerate ``(0, 0)`` interval).
    """
    alpha = 1.0 - confidence
    rates = np.atleast_1d(np.asarray(lam, dtype=np.float64))
    lo = np.zeros(rates.shape, dtype=np.int64)
    hi = np.zeros(rates.shape, dtype=np.int64)
    positive = rates > 0.0
    if positive.any():
        lo[positive] = np.maximum(
            0, poisson.ppf(alpha / 2.0, rates[positive]).astype(np.int64)
        )
        hi[positive] = np.maximum(
            0, poisson.ppf(1.0 - alpha / 2.0, rates[positive]).astype(np.int64)
        )
    if np.ndim(lam) == 0:
        return int(lo[0]), int(hi[0])
    return lo, hi


def _chunk_bounds(devices: int, jobs: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` device ranges, floor-apportioned."""
    chunks = max(1, min(jobs, devices))
    base, extra = divmod(devices, chunks)
    bounds = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _plan_chunk(payload) -> list[ScreenDecision]:
    """Worker entry for the ``jobs > 1`` fan-out (must stay picklable)."""
    spec, constraints, start, stop, batch = payload
    return _plan_decisions(spec, constraints, start, stop, batch)


def _plan_decisions(
    spec: FleetSpec,
    constraints: ScreenConstraints,
    start: int,
    stop: int,
    batch: bool,
) -> list[ScreenDecision]:
    """Classify the contiguous device range ``[start, stop)``.

    In-regime devices are grouped by their lot-effective threshold-policy
    point ``(interval, strength, threshold, cells_per_line)`` - one
    batched kernel call per group, with the Poisson predictive bounds
    vectorized over the group.  ``batch=False`` swaps the kernel for
    per-device scalar :meth:`RenewalModel.finite_horizon` calls through
    the *same* classification code, making it the reference oracle the
    ``surrogate_batch`` equivalence law compares against.  Each device's
    arithmetic is independent of its group-mates, so the decisions do not
    depend on the chunking.
    """
    horizon = spec.base_config.horizon
    horizon_hours = horizon / 3600.0
    num_lines = spec.base_config.num_lines
    # Count budget equivalent to the scaled-FIT limit (see module doc).
    count_limit = (
        None
        if constraints.fit_limit is None
        else constraints.fit_limit * horizon_hours / FIT_HOURS / spec.capacity_scale
    )

    by_index: dict[int, ScreenDecision] = {}
    groups: dict[tuple[float, int, int, int], list[tuple[int, DeviceSpec]]] = {}
    for index in range(start, stop):
        device = spec.device_spec(index)
        reasons = regime_reasons(spec, device)
        if reasons:
            by_index[index] = ScreenDecision(
                index=index, lot=device.lot,
                classification=UNCERTAIN, reasons=reasons,
            )
            continue
        # The lot-effective threshold-policy parameters (per-lot
        # provisioned fleets screen each lot under its own assignment).
        _, policy_kwargs = spec.policy_for(device.lot)
        interval = float(policy_kwargs.get("interval", 0.0))
        strength = int(policy_kwargs.get("strength", 4))
        threshold = policy_kwargs.get("threshold")
        threshold = max(1, strength - 1) if threshold is None else int(threshold)
        key = (interval, strength, threshold, device.config.cells_per_line)
        groups.setdefault(key, []).append((index, device))

    for (interval, strength, threshold, cells), entries in groups.items():
        distributions = [
            crossing_distribution_for(device.config) for _, device in entries
        ]
        if batch:
            solutions = finite_horizon_batch(
                [
                    RenewalTask(
                        distribution=distribution,
                        cells_per_line=cells,
                        interval=interval,
                        t_ecc=strength,
                        threshold=threshold,
                    )
                    for distribution in distributions
                ],
                horizon,
            )
        else:
            solutions = [
                RenewalModel(distribution, cells).finite_horizon(
                    interval, strength, threshold, horizon
                )
                for distribution in distributions
            ]

        lam = np.array([s.expected_ue for s in solutions]) * num_lines
        writes = np.array([s.expected_writes for s in solutions]) * num_lines
        no_ue = np.array([s.no_ue_probability ** num_lines for s in solutions])
        fit_scaled = lam / horizon_hours * FIT_HOURS * spec.capacity_scale
        if count_limit is not None:
            lo, hi = _poisson_predictive(lam, constraints.confidence)

        for pos, (index, device) in enumerate(entries):
            verdicts = []
            escalation = []
            if count_limit is not None:
                if hi[pos] <= count_limit:
                    verdicts.append(PASS)
                elif lo[pos] > count_limit:
                    verdicts.append(FAIL)
                else:
                    verdicts.append(UNCERTAIN)
                    escalation.append("fit_ci_overlap")
            if constraints.min_availability is not None:
                margin = constraints.availability_margin
                if no_ue[pos] >= constraints.min_availability + margin:
                    verdicts.append(PASS)
                elif no_ue[pos] < constraints.min_availability - margin:
                    verdicts.append(FAIL)
                else:
                    verdicts.append(UNCERTAIN)
                    escalation.append("availability_margin")

            if FAIL in verdicts:
                classification, reasons = FAIL, ()
            elif UNCERTAIN in verdicts:
                classification, reasons = UNCERTAIN, tuple(escalation)
            else:
                classification, reasons = PASS, ()
            by_index[index] = ScreenDecision(
                index=index,
                lot=device.lot,
                classification=classification,
                reasons=reasons,
                expected_ue=float(lam[pos]),
                expected_writes=float(writes[pos]),
                no_ue_probability=float(no_ue[pos]),
                fit_scaled=float(fit_scaled[pos]),
            )
    return [by_index[index] for index in range(start, stop)]


def plan_screen(
    spec: FleetSpec,
    constraints: ScreenConstraints,
    jobs: int = 1,
    batch: bool = True,
) -> ScreenPlan:
    """Classify every device of ``spec`` against ``constraints``.

    Pure and deterministic: the result depends only on the spec and the
    constraints - not on ``jobs`` (contiguous chunks fan out over
    :func:`repro.sim.parallel.parallel_map` and merge back in device
    order) and not on ``batch`` beyond rounding noise (``batch=False``
    replays the classification through per-device scalar renewal solves;
    the ``surrogate_batch`` equivalence law pins the agreement).  Also
    publishes ``screen_*`` gauges into the process metrics registry.
    """
    jobs = max(1, int(jobs))
    if jobs > 1 and spec.devices > 1:
        chunks = [
            (spec, constraints, chunk_start, chunk_stop, batch)
            for chunk_start, chunk_stop in _chunk_bounds(spec.devices, jobs)
        ]
        decisions = [
            decision
            for chunk in parallel_map(_plan_chunk, chunks, jobs=jobs)
            for decision in chunk
        ]
    else:
        decisions = _plan_decisions(spec, constraints, 0, spec.devices, batch)

    plan = ScreenPlan(
        spec_hash=spec.content_hash(),
        constraints=constraints,
        decisions=tuple(decisions),
    )
    counts = plan.counts()
    GLOBAL_REGISTRY.gauge("screen_devices").set(plan.devices)
    GLOBAL_REGISTRY.gauge("screen_surrogate").set(len(plan.surrogate_indices))
    GLOBAL_REGISTRY.gauge("screen_escalated").set(len(plan.escalated))
    GLOBAL_REGISTRY.gauge("screen_pass").set(counts[PASS])
    GLOBAL_REGISTRY.gauge("screen_fail").set(counts[FAIL])
    GLOBAL_REGISTRY.gauge("screen_uncertain").set(counts[UNCERTAIN])
    GLOBAL_REGISTRY.gauge("screen_mc_fraction").set(plan.mc_fraction)
    return plan
