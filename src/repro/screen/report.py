"""Screened-fleet aggregation: exact surrogate mass + Garwood-banded MC.

A screened campaign resolves most devices analytically and Monte-Carlos
only the escalated subset, so its report composes two populations:

* **surrogate devices** contribute their *exact expectations* - the
  finite-horizon renewal solution's expected UE count and UE-free
  probability carry no sampling error, so they add no width to the
  confidence band;
* **MC devices** contribute *observed counts*, whose sampling error is
  what the band must cover: the exact Poisson (Garwood) interval on the
  MC UE total, and the Wilson interval on MC UE-free devices.

The composed FIT band is therefore

``(sum_surrogate lambda_i + garwood(mc_ue)) / device_hours * 1e9``

- MC-calibrated bounds around a mostly-analytic point estimate.  (The
surrogate term is an expectation, not a realization; treating it as
exact is what screening *means*, and the equivalence harness is what
earns that treatment - see ``docs/screening.md``.)

Every report records per-device provenance (surrogate vs MC, the
escalation reason) and re-checks the partition invariant on
construction: surrogate indices and MC record indices must tile the
fleet exactly, else :class:`~repro.screen.planner.ScreenInvariantError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Iterable

from ..analysis.stats import binomial_interval, poisson_interval
from ..fleet.report import FIT_HOURS, DeviceRecord, FleetReport, aggregate_partial
from ..fleet.spec import FleetSpec
from .planner import MC, ScreenInvariantError, ScreenPlan


@dataclass(frozen=True)
class ScreenedFleetReport:
    """The deterministic aggregate of one screened campaign."""

    name: str
    devices: int
    device_hours: float
    capacity_gib_per_device: float
    #: Devices resolved by the surrogate / escalated to MC.
    surrogate_devices: int
    mc_devices: int
    mc_fraction: float
    #: Exact expected UE count summed over surrogate devices.
    surrogate_expected_ue: float
    #: Observed UE count over the MC subset.
    mc_uncorrectable: int
    #: Composed FIT point estimate and MC-calibrated band.
    fit: float
    fit_low: float
    fit_high: float
    fit_scaled: float
    fit_scaled_low: float
    fit_scaled_high: float
    #: Composed availability (exact surrogate probabilities + observed
    #: MC survivors) with the MC share Wilson-banded.
    availability: float
    availability_low: float
    availability_high: float
    #: Per-device provenance rows (index, lot, method, classification,
    #: reasons, expected vs observed UE).
    provenance: tuple[dict, ...]
    #: Classification counts from the plan (pass / fail / uncertain).
    classifications: dict
    #: The MC subset aggregated on its own (``None`` when nothing
    #: escalated) - energy, per-lot counters, survival for that share.
    mc_report: FleetReport | None

    @property
    def escalation_ratio(self) -> float:
        """MC device-runs saved: fleet size over MC runs (inf when 0 MC)."""
        return self.devices / self.mc_devices if self.mc_devices else float("inf")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "devices": self.devices,
            "device_hours": self.device_hours,
            "capacity_gib_per_device": self.capacity_gib_per_device,
            "surrogate_devices": self.surrogate_devices,
            "mc_devices": self.mc_devices,
            "mc_fraction": self.mc_fraction,
            "surrogate_expected_ue": self.surrogate_expected_ue,
            "mc_uncorrectable": self.mc_uncorrectable,
            "fit": self.fit,
            "fit_low": self.fit_low,
            "fit_high": self.fit_high,
            "fit_scaled": self.fit_scaled,
            "fit_scaled_low": self.fit_scaled_low,
            "fit_scaled_high": self.fit_scaled_high,
            "availability": self.availability,
            "availability_low": self.availability_low,
            "availability_high": self.availability_high,
            "classifications": dict(self.classifications),
            "provenance": [dict(row) for row in self.provenance],
            "mc_report": None if self.mc_report is None else self.mc_report.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def compose_screened_report(
    spec: FleetSpec,
    plan: ScreenPlan,
    mc_records: Iterable[DeviceRecord],
) -> ScreenedFleetReport:
    """Fold a screen plan and its MC escalation records into one report.

    Raises :class:`ScreenInvariantError` unless the plan covers exactly
    ``spec``'s fleet and ``mc_records`` are exactly one per escalated
    device - surrogate devices plus MC devices must tile the fleet.
    """
    if plan.spec_hash != spec.content_hash():
        raise ScreenInvariantError(
            "screen plan was computed for a different spec "
            f"({plan.spec_hash[:12]} != {spec.content_hash()[:12]})"
        )
    if plan.devices != spec.devices:
        raise ScreenInvariantError(
            f"screen plan covers {plan.devices} devices, spec has {spec.devices}"
        )
    records = sorted(mc_records, key=lambda record: record.index)
    mc_indices = tuple(record.index for record in records)
    if len(set(mc_indices)) != len(mc_indices):
        raise ScreenInvariantError("duplicate MC records in screened campaign")
    if mc_indices != plan.escalated:
        raise ScreenInvariantError(
            f"MC records cover {len(mc_indices)} devices but the plan "
            f"escalated {len(plan.escalated)}; surrogate + MC must tile "
            "the fleet"
        )
    surrogate = set(plan.surrogate_indices)
    if surrogate | set(mc_indices) != set(range(spec.devices)) or (
        surrogate & set(mc_indices)
    ):
        raise ScreenInvariantError(
            "surrogate and MC device sets do not partition the fleet"
        )

    horizon_hours = spec.base_config.horizon / 3600.0
    device_hours = spec.devices * horizon_hours
    by_index = {record.index: record for record in records}

    surrogate_ue = 0.0
    surrogate_p0 = 0.0
    provenance = []
    for decision in plan.decisions:
        observed = None
        if decision.method == MC:
            observed = by_index[decision.index].uncorrectable
        else:
            surrogate_ue += decision.expected_ue
            surrogate_p0 += decision.no_ue_probability
        provenance.append(
            {
                "index": decision.index,
                "lot": decision.lot,
                "method": decision.method,
                "classification": decision.classification,
                "reasons": list(decision.reasons),
                "expected_ue": decision.expected_ue,
                "observed_ue": observed,
            }
        )

    mc_ue = sum(record.uncorrectable for record in records)
    ue_low, ue_high = poisson_interval(mc_ue) if records else (0.0, 0.0)
    fit = (surrogate_ue + mc_ue) / device_hours * FIT_HOURS
    fit_low = (surrogate_ue + ue_low) / device_hours * FIT_HOURS
    fit_high = (surrogate_ue + ue_high) / device_hours * FIT_HOURS
    scale = spec.capacity_scale

    mc_survivors = sum(1 for record in records if record.uncorrectable == 0)
    availability = (surrogate_p0 + mc_survivors) / spec.devices
    if records:
        # Wilson-band only the MC share; the surrogate share is exact.
        mc_avail_low, mc_avail_high = binomial_interval(mc_survivors, len(records))
        availability_low = (surrogate_p0 + mc_avail_low * len(records)) / spec.devices
        availability_high = (surrogate_p0 + mc_avail_high * len(records)) / spec.devices
    else:
        availability_low = availability_high = availability

    mc_report = aggregate_partial(spec, records) if records else None

    return ScreenedFleetReport(
        name=spec.name,
        devices=spec.devices,
        device_hours=device_hours,
        capacity_gib_per_device=spec.capacity_gib_per_device,
        surrogate_devices=len(surrogate),
        mc_devices=len(records),
        mc_fraction=plan.mc_fraction,
        surrogate_expected_ue=surrogate_ue,
        mc_uncorrectable=mc_ue,
        fit=fit,
        fit_low=fit_low,
        fit_high=fit_high,
        fit_scaled=fit * scale,
        fit_scaled_low=fit_low * scale,
        fit_scaled_high=fit_high * scale,
        availability=availability,
        availability_low=availability_low,
        availability_high=availability_high,
        provenance=tuple(provenance),
        classifications=plan.counts(),
        mc_report=mc_report,
    )
