"""Analytic-surrogate fleet screening with Monte-Carlo escalation.

The campaign engine (:mod:`repro.fleet`) Monte-Carlos every device; this
package makes million-device campaigns tractable by resolving most
devices through the *exact* finite-horizon renewal surrogate
(:meth:`repro.sim.renewal.RenewalModel.finite_horizon`) and spending MC
only where the math is uncertain:

* :mod:`repro.screen.planner` - classify every lot-sampled device point
  as ``pass`` / ``fail`` / ``uncertain`` against FIT / availability
  constraints (:func:`plan_screen`); uncertain devices - a constraint-
  straddling predictive interval or an out-of-regime configuration -
  escalate to the MC engine;
* :mod:`repro.screen.campaign` - :func:`run_screened_campaign`, the
  batch path reusing :class:`repro.fleet.campaign.CampaignRunner` (with
  its checkpoint journal and bit-identical resume) over the escalated
  subset only;
* :mod:`repro.screen.report` - :class:`ScreenedFleetReport`, composing
  exact surrogate expectations with Garwood/Wilson-banded MC counts and
  recording per-device provenance.

CLI: ``pcm-scrub fleet --screen`` and ``pcm-scrub submit --screen``; the
validity regime, escalation rules, and bound-composition math live in
``docs/screening.md``.
"""

from __future__ import annotations

from .campaign import ScreenedOutcome, run_screened_campaign
from .planner import (
    FAIL,
    MC,
    PASS,
    SURROGATE,
    UNCERTAIN,
    ScreenConstraints,
    ScreenDecision,
    ScreenError,
    ScreenInvariantError,
    ScreenPlan,
    plan_screen,
    regime_reasons,
)
from .report import ScreenedFleetReport, compose_screened_report

__all__ = [
    "FAIL",
    "MC",
    "PASS",
    "SURROGATE",
    "UNCERTAIN",
    "ScreenConstraints",
    "ScreenDecision",
    "ScreenError",
    "ScreenInvariantError",
    "ScreenPlan",
    "ScreenedFleetReport",
    "ScreenedOutcome",
    "compose_screened_report",
    "plan_screen",
    "regime_reasons",
    "run_screened_campaign",
]
