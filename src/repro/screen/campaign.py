"""Screened campaign execution: surrogate first, MC only where uncertain.

:func:`run_screened_campaign` is the batch entry point behind
``pcm-scrub fleet --screen``: plan the screen, fan *only the escalated
subset* through the existing :class:`repro.fleet.campaign.CampaignRunner`
(same process pool, same checkpoint journal, same bit-identical resume),
and compose the :class:`~repro.screen.report.ScreenedFleetReport`.

Durability rides entirely on the campaign journal: the screen plan is a
pure function of ``(spec, constraints)`` and is simply recomputed on
resume, so a killed screened campaign resumes from its journal exactly
like an unscreened one - and the kill/resume bit-identity tests hold
verbatim on the screened path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..fleet.campaign import CampaignOutcome, CampaignRunner
from ..fleet.spec import FleetSpec
from .planner import ScreenConstraints, ScreenPlan, plan_screen
from .report import ScreenedFleetReport, compose_screened_report


@dataclass(frozen=True)
class ScreenedOutcome:
    """What one screened-campaign invocation accomplished."""

    #: Every device's classification and surrogate evaluation.
    plan: ScreenPlan
    #: The composed report; ``None`` when the MC escalation was
    #: checkpointed before completion (resume to finish).
    report: ScreenedFleetReport | None
    #: The MC subset's execution outcome; ``None`` when nothing escalated.
    mc_outcome: CampaignOutcome | None

    @property
    def finished(self) -> bool:
        return self.report is not None

    @property
    def mc_devices(self) -> int:
        return len(self.plan.escalated)


def run_screened_campaign(
    spec: FleetSpec,
    constraints: ScreenConstraints,
    jobs: int = 1,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    stop_after: int | None = None,
) -> ScreenedOutcome:
    """Screen the fleet, MC the uncertain subset, compose the report.

    ``jobs`` fans out both phases: the surrogate planning pass (chunked
    ``plan_screen``, deterministic merge) and the MC escalation pool.
    """
    plan = plan_screen(spec, constraints, jobs=jobs)
    escalated = plan.escalated
    if not escalated:
        report = compose_screened_report(spec, plan, ())
        return ScreenedOutcome(plan=plan, report=report, mc_outcome=None)

    outcome = CampaignRunner(
        spec,
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        stop_after=stop_after,
        indices=escalated,
    ).run()
    if not outcome.finished:
        return ScreenedOutcome(plan=plan, report=None, mc_outcome=outcome)
    report = compose_screened_report(spec, plan, outcome.records)
    return ScreenedOutcome(plan=plan, report=report, mc_outcome=outcome)
