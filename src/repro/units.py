"""Unit helpers and SI formatting used throughout the library.

All simulation time is kept in **seconds** (floats), energy in **joules**,
and resistance in **ohms** (usually manipulated in log10 space).  These
helpers exist so that configuration code reads like the paper ("a scrub
interval of 128 ms", "a one-year horizon") instead of like arithmetic.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time constants (seconds)
# ---------------------------------------------------------------------------

NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
#: Julian year, the horizon unit used for reliability targets.
YEAR = 365.25 * DAY

# ---------------------------------------------------------------------------
# Energy constants (joules)
# ---------------------------------------------------------------------------

PICOJOULE = 1e-12
NANOJOULE = 1e-9
MICROJOULE = 1e-6
MILLIJOULE = 1e-3

# ---------------------------------------------------------------------------
# Size constants
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Boltzmann constant in eV/K, used by the Arrhenius drift acceleration.
BOLTZMANN_EV = 8.617333262e-5


def seconds(value: float, unit: float = SECOND) -> float:
    """Convert ``value`` expressed in ``unit`` into seconds."""
    return value * unit


def format_seconds(t: float) -> str:
    """Render a duration with a human-appropriate unit.

    >>> format_seconds(0.128)
    '128ms'
    >>> format_seconds(3600)
    '1h'
    """
    if t < 0:
        return "-" + format_seconds(-t)
    if t == 0:
        return "0s"
    scales = [
        (YEAR, "yr"),
        (WEEK, "wk"),
        (DAY, "d"),
        (HOUR, "h"),
        (MINUTE, "min"),
        (SECOND, "s"),
        (MILLISECOND, "ms"),
        (MICROSECOND, "us"),
        (NANOSECOND, "ns"),
    ]
    for scale, label in scales:
        if t >= scale:
            value = t / scale
            return _trim_number(value) + label
    return f"{t:.3g}s"


def format_energy(e: float) -> str:
    """Render an energy in the closest SI unit.

    >>> format_energy(2e-12)
    '2pJ'
    """
    if e < 0:
        return "-" + format_energy(-e)
    if e == 0:
        return "0J"
    scales = [
        (1.0, "J"),
        (MILLIJOULE, "mJ"),
        (MICROJOULE, "uJ"),
        (NANOJOULE, "nJ"),
        (PICOJOULE, "pJ"),
    ]
    for scale, label in scales:
        if e >= scale:
            return _trim_number(e / scale) + label
    return f"{e:.3g}J"


def format_bytes(n: int) -> str:
    """Render a byte count using binary units.

    >>> format_bytes(2 * 1024 * 1024)
    '2MiB'
    """
    if n < 0:
        return "-" + format_bytes(-n)
    for scale, label in [(GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")]:
        if n >= scale:
            return _trim_number(n / scale) + label
    return f"{n}B"


def format_count(n: float) -> str:
    """Render a large count with K/M/G suffixes.

    >>> format_count(3_200_000)
    '3.2M'
    """
    if n < 0:
        return "-" + format_count(-n)
    for scale, label in [(1e9, "G"), (1e6, "M"), (1e3, "K")]:
        if n >= scale:
            return _trim_number(n / scale) + label
    return _trim_number(n)


def _trim_number(value: float) -> str:
    """Format with up to 3 significant digits, dropping trailing zeros."""
    if value == int(value) and abs(value) < 1000:
        return str(int(value))
    text = f"{value:.3g}"
    return text


def log10_safe(x: float) -> float:
    """``log10`` that maps 0 to ``-inf`` instead of raising."""
    if x <= 0:
        return -math.inf
    return math.log10(x)


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty clamp range [{lo}, {hi}]")
    return max(lo, min(hi, x))
