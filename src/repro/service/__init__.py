"""Sharded campaign service: fleet jobs over a crash-tolerant worker pool.

``repro.fleet`` answers "run this campaign here, now, in one process
tree".  This package lifts that to a small filesystem-coordinated
service - no broker, no sockets, just a campaign *directory* that any
number of worker processes (across hosts sharing the filesystem) drain
cooperatively:

* :mod:`repro.service.shards` - deterministic, apportionment-stable
  planning of the device index space into contiguous shards;
* :mod:`repro.service.jobs` - the campaign directory format
  (``submit_campaign`` / ``load_campaign``), spec-hash-bound; screened
  submissions (``pcm-scrub submit --screen``) persist the surrogate plan
  as ``screen.json`` and shard only the escalated subset;
* :mod:`repro.service.leases` - exclusive-create shard claims with
  heartbeats and stale-lease stealing;
* :mod:`repro.service.worker` - the claim/run loop, driving each device
  through mid-horizon :mod:`repro.sim.snapshot` checkpoints;
* :mod:`repro.service.supervisor` - ``serve``: a spawn-context worker
  pool that repairs and replaces crashed workers;
* :mod:`repro.service.status` - streaming partial reports (monotone
  device counts; the finished stream equals the batch report
  byte-for-byte), ``watch``, and ``repair``.

CLI: ``pcm-scrub submit | serve | status | watch | repair``; see
``docs/service.md`` for the lifecycle and crash-safety arguments.
"""

from __future__ import annotations

from .jobs import Campaign, ServiceError, load_campaign, submit_campaign
from .leases import DEFAULT_LEASE_TIMEOUT, Lease
from .shards import CampaignShard, plan_shards, plan_subset_shards
from .status import (
    campaign_status,
    final_report,
    repair_campaign,
    watch_campaign,
)
from .supervisor import ServeFailed, serve_campaign
from .worker import run_shard, run_worker

__all__ = [
    "Campaign",
    "CampaignShard",
    "DEFAULT_LEASE_TIMEOUT",
    "Lease",
    "ServeFailed",
    "ServiceError",
    "campaign_status",
    "final_report",
    "load_campaign",
    "plan_shards",
    "plan_subset_shards",
    "repair_campaign",
    "run_shard",
    "run_worker",
    "serve_campaign",
    "submit_campaign",
    "watch_campaign",
]
