"""The ``serve`` supervisor: a worker pool with crash detection.

``serve_campaign`` spawns N worker processes (spawn context - same
bit-identical-under-parallelism regime as :mod:`repro.sim.parallel`)
over one campaign directory and babysits them: a worker that dies - any
nonzero exit, including SIGKILL - gets its shards re-queued through
:func:`repro.service.status.repair_campaign` and is replaced, up to
``max_restarts`` replacements total.  Because every worker checkpoints
each device mid-horizon and journals each completed device durably, a
replacement resumes from at most ``snapshot_budget`` events of lost
work; the final report is byte-identical to an undisturbed run.

The supervisor exits when the campaign finishes (normally all workers
then exit zero on their own) or when the restart budget is exhausted
with work still pending - the latter raises so operators see a wedged
campaign instead of a silent partial result.
"""

from __future__ import annotations

import logging
import multiprocessing
import time as _time

from ..sim.snapshot import DEFAULT_SNAPSHOT_BUDGET
from . import leases
from .jobs import load_campaign
from .status import campaign_status, repair_campaign
from .worker import run_worker

logger = logging.getLogger(__name__)

#: Replacement workers the supervisor will spawn before giving up.
DEFAULT_MAX_RESTARTS = 3


class ServeFailed(RuntimeError):
    """Worker restarts were exhausted with devices still pending."""


def _worker_main(
    root: str,
    worker_id: str,
    lease_timeout: float,
    snapshot_budget: int,
) -> None:
    run_worker(
        root,
        worker_id=worker_id,
        lease_timeout=lease_timeout,
        snapshot_budget=snapshot_budget,
    )


def serve_campaign(
    root,
    workers: int = 2,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
    lease_timeout: float = leases.DEFAULT_LEASE_TIMEOUT,
    snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
    poll_seconds: float = 0.25,
) -> dict:
    """Run the campaign under a supervised worker pool; return a summary."""
    campaign = load_campaign(root)
    workers = max(1, workers)
    context = multiprocessing.get_context("spawn")

    def spawn(index: int, generation: int):
        process = context.Process(
            target=_worker_main,
            args=(
                str(root),
                f"serve-{index}g{generation}",
                lease_timeout,
                snapshot_budget,
            ),
            daemon=True,
        )
        process.start()
        return process

    pool = {index: spawn(index, 0) for index in range(workers)}
    generations = {index: 0 for index in range(workers)}
    restarts = 0
    deaths = 0
    try:
        while True:
            status = campaign_status(root, lease_timeout=lease_timeout,
                                     include_report=False)
            if status["finished"]:
                break
            for index, process in list(pool.items()):
                if process.is_alive():
                    continue
                if process.exitcode == 0:
                    # Finished cleanly but the campaign has pending work:
                    # another worker holds it; this slot simply retires.
                    pool.pop(index)
                    continue
                deaths += 1
                logger.warning(
                    "serve: worker %d died (exit %s); repairing and %s",
                    index, process.exitcode,
                    "replacing" if restarts < max_restarts else "NOT replacing",
                )
                repair_campaign(root, lease_timeout=lease_timeout)
                pool.pop(index)
                if restarts < max_restarts:
                    restarts += 1
                    generations[index] += 1
                    pool[index] = spawn(index, generations[index])
            if not pool:
                final = campaign_status(root, lease_timeout=lease_timeout,
                                        include_report=False)
                if final["finished"]:
                    break
                raise ServeFailed(
                    f"campaign {campaign.spec.name}: all workers gone with "
                    f"{final['devices_total'] - final['devices_done']} devices "
                    f"pending (restart budget {max_restarts} exhausted)"
                )
            _time.sleep(poll_seconds)
    finally:
        for process in pool.values():
            process.join(timeout=2 * lease_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    status = campaign_status(root, lease_timeout=lease_timeout,
                             include_report=False)
    return {
        "finished": status["finished"],
        "devices_done": status["devices_done"],
        "devices_total": status["devices_total"],
        "workers": workers,
        "worker_deaths": deaths,
        "restarts": restarts,
    }
