"""The worker loop: claim a shard, run its devices resumably, repeat.

A worker is a plain function over a campaign directory - no sockets, no
broker.  It scans the shard plan in order, skips complete shards, breaks
stale leases (dead workers' shards re-queue automatically), and claims
the first free shard via exclusive lease creation.  Within a shard it
drives each device through :func:`repro.sim.snapshot.run_resumable`, so
a multi-year-horizon device suspends to ``snapshots/device-N.npz`` every
``snapshot_budget`` events and a successor worker resumes it
*mid-horizon*, bit-identically, instead of restarting the device.

Durability ordering per device: journal append (fsynced) first, then
snapshot deletion - a kill between the two leaves a snapshot that is
simply ignored (the journal says the device is done).  Heartbeats ride
on the same callbacks as snapshots, so "lease is fresh" implies "work
is checkpointed no older than the heartbeat", which is what makes the
lease timeout a bound on lost work.
"""

from __future__ import annotations

import logging
import time as _time
import uuid

from ..fleet.checkpoint import append_device, load_journal, write_header
from ..fleet.report import DeviceRecord
from ..obs.metrics import GLOBAL_REGISTRY
from ..sim.snapshot import DEFAULT_SNAPSHOT_BUDGET, run_resumable
from . import leases
from .jobs import Campaign, _write_json, load_campaign
from .shards import CampaignShard

logger = logging.getLogger(__name__)

#: Process-lifetime worker counters (devices and shards this process
#: completed, lease steals it performed).
WORKER_COUNTERS = GLOBAL_REGISTRY.group(
    "service_worker", ("devices", "shards", "steals")
)


class _Heartbeat:
    """Throttled lease refresher, callable from snapshot checkpoints."""

    def __init__(self, lease_path, lease: leases.Lease, min_interval: float):
        self.lease_path = lease_path
        self.lease = lease
        self.min_interval = min_interval
        self._last = 0.0

    def beat(self) -> None:
        now = _time.monotonic()
        if now - self._last < self.min_interval:
            return
        self.lease = leases.refresh(self.lease_path, self.lease)
        self._last = now


def run_shard(
    campaign: Campaign,
    shard: CampaignShard,
    heartbeat: _Heartbeat | None = None,
    snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
) -> int:
    """Run (or finish) one shard's devices; returns devices executed now.

    Resumes from whatever the shard journal already holds, and from any
    mid-horizon device snapshot left by a previous (possibly killed)
    worker.  Idempotent: running a complete shard executes nothing and
    just (re)writes the completion marker.
    """
    spec = campaign.spec
    journal = campaign.journal_path(shard)
    if journal.exists():
        _, journaled = load_journal(journal, expected_hash=campaign.spec_hash)
        done = set(journaled)
    else:
        write_header(journal, campaign.spec_hash, spec.name)
        done = set()

    workload = spec.workload()
    started = _time.perf_counter()
    executed = 0
    for index in shard.indices:
        if index in done:
            continue
        device = spec.device_spec(index)
        run_spec = device.run_spec(*spec.policy_for(device.lot), workload)
        snapshot_path = campaign.snapshot_path(index)
        result = run_resumable(
            run_spec.build_policy(),
            run_spec.config,
            run_spec.rates,
            snapshot_path=snapshot_path,
            fingerprint=campaign.device_fingerprint(index),
            snapshot_budget=snapshot_budget,
            on_checkpoint=heartbeat.beat if heartbeat is not None else None,
        )
        record = DeviceRecord.from_result(device, result).normalized()
        append_device(journal, record.to_dict())
        snapshot_path.unlink(missing_ok=True)
        executed += 1
        WORKER_COUNTERS["devices"] += 1
        if heartbeat is not None:
            heartbeat.beat()

    _write_json(
        campaign.marker_path(shard),
        {
            "shard": shard.shard_id,
            "devices": shard.count,
            "executed": executed,
            "wall_seconds": _time.perf_counter() - started,
            "worker": heartbeat.lease.worker if heartbeat is not None else None,
        },
    )
    WORKER_COUNTERS["shards"] += 1
    return executed


def run_worker(
    root,
    worker_id: str | None = None,
    lease_timeout: float = leases.DEFAULT_LEASE_TIMEOUT,
    snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
    poll_seconds: float = 0.2,
    wait_for_complete: bool = True,
) -> dict:
    """Claim and run shards until the campaign is complete.

    With ``wait_for_complete`` (the service default) a worker that finds
    every incomplete shard leased elsewhere keeps polling - so it picks
    up a dead peer's shard the moment its lease expires.  With it off,
    the worker returns as soon as it can make no immediate progress
    (useful for one-shot "drain what you can" invocations).
    """
    campaign = load_campaign(root)
    if worker_id is None:
        worker_id = f"worker-{uuid.uuid4().hex[:8]}"
    heartbeat_interval = max(0.05, lease_timeout / 10.0)

    shards_done: list[int] = []
    devices_executed = 0
    while True:
        progress = False
        all_complete = True
        for shard in campaign.shards:
            if campaign.shard_complete(shard):
                continue
            all_complete = False
            lease_path = campaign.lease_path(shard)
            broken = leases.break_if_stale(lease_path, lease_timeout)
            if broken is not None:
                WORKER_COUNTERS["steals"] += 1
                logger.warning(
                    "worker %s: broke stale lease on %s (held by %s, "
                    "heartbeat %.1fs ago)",
                    worker_id, shard.name, broken.worker, broken.age(),
                )
            lease = leases.try_acquire(lease_path, worker_id)
            if lease is None:
                continue
            heart = _Heartbeat(lease_path, lease, heartbeat_interval)
            try:
                executed = run_shard(
                    campaign, shard, heart, snapshot_budget=snapshot_budget
                )
            finally:
                leases.release(lease_path)
            logger.info(
                "worker %s: finished %s (%d devices run)",
                worker_id, shard.name, executed,
            )
            shards_done.append(shard.shard_id)
            devices_executed += executed
            progress = True
        if all_complete:
            break
        if not progress:
            if not wait_for_complete:
                break
            _time.sleep(poll_seconds)

    return {
        "worker": worker_id,
        "shards": shards_done,
        "devices_executed": devices_executed,
    }
