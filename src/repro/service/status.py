"""Streaming campaign views: status snapshots, watch loops, final reports.

``campaign_status`` is a pure read over the campaign directory: it
parses the append-only shard journals, merges their records
(:func:`repro.fleet.report.merge_records` - a union, so any bracketing
aggregates identically), and rolls the union into a partial
:class:`repro.fleet.report.FleetReport` via ``aggregate_partial``.
Journals only ever grow, so successive status snapshots have monotone
non-decreasing device counts; once every device is present the partial
path collapses to the exact :func:`repro.fleet.report.aggregate`, making
the final streamed report byte-identical to a batch ``pcm-scrub fleet``
run of the same spec.

Each call also publishes service health into the process metrics
registry (:data:`repro.obs.metrics.GLOBAL_REGISTRY`): queue depth,
live/stale worker counts, completed devices/shards, and mean shard
latency from the ``.done`` markers.
"""

from __future__ import annotations

import json
import math
import time as _time

from ..fleet.report import aggregate, aggregate_partial, merge_records
from ..obs.metrics import GLOBAL_REGISTRY
from ..screen import compose_screened_report
from . import leases
from .jobs import load_campaign


def campaign_status(
    root,
    lease_timeout: float = leases.DEFAULT_LEASE_TIMEOUT,
    include_report: bool = True,
) -> dict:
    """One JSON-able snapshot of campaign progress.

    ``report`` is the partial (or, when finished, final) fleet report as
    a dict, or ``None`` while no device has completed yet.  For screened
    campaigns ``devices_total`` counts the *escalated* subset (the
    service's MC work), ``screen`` summarizes the surrogate plan, and the
    finished ``report`` is the composed
    :class:`~repro.screen.ScreenedFleetReport`; partial snapshots report
    the MC subset only.
    """
    campaign = load_campaign(root)
    shard_rows = []
    all_records = {}
    shard_latencies = []
    queue_depth = 0
    workers_alive = 0
    workers_stale = 0
    for shard in campaign.shards:
        records = campaign.shard_records(shard)
        all_records = merge_records(all_records, records)
        complete = len(records) == shard.count
        lease = leases.read_lease(campaign.lease_path(shard))
        if complete:
            state = "complete"
        elif lease is None:
            state = "queued"
            queue_depth += 1
        elif lease.is_stale(lease_timeout):
            state = "stalled"
            workers_stale += 1
        else:
            state = "running"
            workers_alive += 1
        marker = campaign.marker_path(shard)
        wall = None
        if marker.exists():
            try:
                wall = float(json.loads(marker.read_text())["wall_seconds"])
                shard_latencies.append(wall)
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                wall = None
        shard_rows.append(
            {
                "shard": shard.shard_id,
                "range": [shard.start, shard.stop],
                "done": len(records),
                "total": shard.count,
                "state": state,
                "worker": lease.worker if lease is not None else None,
                "heartbeat_age": (
                    round(lease.age(), 3) if lease is not None else None
                ),
                "wall_seconds": wall,
            }
        )

    targets = campaign.target_indices
    devices_done = len(all_records)
    finished = devices_done == len(targets)
    mean_latency = (
        math.fsum(shard_latencies) / len(shard_latencies)
        if shard_latencies
        else None
    )

    GLOBAL_REGISTRY.gauge("service_queue_depth").set(queue_depth)
    GLOBAL_REGISTRY.gauge("service_workers_alive").set(workers_alive)
    GLOBAL_REGISTRY.gauge("service_workers_stale").set(workers_stale)
    GLOBAL_REGISTRY.gauge("service_devices_done").set(devices_done)
    GLOBAL_REGISTRY.gauge("service_shards_complete").set(
        sum(1 for row in shard_rows if row["state"] == "complete")
    )
    if mean_latency is not None:
        GLOBAL_REGISTRY.gauge("service_shard_wall_seconds_mean").set(mean_latency)

    report = None
    if include_report:
        if campaign.screen is not None and finished:
            report = compose_screened_report(
                campaign.spec, campaign.screen, all_records.values()
            ).to_dict()
        elif all_records:
            report = aggregate_partial(campaign.spec, all_records.values()).to_dict()

    screen_summary = None
    if campaign.screen is not None:
        screen_summary = {
            "devices": campaign.screen.devices,
            "counts": campaign.screen.counts(),
            "mc_fraction": campaign.screen.mc_fraction,
        }

    return {
        "name": campaign.spec.name,
        "spec_hash": campaign.spec_hash,
        "devices_done": devices_done,
        "devices_total": len(targets),
        "finished": finished,
        "queue_depth": queue_depth,
        "workers_alive": workers_alive,
        "workers_stale": workers_stale,
        "shard_wall_seconds_mean": mean_latency,
        "screen": screen_summary,
        "shards": shard_rows,
        "report": report,
    }


def final_report(root):
    """The completed campaign's report.

    A :class:`~repro.fleet.report.FleetReport` for full-MC campaigns, a
    :class:`~repro.screen.ScreenedFleetReport` for screened ones.
    Raises :class:`~repro.fleet.report.FleetInvariantError` (or
    :class:`~repro.screen.ScreenInvariantError`) while any target device
    is still missing - use :func:`campaign_status` for partials.
    """
    campaign = load_campaign(root)
    all_records = {}
    for shard in campaign.shards:
        all_records = merge_records(all_records, campaign.shard_records(shard))
    if campaign.screen is not None:
        return compose_screened_report(
            campaign.spec, campaign.screen, all_records.values()
        )
    return aggregate(campaign.spec, all_records.values())


def watch_campaign(
    root,
    interval: float = 1.0,
    timeout: float | None = None,
    on_status=None,
    lease_timeout: float = leases.DEFAULT_LEASE_TIMEOUT,
) -> dict:
    """Poll ``campaign_status`` until the campaign finishes.

    Calls ``on_status(status)`` after every poll (the CLI prints a
    progress line from it); returns the final status.  ``timeout`` bounds
    the wait in seconds; expiry raises :class:`TimeoutError` so a wedged
    campaign is loud, not silent.
    """
    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        status = campaign_status(root, lease_timeout=lease_timeout)
        if on_status is not None:
            on_status(status)
        if status["finished"]:
            return status
        if deadline is not None and _time.monotonic() > deadline:
            raise TimeoutError(
                f"campaign {status['name']} not finished after {timeout}s "
                f"({status['devices_done']}/{status['devices_total']} devices)"
            )
        _time.sleep(interval)


def repair_campaign(
    root, lease_timeout: float = leases.DEFAULT_LEASE_TIMEOUT
) -> dict:
    """Re-queue dead workers' shards and sweep orphaned snapshots.

    Breaks every stale lease (freeing those shards for the next worker
    scan) and deletes snapshots for devices the journals already record
    as complete - the kill-between-append-and-unlink leftovers.  Live
    leases and snapshots of genuinely in-flight devices are untouched,
    so repair is safe to run at any time, including while workers run.
    """
    campaign = load_campaign(root)
    freed = []
    for shard in campaign.shards:
        broken = leases.break_if_stale(campaign.lease_path(shard), lease_timeout)
        if broken is not None:
            freed.append(
                {
                    "shard": shard.shard_id,
                    "worker": broken.worker,
                    "heartbeat_age": round(broken.age(), 3),
                }
            )
    swept = []
    done_indices = set()
    for shard in campaign.shards:
        done_indices.update(campaign.shard_records(shard))
    for path in sorted(campaign.snapshots_dir.glob("device-*.npz")):
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        if index in done_indices:
            path.unlink(missing_ok=True)
            swept.append(index)
    return {"leases_broken": freed, "snapshots_swept": swept}
