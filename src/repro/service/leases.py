"""Shard leases: exclusive-create claim files with heartbeats.

A worker claims a shard by creating ``leases/<shard>.json`` with
``O_CREAT | O_EXCL`` - the filesystem arbitrates, exactly one claimant
wins.  While it holds the shard it refreshes the lease's ``heartbeat``
timestamp through an atomic temp-file + ``os.replace`` rewrite, so
readers never see a torn lease.  A lease whose heartbeat is older than
the timeout (or whose pid is provably dead on this host) is *stale*:
any worker - or an explicit ``pcm-scrub repair`` - may break it and
re-queue the shard.

The steal path (read, judge stale, unlink, re-acquire) has a classic
window: between the staleness read and the unlink, the original owner
could refresh.  That race is accepted deliberately rather than papered
over, because the journal layer makes it harmless: device records are
deterministic functions of ``(spec, index)`` and journals key by device
index, so two workers transiently driving one shard duplicate compute
but can never corrupt the record set or change the final report.  The
timeout only trades re-work latency against the odds of that window.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

#: Seconds without a heartbeat before a lease is presumed dead.  Workers
#: heartbeat at every device completion *and* every mid-device snapshot
#: checkpoint, so a healthy worker refreshes far more often than this.
DEFAULT_LEASE_TIMEOUT = 30.0


@dataclass(frozen=True)
class Lease:
    """The claim record stored in a lease file."""

    worker: str
    pid: int
    host: str
    acquired: float
    heartbeat: float

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "pid": self.pid,
            "host": self.host,
            "acquired": self.acquired,
            "heartbeat": self.heartbeat,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            worker=str(data["worker"]),
            pid=int(data["pid"]),
            host=str(data["host"]),
            acquired=float(data["acquired"]),
            heartbeat=float(data["heartbeat"]),
        )

    def age(self, now: float | None = None) -> float:
        return (time.time() if now is None else now) - self.heartbeat

    def is_stale(self, timeout: float, now: float | None = None) -> bool:
        """Heartbeat expired, or the owning process is dead on this host."""
        if self.age(now) > timeout:
            return True
        if self.host == socket.gethostname() and not _pid_alive(self.pid):
            return True
        return False


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def _write_lease(path: Path, lease: Lease, exclusive: bool) -> bool:
    payload = json.dumps(lease.to_dict(), sort_keys=True)
    if exclusive:
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return True
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return True


def try_acquire(path: str | Path, worker: str) -> Lease | None:
    """Claim the lease file exclusively; ``None`` when someone holds it."""
    path = Path(path)
    now = time.time()
    lease = Lease(
        worker=worker,
        pid=os.getpid(),
        host=socket.gethostname(),
        acquired=now,
        heartbeat=now,
    )
    return lease if _write_lease(path, lease, exclusive=True) else None


def refresh(path: str | Path, lease: Lease) -> Lease:
    """Atomically bump the lease's heartbeat (temp file + ``os.replace``)."""
    path = Path(path)
    refreshed = Lease(
        worker=lease.worker,
        pid=lease.pid,
        host=lease.host,
        acquired=lease.acquired,
        heartbeat=time.time(),
    )
    _write_lease(path, refreshed, exclusive=False)
    return refreshed


def read_lease(path: str | Path) -> Lease | None:
    """Parse a lease file; ``None`` when absent or unreadable."""
    try:
        data = json.loads(Path(path).read_text())
        return Lease.from_dict(data)
    except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
        return None


def release(path: str | Path) -> None:
    Path(path).unlink(missing_ok=True)


def break_if_stale(
    path: str | Path, timeout: float = DEFAULT_LEASE_TIMEOUT
) -> Lease | None:
    """Remove the lease if its holder looks dead; return the broken lease.

    Returns ``None`` when the lease is absent or still fresh.  Losing an
    unlink race with another breaker is fine - the shard just becomes
    claimable either way.
    """
    path = Path(path)
    lease = read_lease(path)
    if lease is None or not lease.is_stale(timeout):
        return None
    try:
        path.unlink()
    except FileNotFoundError:
        return None
    return lease
