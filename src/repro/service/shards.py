"""Deterministic shard planning over a fleet's device index space.

A shard is a slice of device indices.  The default form is a contiguous
half-open range ``[start, stop)``; screened campaigns
(:mod:`repro.screen`) instead shard an *explicit subset* - the escalated
device indices - which a shard carries as a sorted ``devices`` tuple.
Both planners use floor apportionment - shard ``k`` of ``n`` over ``d``
items covers positions ``[floor(k*d/n), floor((k+1)*d/n))`` - so a plan
is a pure function of its inputs: sizes differ by at most one, the union
is exactly the input index set, and re-planning with the same arguments
always yields the same slices.

Apportionment stability of the *results* is deeper than the plan:
:meth:`repro.fleet.spec.FleetSpec.device_spec` seeds every device from
``(campaign_seed, index)`` alone, so a device's simulation is identical
no matter which shard - or how many shards - it lands in.  Sharding is
purely an execution concern; the record set (and therefore the report)
is invariant under it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class CampaignShard:
    """One slice of a campaign's device index space.

    With ``devices`` unset the shard covers the contiguous range
    ``[start, stop)``; with it set the shard covers exactly that sorted
    index tuple (the screened-campaign subset form), and ``start`` /
    ``stop`` are its tight bounding range.
    """

    shard_id: int
    start: int
    stop: int
    devices: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"shard {self.shard_id}: need 0 <= start < stop, "
                f"got [{self.start}, {self.stop})"
            )
        if self.devices is not None:
            devices = tuple(int(i) for i in self.devices)
            if not devices:
                raise ValueError(f"shard {self.shard_id}: explicit devices is empty")
            if list(devices) != sorted(set(devices)):
                raise ValueError(
                    f"shard {self.shard_id}: explicit devices must be "
                    "sorted and unique"
                )
            if devices[0] != self.start or devices[-1] != self.stop - 1:
                raise ValueError(
                    f"shard {self.shard_id}: [start, stop) must tightly "
                    f"bound the explicit devices, got [{self.start}, "
                    f"{self.stop}) around {devices[0]}..{devices[-1]}"
                )
            object.__setattr__(self, "devices", devices)

    @property
    def indices(self) -> Sequence[int]:
        return range(self.start, self.stop) if self.devices is None else self.devices

    @property
    def count(self) -> int:
        return self.stop - self.start if self.devices is None else len(self.devices)

    @property
    def name(self) -> str:
        return f"shard-{self.shard_id:04d}"

    def to_dict(self) -> dict:
        out: dict = {"id": self.shard_id, "start": self.start, "stop": self.stop}
        if self.devices is not None:
            out["devices"] = list(self.devices)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignShard":
        devices = data.get("devices")
        return cls(
            shard_id=int(data["id"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            devices=None if devices is None else tuple(int(i) for i in devices),
        )


def plan_shards(devices: int, shards: int) -> list[CampaignShard]:
    """Split ``devices`` indices into ``shards`` contiguous slices.

    Empty slices are never emitted: asking for more shards than devices
    yields one single-device shard per device.
    """
    if devices <= 0:
        raise ValueError("devices must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, devices)
    plan = []
    for k in range(shards):
        start = k * devices // shards
        stop = (k + 1) * devices // shards
        plan.append(CampaignShard(shard_id=k, start=start, stop=stop))
    return plan


def plan_subset_shards(indices: Sequence[int], shards: int) -> list[CampaignShard]:
    """Split an explicit sorted device subset into ``shards`` slices.

    The screened-campaign planner: apportions *positions* in the subset
    exactly like :func:`plan_shards` apportions a contiguous range, so
    the plan is a pure function of ``(indices, shards)``.  Empty slices
    are never emitted.
    """
    subset = [int(i) for i in indices]
    if not subset:
        raise ValueError("subset must be non-empty")
    if subset != sorted(set(subset)) or subset[0] < 0:
        raise ValueError("subset indices must be sorted, unique, non-negative")
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, len(subset))
    plan = []
    for k in range(shards):
        chunk = subset[k * len(subset) // shards : (k + 1) * len(subset) // shards]
        plan.append(
            CampaignShard(
                shard_id=k,
                start=chunk[0],
                stop=chunk[-1] + 1,
                devices=tuple(chunk),
            )
        )
    return plan
