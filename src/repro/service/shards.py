"""Deterministic shard planning over a fleet's device index space.

A shard is a contiguous, half-open slice ``[start, stop)`` of device
indices.  The planner uses floor apportionment - shard ``k`` of ``n``
over ``d`` devices covers ``[floor(k*d/n), floor((k+1)*d/n))`` - so the
plan is a pure function of ``(devices, shards)``: sizes differ by at
most one, the union is exactly ``0..devices-1``, and re-planning with
the same arguments always yields the same slices.

Apportionment stability of the *results* is deeper than the plan:
:meth:`repro.fleet.spec.FleetSpec.device_spec` seeds every device from
``(campaign_seed, index)`` alone, so a device's simulation is identical
no matter which shard - or how many shards - it lands in.  Sharding is
purely an execution concern; the record set (and therefore the report)
is invariant under it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CampaignShard:
    """One contiguous slice of a campaign's device index space."""

    shard_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"shard {self.shard_id}: need 0 <= start < stop, "
                f"got [{self.start}, {self.stop})"
            )

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)

    @property
    def count(self) -> int:
        return self.stop - self.start

    @property
    def name(self) -> str:
        return f"shard-{self.shard_id:04d}"

    def to_dict(self) -> dict:
        return {"id": self.shard_id, "start": self.start, "stop": self.stop}

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignShard":
        return cls(
            shard_id=int(data["id"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
        )


def plan_shards(devices: int, shards: int) -> list[CampaignShard]:
    """Split ``devices`` indices into ``shards`` contiguous slices.

    Empty slices are never emitted: asking for more shards than devices
    yields one single-device shard per device.
    """
    if devices <= 0:
        raise ValueError("devices must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, devices)
    plan = []
    for k in range(shards):
        start = k * devices // shards
        stop = (k + 1) * devices // shards
        plan.append(CampaignShard(shard_id=k, start=start, stop=stop))
    return plan
