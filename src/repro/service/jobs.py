"""Campaign directories: the on-disk job format the service executes.

``submit_campaign`` turns a :class:`repro.fleet.spec.FleetSpec` into a
self-describing directory; everything after that - workers, status,
repair - operates on the directory alone, so any process on any host
sharing the filesystem can participate:

.. code-block:: text

    <root>/
      spec.json              # the FleetSpec + its content hash
      plan.json              # deterministic shard plan (shards.py)
      screen.json            # screen plan (screened campaigns only)
      shards/shard-0000.jsonl   # per-shard checkpoint journal
      shards/shard-0000.done    # completion marker {wall_seconds, worker}
      leases/shard-0000.json    # live claim (leases.py)
      snapshots/device-00003.npz  # mid-horizon EngineSnapshot, transient

Ground truth for progress is always the shard *journals* (append-only,
spec-hash-validated); ``.done`` markers and leases are advisory
metadata for scheduling and latency reporting.  The spec hash stored in
``spec.json`` binds every journal and snapshot fingerprint to one
campaign, so directories can never silently mix work from two specs.

A campaign submitted with :class:`repro.screen.ScreenConstraints` is a
*screened* campaign: ``screen.json`` records every device's surrogate
classification, and the shard plan covers only the escalated subset -
workers Monte-Carlo exactly those devices, and the final report composes
surrogate expectations with the journaled MC records
(:func:`repro.screen.compose_screened_report`).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..fleet.checkpoint import CheckpointError, load_journal
from ..fleet.report import DeviceRecord
from ..fleet.spec import FleetSpec
from ..screen import ScreenConstraints, ScreenPlan, plan_screen
from .shards import CampaignShard, plan_shards, plan_subset_shards

#: Campaign directory format version.
PLAN_VERSION = 1


class ServiceError(RuntimeError):
    """A campaign directory is missing, malformed, or mismatched."""


def _write_json(path: Path, payload: dict) -> None:
    """Atomic JSON write: temp file in the same directory + ``os.replace``."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class Campaign:
    """A loaded campaign directory."""

    root: Path
    spec: FleetSpec
    spec_hash: str
    shards: tuple[CampaignShard, ...]
    #: The screen plan for screened campaigns; ``None`` for full-MC ones.
    screen: ScreenPlan | None = None

    @property
    def target_indices(self) -> tuple[int, ...]:
        """Device indices the service Monte-Carlos (the whole fleet, or
        the screened campaign's escalated subset)."""
        if self.screen is not None:
            return self.screen.escalated
        return tuple(range(self.spec.devices))

    # -- paths ----------------------------------------------------------------

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def snapshots_dir(self) -> Path:
        return self.root / "snapshots"

    @property
    def screen_path(self) -> Path:
        return self.root / "screen.json"

    def journal_path(self, shard: CampaignShard) -> Path:
        return self.shards_dir / f"{shard.name}.jsonl"

    def marker_path(self, shard: CampaignShard) -> Path:
        return self.shards_dir / f"{shard.name}.done"

    def lease_path(self, shard: CampaignShard) -> Path:
        return self.leases_dir / f"{shard.name}.json"

    def snapshot_path(self, index: int) -> Path:
        return self.snapshots_dir / f"device-{index:05d}.npz"

    def device_fingerprint(self, index: int) -> str:
        """Binds a mid-horizon snapshot to this campaign and device."""
        return f"{self.spec_hash}/device-{index}"

    # -- progress -------------------------------------------------------------

    def shard_records(self, shard: CampaignShard) -> dict[int, DeviceRecord]:
        """Completed device records journaled for ``shard`` (may be empty)."""
        path = self.journal_path(shard)
        if not path.exists():
            return {}
        _, journaled = load_journal(path, expected_hash=self.spec_hash)
        records = {}
        for index, record in journaled.items():
            if index not in shard.indices:
                raise ServiceError(
                    f"{path} holds device {index}, outside shard "
                    f"[{shard.start}, {shard.stop})"
                )
            records[index] = DeviceRecord.from_dict(record)
        return records

    def shard_complete(self, shard: CampaignShard) -> bool:
        if self.marker_path(shard).exists():
            return True
        try:
            return len(self.shard_records(shard)) == shard.count
        except CheckpointError:
            return False


def submit_campaign(
    spec: FleetSpec,
    root: str | Path,
    shards: int,
    constraints: ScreenConstraints | None = None,
) -> Campaign:
    """Create (or idempotently re-open) a campaign directory for ``spec``.

    With ``constraints`` the campaign is *screened*: the surrogate plan
    is computed up front, persisted as ``screen.json``, and the shard
    plan covers only the escalated device subset (possibly no shards at
    all when the surrogate resolves every device).

    Re-submitting the same spec (and constraints) to an existing
    directory is a no-op that returns the existing campaign - the
    natural "resubmit after a crash" flow.  A *different* spec (by
    content hash), different constraints, or a different shard count is
    refused: a directory belongs to exactly one plan.
    """
    root = Path(root)
    spec_hash = spec.content_hash()
    screen = None if constraints is None else plan_screen(spec, constraints)
    if screen is None:
        plan = plan_shards(spec.devices, shards)
    elif screen.escalated:
        plan = plan_subset_shards(screen.escalated, shards)
    else:
        plan = []

    spec_path = root / "spec.json"
    plan_path = root / "plan.json"
    if spec_path.exists():
        existing = load_campaign(root)
        if existing.spec_hash != spec_hash:
            raise ServiceError(
                f"{root} already holds campaign {existing.spec_hash[:12]}; "
                f"refusing to overwrite with {spec_hash[:12]}"
            )
        existing_screen = (
            None if existing.screen is None else existing.screen.to_dict()
        )
        if existing_screen != (None if screen is None else screen.to_dict()):
            raise ServiceError(
                f"{root} was submitted with different screening constraints; "
                "a directory belongs to exactly one screen plan"
            )
        if [s.to_dict() for s in existing.shards] != [s.to_dict() for s in plan]:
            raise ServiceError(
                f"{root} was planned with {len(existing.shards)} shards; "
                f"resubmit with the same count (got {len(plan)})"
            )
        return existing

    root.mkdir(parents=True, exist_ok=True)
    for sub in ("shards", "leases", "snapshots"):
        (root / sub).mkdir(exist_ok=True)
    _write_json(
        spec_path, {"spec_hash": spec_hash, "spec": spec.to_dict()}
    )
    if screen is not None:
        _write_json(root / "screen.json", screen.to_dict())
    _write_json(
        plan_path,
        {
            "version": PLAN_VERSION,
            "spec_hash": spec_hash,
            "devices": spec.devices,
            "shards": [shard.to_dict() for shard in plan],
        },
    )
    return Campaign(
        root=root, spec=spec, spec_hash=spec_hash, shards=tuple(plan),
        screen=screen,
    )


def load_campaign(root: str | Path) -> Campaign:
    """Load a submitted campaign directory, validating its internal hash."""
    root = Path(root)
    spec_path = root / "spec.json"
    plan_path = root / "plan.json"
    try:
        spec_payload = json.loads(spec_path.read_text())
        plan_payload = json.loads(plan_path.read_text())
    except FileNotFoundError as error:
        raise ServiceError(
            f"{root} is not a campaign directory (missing {error.filename})"
        ) from None
    except json.JSONDecodeError as error:
        raise ServiceError(f"corrupt campaign metadata under {root}: {error}") from None

    if plan_payload.get("version") != PLAN_VERSION:
        raise ServiceError(
            f"{plan_path} has plan version {plan_payload.get('version')!r}; "
            f"this build reads version {PLAN_VERSION}"
        )
    spec = FleetSpec.from_dict(spec_payload["spec"])
    spec_hash = spec.content_hash()
    if spec_payload.get("spec_hash") != spec_hash:
        raise ServiceError(
            f"{spec_path} does not hash to its recorded spec_hash; "
            "the spec file was edited after submission"
        )
    if plan_payload.get("spec_hash") != spec_hash:
        raise ServiceError(f"{plan_path} belongs to a different spec")

    screen = None
    screen_path = root / "screen.json"
    if screen_path.exists():
        try:
            screen = ScreenPlan.from_dict(json.loads(screen_path.read_text()))
        except (json.JSONDecodeError, KeyError, ValueError) as error:
            raise ServiceError(f"corrupt screen plan {screen_path}: {error}") from None
        if screen.spec_hash != spec_hash:
            raise ServiceError(f"{screen_path} belongs to a different spec")
        if screen.devices != spec.devices:
            raise ServiceError(
                f"{screen_path} covers {screen.devices} devices, "
                f"spec has {spec.devices}"
            )

    shards = tuple(
        CampaignShard.from_dict(entry) for entry in plan_payload["shards"]
    )
    covered = [index for shard in shards for index in shard.indices]
    expected = (
        list(range(spec.devices)) if screen is None else list(screen.escalated)
    )
    if covered != expected:
        what = (
            f"0..{spec.devices - 1}"
            if screen is None
            else "the screened campaign's escalated subset"
        )
        raise ServiceError(f"{plan_path} shards do not tile {what}")
    return Campaign(
        root=root, spec=spec, spec_hash=spec_hash, shards=shards, screen=screen
    )
