"""The provisioning report: frontiers, recommendations, artifacts.

:class:`ProvisionReport` is what :class:`repro.provision.search
.ProvisionSearch` returns: every (lot, candidate) evaluation, each
lot's feasible Pareto frontier and knee recommendation, and enough
provenance (spec hash, cost model, grid, MC spend) to audit where the
numbers came from.  Three artifact forms come off it:

* :meth:`to_dict` / :meth:`to_json` - the ``--json`` machine form the
  CI schema check validates;
* :meth:`frontier_csv` - one row per frontier point across all lots,
  for spreadsheets and plots;
* :meth:`assignments_spec` - a ready-to-submit per-lot
  :class:`~repro.fleet.spec.FleetSpec` with every lot's knee candidate
  installed as its policy override, runnable unchanged through
  ``pcm-scrub fleet`` / ``pcm-scrub submit``.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, replace

from ..fleet.spec import FleetSpec
from .cost import CostModel
from .pareto import merge_frontiers
from .search import AXES, CandidateSpace, LotProvision, ProvisionError

#: Schema version of the JSON report form.
REPORT_VERSION = 1


@dataclass(frozen=True)
class ProvisionReport:
    """Everything one provisioning search produced."""

    name: str
    spec_hash: str
    devices: int
    horizon: float
    fit_limit: float | None
    confidence: float
    exhaustive: bool
    cost_model: CostModel
    space: CandidateSpace
    lots: tuple[LotProvision, ...]
    #: Total MC device-runs the search spent (the benchmark's currency).
    mc_device_runs: int

    # -- lookups ---------------------------------------------------------------

    def lot(self, name: str) -> LotProvision:
        for lot in self.lots:
            if lot.lot == name:
                return lot
        raise KeyError(f"no lot {name!r} in provision report {self.name!r}")

    @property
    def candidates_evaluated(self) -> int:
        return sum(len(lot.evaluations) for lot in self.lots)

    @property
    def frontier_size(self) -> int:
        return sum(len(lot.frontier) for lot in self.lots)

    @property
    def recommended(self) -> dict[str, str | None]:
        """Lot name -> knee candidate key (``None`` = keep existing)."""
        return {lot.lot: lot.recommended for lot in self.lots}

    def fleet_frontier(self):
        """The merged cross-lot frontier (candidate keys may repeat per
        lot with different coordinates, so keys are lot-qualified)."""
        per_lot = []
        for lot in self.lots:
            per_lot.append(
                tuple(
                    replace_key(point, f"{lot.lot}:{point.key}")
                    for point in lot.frontier_points()
                )
            )
        return merge_frontiers(*per_lot)

    # -- artifacts -------------------------------------------------------------

    def assignments_spec(self, suffix: str = "-provisioned") -> FleetSpec:
        """A per-lot fleet spec installing every knee recommendation.

        Lots with no feasible candidate keep their existing assignment.
        The result round-trips through JSON and runs unchanged through
        the campaign runner and the sharded service - kill/resume
        bit-identity rides on the same journal/hash machinery as any
        other spec.  Raises :class:`ProvisionError` when *no* lot has a
        recommendation (an all-infeasible search has nothing to emit).
        """
        if all(lot.recommended is None for lot in self.lots):
            raise ProvisionError(
                f"provision search {self.name!r} found no feasible "
                "candidate for any lot; nothing to assign"
            )
        base = self._base_spec
        lots = []
        for lot in base.lots:
            provision = self.lot(lot.name)
            if provision.recommended is None:
                lots.append(lot)
                continue
            candidate = provision.evaluation(
                provision.recommended
            ).candidate
            lots.append(
                replace(
                    lot,
                    policy=candidate.policy,
                    policy_kwargs=candidate.policy_kwargs(),
                )
            )
        return replace(base, name=base.name + suffix, lots=tuple(lots))

    def frontier_csv(self) -> str:
        """CSV of every frontier point: lot, candidate, axes, provenance."""
        out = io.StringIO()
        columns = ["lot", "candidate", "recommended", *AXES, "method"]
        out.write(",".join(columns) + "\n")
        for lot in self.lots:
            for key in lot.frontier:
                evaluation = lot.evaluation(key)
                row = [
                    lot.lot,
                    key,
                    "yes" if key == lot.recommended else "no",
                    *(f"{v:.6g}" for v in evaluation.axes()),
                    evaluation.method,
                ]
                out.write(",".join(row) + "\n")
        return out.getvalue()

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "name": self.name,
            "spec_hash": self.spec_hash,
            "devices": self.devices,
            "horizon": float(self.horizon),
            "fit_limit": self.fit_limit,
            "confidence": self.confidence,
            "exhaustive": self.exhaustive,
            "cost_model": self.cost_model.to_dict(),
            "space": self.space.to_dict(),
            "axes": list(AXES),
            "candidates_evaluated": self.candidates_evaluated,
            "mc_device_runs": self.mc_device_runs,
            "frontier_size": self.frontier_size,
            "recommended": self.recommended,
            "lots": [lot.to_dict() for lot in self.lots],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ProvisionReport":
        version = data.get("version", REPORT_VERSION)
        if version != REPORT_VERSION:
            raise ProvisionError(
                f"unsupported provision report version {version!r}"
            )
        report = cls(
            name=str(data["name"]),
            spec_hash=str(data["spec_hash"]),
            devices=int(data["devices"]),
            horizon=float(data["horizon"]),
            fit_limit=(
                None if data.get("fit_limit") is None else float(data["fit_limit"])
            ),
            confidence=float(data.get("confidence", 0.95)),
            exhaustive=bool(data.get("exhaustive", False)),
            cost_model=CostModel.from_dict(data.get("cost_model", {})),
            space=CandidateSpace.from_dict(data.get("space", {})),
            lots=tuple(LotProvision.from_dict(lot) for lot in data["lots"]),
            mc_device_runs=int(data["mc_device_runs"]),
        )
        return report

    # ``assignments_spec`` needs the base fleet; the search attaches it
    # after construction (it is deliberately not part of the JSON form -
    # the spec travels as its own file, referenced by hash).
    @property
    def _base_spec(self) -> FleetSpec:
        spec = getattr(self, "_spec", None)
        if spec is None:
            raise ProvisionError(
                "this report was rehydrated from JSON without its fleet "
                "spec; call report.attach_spec(FleetSpec.from_file(...)) "
                "first (the spec_hash field identifies the right file)"
            )
        return spec

    def attach_spec(self, spec: FleetSpec) -> "ProvisionReport":
        """Bind the base fleet spec (validated by content hash)."""
        if spec.content_hash() != self.spec_hash:
            raise ProvisionError(
                f"spec hash mismatch: report was computed from "
                f"{self.spec_hash[:12]}..., got {spec.content_hash()[:12]}..."
            )
        object.__setattr__(self, "_spec", spec)
        return self


def replace_key(point, key: str):
    """A Pareto point with the same coordinates under a new key."""
    from .pareto import ParetoPoint

    return ParetoPoint(key=key, values=point.values)
