"""Knee-point selection: one recommended candidate per frontier.

A Pareto frontier answers "what are the defensible choices"; operators
still need *one* assignment per lot.  The knee point is the frontier
point closest (Euclidean) to the per-axis ideal after normalizing every
axis to ``[0, 1]`` over the frontier's own range - the classic
"utopia-distance" compromise.  Normalization makes the knee invariant
to per-axis positive rescaling (joules vs millijoules, $ vs cents),
matching the frontier's own invariance; a degenerate axis (all frontier
points equal) contributes zero to every distance and so never breaks
ties spuriously.

Ties are broken by canonical point order ``(values, key)``, so the knee
is deterministic for any input ordering and any ``--jobs`` fan-out.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .pareto import ParetoError, ParetoPoint, pareto_frontier


def knee_point(
    frontier: Sequence[ParetoPoint],
    weights: Sequence[float] | None = None,
) -> ParetoPoint:
    """The utopia-distance knee of a non-dominated frontier.

    ``weights`` (optional, one per axis, positive) stretch the
    normalized axes before measuring distance - an operator who cares
    twice as much about FIT as about energy passes ``(2, 1, ...)``.
    Raises :class:`~repro.provision.pareto.ParetoError` on an empty
    frontier or if ``frontier`` contains dominated points (callers pass
    the output of :func:`~repro.provision.pareto.pareto_frontier`).
    """
    points = list(frontier)
    if not points:
        raise ParetoError("knee of an empty frontier is undefined")
    if tuple(pareto_frontier(points)) != tuple(
        sorted(points, key=lambda p: (p.values, p.key))
    ):
        raise ParetoError("knee_point expects a non-dominated frontier")
    dims = len(points[0].values)
    if weights is None:
        weights = (1.0,) * dims
    else:
        weights = tuple(float(w) for w in weights)
        if len(weights) != dims:
            raise ParetoError(
                f"got {len(weights)} weights for {dims} axes"
            )
        if any(w <= 0 or math.isnan(w) for w in weights):
            raise ParetoError("knee weights must be positive")

    lows = [min(p.values[d] for p in points) for d in range(dims)]
    highs = [max(p.values[d] for p in points) for d in range(dims)]

    def distance(point: ParetoPoint) -> float:
        total = 0.0
        for d in range(dims):
            span = highs[d] - lows[d]
            if span <= 0.0:
                continue
            normalized = (point.values[d] - lows[d]) / span
            total += (weights[d] * normalized) ** 2
        return math.sqrt(total)

    return min(points, key=lambda p: (distance(p), p.values, p.key))
