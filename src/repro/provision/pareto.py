"""Pareto-dominance core for provisioning trade-offs.

Per-lot provisioning compares candidate scrub configurations along
several simultaneously-minimized axes (UE FIT, scrub energy per GiB,
write wear, $/GiB, carbon/GiB).  No single candidate is "best"; the
useful object is the *non-dominated frontier* - the candidates for
which no other candidate is at least as good on every axis and
strictly better on one.

Everything here is exact, deterministic set algebra over finite point
sets - no floating-point tolerances, no randomness - so the frontier
is a pure function of its inputs.  Properties the test suite pins
(``tests/provision/test_pareto_properties.py``):

* :func:`dominates` is a strict partial order (irreflexive,
  asymmetric, transitive);
* :func:`pareto_frontier` is invariant to input order and to any
  positive per-axis rescaling;
* :func:`merge_frontiers` is associative and commutative, so frontiers
  computed per shard/lot can be folded together in any grouping.

Outputs are always in *canonical order* - sorted by ``(values, key)``
- which is what makes order invariance observable as tuple equality.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


class ParetoError(ValueError):
    """A point set is malformed (NaN axis, mixed dimensions, key clash)."""


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate's objective vector; every axis is minimized.

    ``key`` identifies the candidate (e.g. ``threshold/T3600/t4/theta3``)
    and ``values`` holds its objective coordinates.  Two points with the
    same key must carry the same values - a key appearing with two
    different vectors in one frontier computation is a caller bug and
    raises :class:`ParetoError` rather than silently keeping one.
    """

    key: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.key:
            raise ParetoError("pareto point key must be non-empty")
        if not self.values:
            raise ParetoError(f"point {self.key!r}: needs at least one axis")
        values = tuple(float(v) for v in self.values)
        for v in values:
            if math.isnan(v):
                raise ParetoError(f"point {self.key!r}: NaN axis in {values}")
        object.__setattr__(self, "values", values)

    def to_dict(self) -> dict:
        return {"key": self.key, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "ParetoPoint":
        return cls(
            key=str(data["key"]),
            values=tuple(float(v) for v in data["values"]),
        )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimize).

    ``a`` dominates ``b`` iff it is no worse on every axis and strictly
    better on at least one.  Strict: a vector never dominates itself.
    """
    if len(a) != len(b):
        raise ParetoError(
            f"dominance needs equal dimensions, got {len(a)} vs {len(b)}"
        )
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def _validated(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Dedup identical points, reject key clashes and mixed dimensions."""
    by_key: dict[str, ParetoPoint] = {}
    dims: int | None = None
    for point in points:
        if dims is None:
            dims = len(point.values)
        elif len(point.values) != dims:
            raise ParetoError(
                f"point {point.key!r} has {len(point.values)} axes; "
                f"expected {dims}"
            )
        seen = by_key.get(point.key)
        if seen is None:
            by_key[point.key] = point
        elif seen.values != point.values:
            raise ParetoError(
                f"point key {point.key!r} appears with conflicting values "
                f"{seen.values} and {point.values}"
            )
    return list(by_key.values())


def pareto_frontier(points: Iterable[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """The non-dominated subset of ``points``, in canonical order.

    Duplicate-valued points under *different* keys all survive together
    (none dominates the other - dominance is strict), which keeps the
    frontier stable when two candidates genuinely tie.
    """
    unique = _validated(points)
    kept = [
        p
        for p in unique
        if not any(
            dominates(q.values, p.values) for q in unique if q.key != p.key
        )
    ]
    kept.sort(key=lambda p: (p.values, p.key))
    return tuple(kept)


def merge_frontiers(
    *frontiers: Iterable[ParetoPoint],
) -> tuple[ParetoPoint, ...]:
    """Fold several frontiers (or raw point sets) into one frontier.

    ``merge(merge(A, B), C) == merge(A, merge(B, C)) == merge(A, B, C)``:
    merging is just the frontier of the union, so partial frontiers
    computed independently (per lot, per shard, per search round)
    compose without re-evaluating anything.
    """
    combined: list[ParetoPoint] = []
    for frontier in frontiers:
        combined.extend(frontier)
    return pareto_frontier(combined)
