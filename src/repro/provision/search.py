"""Per-lot candidate search: surrogate-first, MC only where it matters.

:class:`ProvisionSearch` sweeps a :class:`CandidateSpace` (policy x
interval x ECC strength x threshold grid) over every lot of a
:class:`repro.fleet.spec.FleetSpec` and scores each (lot, candidate)
pair along five minimized axes:

1. capacity-scaled UE FIT,
2. scrub energy per simulated GiB,
3. scrub write-backs per device (wear),
4. $/GiB of usable capacity under the candidate's ECC overhead,
5. kgCO2e/GiB (operational + amortized embodied).

Exhaustively Monte-Carlo-ing the grid costs ``lots x candidates x
devices`` engine runs.  The search instead evaluates each device
through the same exact renewal surrogate the screening planner uses
(:mod:`repro.screen.planner`): for in-regime candidates (detector-less
threshold policies on idle single-region devices) the surrogate gives
the *exact* expectation of every axis at closed-form cost, so no MC is
spent at all.  The whole grid is scored per lot in one call to the
grid-batched kernel (:func:`repro.sim.renewal_batch.finite_horizon_batch`)
- each device's crossing distribution is tabulated once and its
propagation memoized across candidates.  A device escalates to the real
engine only when

* the candidate is out of the surrogate's validated regime (adaptive/
  combined/partial policies, detector-gated decode, demand traffic,
  wear/retire/refresh/spares), as judged by
  :func:`repro.screen.planner.regime_reasons` on the candidate-variant
  spec; or
* a ``fit_limit`` is set and the device's Poisson predictive interval
  straddles the per-device count budget (the verdict is genuinely
  uncertain at expectation level).

Escalated devices run through ``CampaignRunner(variant, indices=...)``
- the same subset path the screening report uses - so results are
bit-identical to a full campaign of the variant spec, independent of
``jobs``.  ``exhaustive=True`` forces every device of every candidate
to MC; the benchmark asserts the screened search reaches the same
per-lot frontier with a fraction of the MC device-runs.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, replace

import numpy as np

from ..fleet.campaign import CampaignRunner
from ..fleet.report import FIT_HOURS, per_gib
from ..fleet.spec import DeviceSpec, FleetSpec, Lot
from ..obs.metrics import GLOBAL_REGISTRY
from ..pcm.energy import OperationCosts
from ..screen.planner import _poisson_predictive, regime_reasons
from ..sim.parallel import POLICY_FACTORIES
from ..sim.renewal import FiniteHorizonSolution, RenewalModel
from ..sim.renewal_batch import RenewalTask, finite_horizon_batch
from ..sim.runner import crossing_distribution_for
from .cost import CostModel
from .knee import knee_point
from .pareto import ParetoPoint, pareto_frontier

logger = logging.getLogger(__name__)


class ProvisionError(ValueError):
    """A provisioning request is malformed."""


#: Evaluation provenance labels.
SURROGATE, MC, MIXED = "surrogate", "mc", "mixed"

#: The objective axes, in :meth:`CandidateEvaluation.axes` order.
AXES = (
    "fit_scaled",
    "energy_per_gib_j",
    "writes_per_device",
    "dollars_per_gib",
    "carbon_per_gib_kg",
)

#: Policies that take a write-back threshold parameter.
_THRESHOLD_POLICIES = frozenset({"threshold", "partial"})
#: Policies whose factory takes only ``interval``.
_INTERVAL_ONLY_POLICIES = frozenset({"basic"})


@dataclass(frozen=True)
class Candidate:
    """One point of the provisioning grid: a concrete scrub assignment."""

    policy: str
    interval: float
    strength: int = 4
    #: Write-back threshold for the threshold/partial families; ``None``
    #: resolves to the family default ``max(1, strength - 1)``.
    threshold: int | None = None
    #: Whether threshold-family candidates keep the CRC detector.  Off by
    #: default: detector-less threshold scrub is the surrogate-exact
    #: regime, which is what makes the search cheap.
    with_detector: bool = False

    def __post_init__(self) -> None:
        if self.policy not in POLICY_FACTORIES:
            raise ProvisionError(
                f"unknown candidate policy {self.policy!r}; "
                f"available: {sorted(POLICY_FACTORIES)}"
            )
        if self.interval <= 0:
            raise ProvisionError("candidate interval must be positive")
        if self.strength < 1:
            raise ProvisionError("candidate strength must be >= 1")
        if self.threshold is not None:
            if self.policy not in _THRESHOLD_POLICIES:
                raise ProvisionError(
                    f"policy {self.policy!r} takes no threshold parameter"
                )
            if not 1 <= self.threshold <= self.strength:
                raise ProvisionError(
                    f"threshold {self.threshold} outside [1, {self.strength}]"
                )

    @property
    def effective_threshold(self) -> int | None:
        """The resolved write-back threshold (``None`` off-family)."""
        if self.policy not in _THRESHOLD_POLICIES:
            return None
        if self.threshold is not None:
            return self.threshold
        return max(1, self.strength - 1)

    @property
    def key(self) -> str:
        """Stable identifier; doubles as the Pareto point key."""
        parts = [self.policy, f"T{self.interval:g}"]
        if self.policy not in _INTERVAL_ONLY_POLICIES:
            parts.append(f"t{self.strength}")
        theta = self.effective_threshold
        if theta is not None:
            parts.append(f"theta{theta}")
        if self.policy == "threshold" and self.with_detector:
            parts.append("det")
        return "/".join(parts)

    def policy_kwargs(self) -> dict:
        """Factory kwargs; also the per-lot ``policy_kwargs`` override."""
        if self.policy in _INTERVAL_ONLY_POLICIES:
            return {"interval": self.interval}
        kwargs: dict = {"interval": self.interval, "strength": self.strength}
        theta = self.effective_threshold
        if theta is not None:
            kwargs["threshold"] = theta
        if self.policy == "threshold":
            kwargs["with_detector"] = self.with_detector
        return kwargs

    def build_policy(self):
        """Instantiate the scrub policy (for its ECC scheme metadata)."""
        return POLICY_FACTORIES[self.policy](**self.policy_kwargs())

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "interval": float(self.interval),
            "strength": int(self.strength),
            "threshold": self.threshold,
            "with_detector": self.with_detector,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Candidate":
        return cls(
            policy=str(data["policy"]),
            interval=float(data["interval"]),
            strength=int(data.get("strength", 4)),
            threshold=(
                None if data.get("threshold") is None else int(data["threshold"])
            ),
            with_detector=bool(data.get("with_detector", False)),
        )


@dataclass(frozen=True)
class CandidateSpace:
    """The provisioning grid: the cross product, minus redundant points.

    Combinations that collapse to the same factory call (``basic`` at
    two strengths) are deduplicated, and threshold values exceeding a
    combination's strength are skipped rather than rejected, so a single
    rectangular grid spec covers ragged per-policy parameter spaces.
    """

    policies: tuple[str, ...] = ("threshold",)
    intervals: tuple[float, ...] = (1800.0, 3600.0, 7200.0)
    strengths: tuple[int, ...] = (2, 4)
    thresholds: tuple[int | None, ...] = (None,)
    with_detector: bool = False

    def __post_init__(self) -> None:
        if not self.policies or not self.intervals or not self.strengths:
            raise ProvisionError(
                "candidate space needs at least one policy, interval, "
                "and strength"
            )
        if not self.thresholds:
            raise ProvisionError(
                "candidate space needs at least one threshold (None = auto)"
            )
        for policy in self.policies:
            if policy not in POLICY_FACTORIES:
                raise ProvisionError(
                    f"unknown policy {policy!r} in candidate space; "
                    f"available: {sorted(POLICY_FACTORIES)}"
                )

    def candidates(self) -> tuple[Candidate, ...]:
        """The deduplicated grid, in deterministic generation order."""
        seen: dict[tuple, Candidate] = {}
        grid = itertools.product(
            self.policies, self.intervals, self.strengths, self.thresholds
        )
        for policy, interval, strength, threshold in grid:
            if threshold is not None and (
                policy not in _THRESHOLD_POLICIES or threshold > strength
            ):
                continue
            candidate = Candidate(
                policy=policy,
                interval=float(interval),
                strength=int(strength),
                threshold=threshold,
                with_detector=(
                    self.with_detector if policy == "threshold" else False
                ),
            )
            dedup = (policy, tuple(sorted(candidate.policy_kwargs().items())))
            seen.setdefault(dedup, candidate)
        return tuple(seen.values())

    def to_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "intervals": [float(v) for v in self.intervals],
            "strengths": [int(v) for v in self.strengths],
            "thresholds": [
                None if v is None else int(v) for v in self.thresholds
            ],
            "with_detector": self.with_detector,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateSpace":
        defaults = cls()
        return cls(
            policies=tuple(
                str(p) for p in data.get("policies", defaults.policies)
            ),
            intervals=tuple(
                float(v) for v in data.get("intervals", defaults.intervals)
            ),
            strengths=tuple(
                int(v) for v in data.get("strengths", defaults.strengths)
            ),
            thresholds=tuple(
                None if v is None else int(v)
                for v in data.get("thresholds", defaults.thresholds)
            ),
            with_detector=bool(data.get("with_detector", False)),
        )


@dataclass(frozen=True)
class CandidateEvaluation:
    """One (lot, candidate) score along every objective axis."""

    lot: str
    candidate: Candidate
    #: Devices the lot holds / resolved by surrogate / run through MC.
    devices: int
    surrogate_devices: int
    mc_devices: int
    #: Composed lot totals (surrogate expectations + MC realizations).
    expected_ue: float
    expected_writes: float
    scrub_energy_j: float
    #: The objective axes (see :data:`AXES`).
    fit_scaled: float
    energy_per_gib_j: float
    writes_per_device: float
    dollars_per_gib: float
    carbon_per_gib_kg: float
    #: ``False`` when a ``fit_limit`` was set and this candidate's
    #: composed FIT exceeds it - excluded from the frontier.
    feasible: bool = True
    infeasible_reason: str = ""

    @property
    def method(self) -> str:
        if self.mc_devices == 0:
            return SURROGATE
        if self.surrogate_devices == 0:
            return MC
        return MIXED

    def axes(self) -> tuple[float, ...]:
        return (
            self.fit_scaled,
            self.energy_per_gib_j,
            self.writes_per_device,
            self.dollars_per_gib,
            self.carbon_per_gib_kg,
        )

    def point(self) -> ParetoPoint:
        return ParetoPoint(key=self.candidate.key, values=self.axes())

    def to_dict(self) -> dict:
        return {
            "lot": self.lot,
            "candidate": self.candidate.to_dict(),
            "devices": self.devices,
            "surrogate_devices": self.surrogate_devices,
            "mc_devices": self.mc_devices,
            "method": self.method,
            "expected_ue": self.expected_ue,
            "expected_writes": self.expected_writes,
            "scrub_energy_j": self.scrub_energy_j,
            "fit_scaled": self.fit_scaled,
            "energy_per_gib_j": self.energy_per_gib_j,
            "writes_per_device": self.writes_per_device,
            "dollars_per_gib": self.dollars_per_gib,
            "carbon_per_gib_kg": self.carbon_per_gib_kg,
            "feasible": self.feasible,
            "infeasible_reason": self.infeasible_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateEvaluation":
        return cls(
            lot=str(data["lot"]),
            candidate=Candidate.from_dict(data["candidate"]),
            devices=int(data["devices"]),
            surrogate_devices=int(data["surrogate_devices"]),
            mc_devices=int(data["mc_devices"]),
            expected_ue=float(data["expected_ue"]),
            expected_writes=float(data["expected_writes"]),
            scrub_energy_j=float(data["scrub_energy_j"]),
            fit_scaled=float(data["fit_scaled"]),
            energy_per_gib_j=float(data["energy_per_gib_j"]),
            writes_per_device=float(data["writes_per_device"]),
            dollars_per_gib=float(data["dollars_per_gib"]),
            carbon_per_gib_kg=float(data["carbon_per_gib_kg"]),
            feasible=bool(data.get("feasible", True)),
            infeasible_reason=str(data.get("infeasible_reason", "")),
        )


@dataclass(frozen=True)
class LotProvision:
    """One lot's full evaluation sweep, frontier, and recommendation."""

    lot: str
    devices: int
    evaluations: tuple[CandidateEvaluation, ...]
    #: Candidate keys on the feasible non-dominated frontier, in the
    #: frontier's canonical order.
    frontier: tuple[str, ...]
    #: The knee candidate's key; ``None`` when no candidate is feasible
    #: (the lot keeps its existing assignment).
    recommended: str | None

    def evaluation(self, key: str) -> CandidateEvaluation:
        for evaluation in self.evaluations:
            if evaluation.candidate.key == key:
                return evaluation
        raise KeyError(f"lot {self.lot!r}: no candidate {key!r}")

    @property
    def recommended_evaluation(self) -> CandidateEvaluation | None:
        return None if self.recommended is None else self.evaluation(
            self.recommended
        )

    def frontier_points(self) -> tuple[ParetoPoint, ...]:
        return tuple(self.evaluation(key).point() for key in self.frontier)

    def to_dict(self) -> dict:
        return {
            "lot": self.lot,
            "devices": self.devices,
            "evaluations": [e.to_dict() for e in self.evaluations],
            "frontier": list(self.frontier),
            "recommended": self.recommended,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LotProvision":
        return cls(
            lot=str(data["lot"]),
            devices=int(data["devices"]),
            evaluations=tuple(
                CandidateEvaluation.from_dict(e) for e in data["evaluations"]
            ),
            frontier=tuple(str(k) for k in data["frontier"]),
            recommended=(
                None
                if data.get("recommended") is None
                else str(data["recommended"])
            ),
        )


def variant_spec(
    spec: FleetSpec, lot_name: str, candidate: Candidate
) -> FleetSpec:
    """The fleet spec with ``lot_name`` overridden to ``candidate``.

    Only the named lot changes; device parameter sampling is untouched
    (draws depend on ``[seed, index]`` and lot process parameters only),
    so the variant's devices are physically identical to the base
    fleet's and differ purely in scrub policy.
    """
    lots = tuple(
        replace(
            lot,
            policy=candidate.policy,
            policy_kwargs=candidate.policy_kwargs(),
        )
        if lot.name == lot_name
        else lot
        for lot in spec.lots
    )
    return replace(spec, lots=lots)


class ProvisionSearch:
    """Sweep a candidate grid over every lot; see the module docstring.

    Parameters
    ----------
    spec:
        The base fleet.  Existing per-lot overrides are replaced lot by
        lot while that lot is being evaluated and untouched otherwise.
    space:
        The candidate grid.
    cost_model:
        $/GiB and carbon accounting (:class:`CostModel`).
    fit_limit:
        Optional per-device capacity-scaled FIT budget.  Candidates
        whose composed FIT exceeds it are marked infeasible and excluded
        from the frontier; devices whose Poisson predictive interval
        straddles the equivalent count budget escalate to MC.
    confidence:
        Central coverage of the Poisson predictive interval.
    jobs:
        Worker processes for MC escalations (results are identical for
        any value).
    exhaustive:
        Force every device of every candidate through the MC engine
        (the ground-truth mode the benchmark compares against).
    extra_candidates:
        Hand-picked :class:`Candidate` entries appended to the grid
        (deduplicated against it) - e.g. one DRAM-style ``basic``
        baseline without paying for it at every grid interval.
    batch:
        Evaluate each lot's whole candidate grid through the batched
        renewal kernel (:func:`repro.sim.renewal_batch.finite_horizon_batch`,
        the default).  ``batch=False`` keeps the per-pair scalar
        :meth:`RenewalModel.finite_horizon` path as the reference oracle
        (identical frontiers up to rounding noise); either way each
        device's distribution is tabulated once per lot and reused
        across every candidate.
    """

    def __init__(
        self,
        spec: FleetSpec,
        space: CandidateSpace | None = None,
        cost_model: CostModel | None = None,
        fit_limit: float | None = None,
        confidence: float = 0.95,
        jobs: int = 1,
        exhaustive: bool = False,
        extra_candidates: tuple = (),
        batch: bool = True,
    ):
        if fit_limit is not None and fit_limit <= 0:
            raise ProvisionError("fit_limit must be positive (or None)")
        if not 0 < confidence < 1:
            raise ProvisionError("confidence must be in (0, 1)")
        self.spec = spec
        self.space = CandidateSpace() if space is None else space
        self.cost_model = CostModel() if cost_model is None else cost_model
        self.fit_limit = fit_limit
        self.confidence = confidence
        self.jobs = max(1, jobs)
        self.exhaustive = exhaustive
        self.batch = batch
        self.extra_candidates = tuple(extra_candidates)
        for candidate in self.extra_candidates:
            if not isinstance(candidate, Candidate):
                raise ProvisionError(
                    "extra_candidates must be Candidate instances, got "
                    f"{candidate!r}"
                )

    # -- surrogate evaluation --------------------------------------------------

    def _surrogate_costs(self, candidate: Candidate) -> OperationCosts:
        scheme = candidate.build_policy().scheme
        return OperationCosts.for_line(
            self.spec.base_config.energy,
            self.spec.base_config.line,
            ecc_bits=scheme.total_overhead_bits,
            ecc_strength=scheme.t,
        )

    def _evaluate_surrogate(
        self,
        candidates: list[Candidate],
        variants: list[FleetSpec],
        devices: list[DeviceSpec],
        distributions: list,
    ) -> tuple[dict[tuple[int, int], FiniteHorizonSolution], list[list[int]]]:
        """Score one lot's whole candidate grid in a single batched call.

        Returns ``(solutions, regime_escalated)``: ``solutions`` maps
        every in-regime ``(candidate_pos, device_pos)`` pair to its exact
        finite-horizon solution - one :func:`finite_horizon_batch` call
        covering the full grid, with the lot's distributions (tabulated
        once, threaded in by the caller) shared across candidates -
        and ``regime_escalated`` lists, per candidate, the device
        positions that must go to MC regardless of any budget check
        (out of the surrogate's regime, or ``exhaustive``).  With
        ``batch=False`` the same pairs are solved through per-pair scalar
        :meth:`RenewalModel.finite_horizon` calls, one model per device.
        """
        horizon = self.spec.base_config.horizon
        tasks: list[RenewalTask] = []
        owners: list[tuple[int, int]] = []
        regime_escalated: list[list[int]] = []
        for ci, (candidate, variant) in enumerate(zip(candidates, variants)):
            escalated: list[int] = []
            for pos, device in enumerate(devices):
                if self.exhaustive or regime_reasons(variant, device):
                    escalated.append(pos)
                    continue
                owners.append((ci, pos))
                tasks.append(
                    RenewalTask(
                        distribution=distributions[pos],
                        cells_per_line=device.config.cells_per_line,
                        interval=candidate.interval,
                        t_ecc=candidate.strength,
                        threshold=candidate.effective_threshold,
                    )
                )
            regime_escalated.append(escalated)
        if self.batch:
            solved = finite_horizon_batch(tasks, horizon)
        else:
            models: dict[int, RenewalModel] = {}
            solved = []
            for (_, pos), task in zip(owners, tasks):
                model = models.get(pos)
                if model is None:
                    model = models[pos] = RenewalModel(
                        task.distribution, task.cells_per_line
                    )
                solved.append(
                    model.finite_horizon(
                        task.interval, task.t_ecc, task.threshold, horizon
                    )
                )
        return dict(zip(owners, solved)), regime_escalated

    # -- per-candidate evaluation ---------------------------------------------

    def _evaluate_candidate(
        self,
        lot: Lot,
        candidate: Candidate,
        variant: FleetSpec,
        indices: tuple[int, ...],
        devices: list[DeviceSpec],
        regime_escalated: list[int],
        solutions: dict[tuple[int, int], FiniteHorizonSolution],
        ci: int,
    ) -> CandidateEvaluation:
        """Compose one (lot, candidate) evaluation from batched solutions.

        Energy is closed-form: a detector-less threshold policy reads
        and decodes every line on every visit (deterministic), and only
        the write-back count is stochastic, with exact expectation from
        the renewal solution.
        """
        spec = self.spec
        horizon = spec.base_config.horizon
        horizon_hours = horizon / 3600.0
        count_limit = (
            None
            if self.fit_limit is None
            else self.fit_limit * horizon_hours / FIT_HOURS / spec.capacity_scale
        )

        costs = self._surrogate_costs(candidate)
        members = [pos for pos in range(len(devices)) if (ci, pos) in solutions]
        straddle: set[int] = set()
        if count_limit is not None and members:
            lam = np.array(
                [
                    solutions[(ci, pos)].expected_ue
                    * devices[pos].config.num_lines
                    for pos in members
                ]
            )
            lo, hi = _poisson_predictive(lam, self.confidence)
            straddle = {
                pos
                for i, pos in enumerate(members)
                # Straddles the budget: the expectation alone cannot
                # settle feasibility for this device.
                if lo[i] <= count_limit < hi[i]
            }

        regime_set = set(regime_escalated)
        escalated: list[int] = []
        total_ue = total_writes = total_energy = 0.0
        for pos, index in enumerate(indices):
            if pos in regime_set or pos in straddle:
                escalated.append(index)
                continue
            solution = solutions[(ci, pos)]
            num_lines = devices[pos].config.num_lines
            total_ue += solution.expected_ue * num_lines
            total_writes += solution.expected_writes * num_lines
            total_energy += num_lines * (
                solution.visits * (costs.read_energy + costs.decode_energy)
                + solution.expected_writes * costs.write_energy
            )

        if escalated:
            outcome = CampaignRunner(
                variant, jobs=self.jobs, indices=escalated
            ).run()
            for record in outcome.records:
                summary = record.summary
                total_ue += float(summary.get("uncorrectable", 0.0))
                total_writes += float(summary.get("scrub_writes", 0.0))
                total_energy += float(summary.get("scrub_energy_j", 0.0))

        devices = len(indices)
        device_hours = devices * horizon_hours
        fit_scaled = (
            total_ue / device_hours * FIT_HOURS * spec.capacity_scale
            if device_hours
            else 0.0
        )
        energy_per_gib = per_gib(
            total_energy,
            devices * spec.simulated_gib_per_device,
            f"lot {lot.name!r} candidate {candidate.key!r} energy/GiB",
        )
        scheme = candidate.build_policy().scheme
        data_bits = spec.base_config.line.data_bits
        dollars = self.cost_model.dollars_per_usable_gib(
            scheme.total_overhead_bits, data_bits
        )
        carbon = self.cost_model.carbon_per_gib(
            energy_per_gib, horizon, scheme.total_overhead_bits, data_bits
        )
        feasible, reason = True, ""
        if self.fit_limit is not None and fit_scaled > self.fit_limit:
            feasible = False
            reason = (
                f"fit_scaled {fit_scaled:.3g} exceeds limit "
                f"{self.fit_limit:.3g}"
            )
        return CandidateEvaluation(
            lot=lot.name,
            candidate=candidate,
            devices=devices,
            surrogate_devices=devices - len(escalated),
            mc_devices=len(escalated),
            expected_ue=total_ue,
            expected_writes=total_writes,
            scrub_energy_j=total_energy,
            fit_scaled=fit_scaled,
            energy_per_gib_j=energy_per_gib,
            writes_per_device=total_writes / devices if devices else 0.0,
            dollars_per_gib=dollars,
            carbon_per_gib_kg=carbon,
            feasible=feasible,
            infeasible_reason=reason,
        )

    # -- the sweep -------------------------------------------------------------

    def run(self):
        """Evaluate the grid for every lot; returns a ProvisionReport."""
        from .report import ProvisionReport

        candidates = list(self.space.candidates())
        grid_keys = {
            (c.policy, tuple(sorted(c.policy_kwargs().items())))
            for c in candidates
        }
        for candidate in self.extra_candidates:
            dedup = (
                candidate.policy,
                tuple(sorted(candidate.policy_kwargs().items())),
            )
            if dedup not in grid_keys:
                grid_keys.add(dedup)
                candidates.append(candidate)
        if not candidates:
            raise ProvisionError("candidate space is empty after dedup")
        lots = []
        mc_device_runs = 0
        surrogate_candidates = 0
        escalated_candidates = 0
        for lot in self.spec.lots:
            indices = self.spec.lot_indices(lot.name)
            # One device list and one tabulated distribution per device
            # for the whole grid: candidate variants never change device
            # physics (policy is not part of the sampled config), and
            # holding the list pins the distributions past the runner
            # LRU's reach while every candidate reuses them.
            devices = [self.spec.device_spec(index) for index in indices]
            distributions = [
                crossing_distribution_for(device.config) for device in devices
            ]
            variants = [
                variant_spec(self.spec, lot.name, candidate)
                for candidate in candidates
            ]
            solutions, regime_escalated = self._evaluate_surrogate(
                candidates, variants, devices, distributions
            )
            evaluations = tuple(
                self._evaluate_candidate(
                    lot, candidate, variants[ci], indices, devices,
                    regime_escalated[ci], solutions, ci,
                )
                for ci, candidate in enumerate(candidates)
            )
            mc_device_runs += sum(e.mc_devices for e in evaluations)
            surrogate_candidates += sum(
                1 for e in evaluations if e.method == SURROGATE
            )
            escalated_candidates += sum(
                1 for e in evaluations if e.mc_devices > 0
            )
            frontier = pareto_frontier(
                e.point() for e in evaluations if e.feasible
            )
            recommended = (
                knee_point(frontier).key if frontier else None
            )
            lots.append(
                LotProvision(
                    lot=lot.name,
                    devices=len(indices),
                    evaluations=evaluations,
                    frontier=tuple(p.key for p in frontier),
                    recommended=recommended,
                )
            )
            logger.info(
                "provision %s/%s: %d candidates, frontier %d, knee %s",
                self.spec.name, lot.name, len(evaluations),
                len(lots[-1].frontier), recommended,
            )

        report = ProvisionReport(
            name=self.spec.name,
            spec_hash=self.spec.content_hash(),
            devices=self.spec.devices,
            horizon=self.spec.base_config.horizon,
            fit_limit=self.fit_limit,
            confidence=self.confidence,
            exhaustive=self.exhaustive,
            cost_model=self.cost_model,
            space=self.space,
            lots=tuple(lots),
            mc_device_runs=mc_device_runs,
        ).attach_spec(self.spec)
        total_evals = len(candidates) * len(self.spec.lots)
        GLOBAL_REGISTRY.gauge("provision_lots").set(len(self.spec.lots))
        GLOBAL_REGISTRY.gauge("provision_candidates").set(total_evals)
        GLOBAL_REGISTRY.gauge("provision_surrogate_candidates").set(
            surrogate_candidates
        )
        GLOBAL_REGISTRY.gauge("provision_escalated_candidates").set(
            escalated_candidates
        )
        GLOBAL_REGISTRY.gauge("provision_mc_device_runs").set(mc_device_runs)
        GLOBAL_REGISTRY.gauge("provision_frontier_size").set(
            sum(len(lot.frontier) for lot in lots)
        )
        return report


def provision_fleet(
    spec: FleetSpec,
    space: CandidateSpace | None = None,
    cost_model: CostModel | None = None,
    fit_limit: float | None = None,
    confidence: float = 0.95,
    jobs: int = 1,
    exhaustive: bool = False,
):
    """One-call convenience wrapper around :class:`ProvisionSearch`."""
    return ProvisionSearch(
        spec,
        space=space,
        cost_model=cost_model,
        fit_limit=fit_limit,
        confidence=confidence,
        jobs=jobs,
        exhaustive=exhaustive,
    ).run()
