"""Per-lot provisioning: cost/energy/carbon Pareto frontiers per fleet.

The fleet report (:mod:`repro.fleet`) tells an operator what one scrub
assignment costs; this package turns that around and answers *which*
assignment each manufacturing lot should get.  A
:class:`~repro.provision.search.ProvisionSearch` sweeps a candidate
grid (policy x interval x ECC strength x threshold) over every lot,
scoring candidates via the exact renewal surrogate first
(:mod:`repro.screen`) and spending Monte-Carlo engine runs only on
candidates the surrogate cannot settle.  Results land on per-lot
Pareto frontiers over UE FIT, scrub energy/GiB, write wear, $/GiB, and
carbon/GiB (:mod:`~repro.provision.pareto`), a knee point picks one
recommendation per lot (:mod:`~repro.provision.knee`), and the report
emits a ready-to-submit per-lot fleet spec
(:meth:`~repro.provision.report.ProvisionReport.assignments_spec`).

CLI: ``pcm-scrub provision-fleet``.
"""

from .cost import CostModel, J_PER_KWH
from .knee import knee_point
from .pareto import (
    ParetoError,
    ParetoPoint,
    dominates,
    merge_frontiers,
    pareto_frontier,
)
from .report import REPORT_VERSION, ProvisionReport
from .search import (
    AXES,
    Candidate,
    CandidateEvaluation,
    CandidateSpace,
    LotProvision,
    ProvisionError,
    ProvisionSearch,
    provision_fleet,
    variant_spec,
)

__all__ = [
    "AXES",
    "Candidate",
    "CandidateEvaluation",
    "CandidateSpace",
    "CostModel",
    "J_PER_KWH",
    "LotProvision",
    "ParetoError",
    "ParetoPoint",
    "ProvisionError",
    "ProvisionReport",
    "ProvisionSearch",
    "REPORT_VERSION",
    "dominates",
    "knee_point",
    "merge_frontiers",
    "pareto_frontier",
    "provision_fleet",
    "variant_spec",
]
