"""Cost and carbon accounting for provisioning candidates.

The simulator's :class:`repro.pcm.energy.EnergyLedger` already meters
scrub energy in joules; provisioning needs two more axes the ledger
cannot know: what a GiB of this memory *costs* and what its lifetime
*carbon footprint* is.  :class:`CostModel` supplies both from four
operator-set numbers:

* ``dollars_per_gib`` - raw array $/GiB at the bit-cell level;
* ``carbon_intensity_kg_per_kwh`` - grid intensity converting metered
  scrub energy into operational kgCO2e;
* ``embodied_kg_per_gib`` - manufacturing (embodied) carbon per raw
  GiB, amortized linearly over ``amortization_years`` and charged to a
  campaign pro-rata by its horizon.

ECC is what couples the model to the candidate grid: check bits live in
the same array as data (see :meth:`repro.pcm.energy.OperationCosts
.for_line`), so a stronger code inflates both $/GiB and embodied
carbon per *usable* GiB by ``(data + overhead) / data`` - the same
storage-overhead multiplier the sustainability-aware ECC literature
uses for embodied-carbon-per-effective-capacity comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units

#: Joules per kilowatt-hour (grid carbon intensity is quoted per kWh).
J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CostModel:
    """Operator economics: $/GiB, grid carbon, embodied carbon.

    Defaults are deliberately round, public-ballpark numbers (resistive
    memory cost forecasts, ~2020s grid average, DRAM-class embodied
    carbon); every figure is overridable from the CLI.
    """

    #: Raw array cost per GiB of *stored bits* (data + check), USD.
    dollars_per_gib: float = 4.0
    #: Grid carbon intensity, kgCO2e per kWh of scrub energy.
    carbon_intensity_kg_per_kwh: float = 0.4
    #: Embodied (manufacturing) carbon per raw GiB, kgCO2e.
    embodied_kg_per_gib: float = 0.03
    #: Years the embodied carbon is amortized over.
    amortization_years: float = 5.0

    def __post_init__(self) -> None:
        if self.dollars_per_gib < 0:
            raise ValueError("dollars_per_gib must be >= 0")
        if self.carbon_intensity_kg_per_kwh < 0:
            raise ValueError("carbon_intensity_kg_per_kwh must be >= 0")
        if self.embodied_kg_per_gib < 0:
            raise ValueError("embodied_kg_per_gib must be >= 0")
        if self.amortization_years <= 0:
            raise ValueError("amortization_years must be positive")

    # -- per-axis contributions ----------------------------------------------

    @staticmethod
    def overhead_factor(overhead_bits: int, data_bits: int) -> float:
        """Raw bits stored per usable data bit: ``(data + ecc) / data``."""
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if overhead_bits < 0:
            raise ValueError("overhead_bits must be >= 0")
        return (data_bits + overhead_bits) / data_bits

    def dollars_per_usable_gib(
        self, overhead_bits: int, data_bits: int
    ) -> float:
        """$/GiB of *usable* capacity under an ECC storage overhead."""
        return self.dollars_per_gib * self.overhead_factor(
            overhead_bits, data_bits
        )

    def operational_carbon_per_gib(self, energy_j_per_gib: float) -> float:
        """kgCO2e/GiB from metered scrub energy over the horizon."""
        return energy_j_per_gib / J_PER_KWH * self.carbon_intensity_kg_per_kwh

    def embodied_carbon_per_gib(
        self,
        horizon_seconds: float,
        overhead_bits: int = 0,
        data_bits: int = 1,
    ) -> float:
        """Amortized embodied kgCO2e per usable GiB for this horizon.

        Linear amortization: a campaign horizon of one amortization
        period carries the full embodied cost; shorter horizons a
        pro-rata share.  The ECC overhead factor converts raw-GiB
        embodied carbon to per-*usable*-GiB.
        """
        if horizon_seconds < 0:
            raise ValueError("horizon_seconds must be >= 0")
        share = horizon_seconds / (self.amortization_years * units.YEAR)
        return (
            self.embodied_kg_per_gib
            * self.overhead_factor(overhead_bits, data_bits)
            * share
        )

    def carbon_per_gib(
        self,
        energy_j_per_gib: float,
        horizon_seconds: float,
        overhead_bits: int = 0,
        data_bits: int = 1,
    ) -> float:
        """Total (operational + amortized embodied) kgCO2e per usable GiB."""
        return self.operational_carbon_per_gib(
            energy_j_per_gib
        ) + self.embodied_carbon_per_gib(
            horizon_seconds, overhead_bits, data_bits
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "dollars_per_gib": float(self.dollars_per_gib),
            "carbon_intensity_kg_per_kwh": float(
                self.carbon_intensity_kg_per_kwh
            ),
            "embodied_kg_per_gib": float(self.embodied_kg_per_gib),
            "amortization_years": float(self.amortization_years),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostModel":
        defaults = cls()
        return cls(
            dollars_per_gib=float(
                data.get("dollars_per_gib", defaults.dollars_per_gib)
            ),
            carbon_intensity_kg_per_kwh=float(
                data.get(
                    "carbon_intensity_kg_per_kwh",
                    defaults.carbon_intensity_kg_per_kwh,
                )
            ),
            embodied_kg_per_gib=float(
                data.get("embodied_kg_per_gib", defaults.embodied_kg_per_gib)
            ),
            amortization_years=float(
                data.get("amortization_years", defaults.amortization_years)
            ),
        )
