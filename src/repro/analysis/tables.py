"""Fixed-width rendering for reproduced tables and figure series.

Benchmarks print their rows through these helpers so a reproduced "table"
or "figure" is a deterministic text block that can be eyeballed against
the paper and diffed across runs.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-padded fixed-width table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    cells = [[_render(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render figure data as one x column plus one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x")
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
