"""Parameter-sweep harnesses over the experiment runner.

Benchmarks express "run these policies at these intervals under this
workload" once, through these helpers, and get back result grids ready for
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.policy import ScrubPolicy
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.runner import run_experiment
from ..workloads.generators import DemandRates

PolicyFactory = Callable[[float], ScrubPolicy]


def sweep_intervals(
    factory: PolicyFactory,
    intervals: Sequence[float],
    config: SimulationConfig,
    rates: DemandRates | None = None,
) -> list[RunResult]:
    """Run one policy family across scrub intervals.

    ``factory`` maps an interval to a policy (e.g. ``basic_scrub``).
    """
    if not intervals:
        raise ValueError("intervals must be non-empty")
    return [run_experiment(factory(interval), config, rates) for interval in intervals]


def sweep_policies(
    policies: Sequence[ScrubPolicy],
    config: SimulationConfig,
    rates: DemandRates | None = None,
) -> list[RunResult]:
    """Run several ready-built policies under identical conditions."""
    if not policies:
        raise ValueError("policies must be non-empty")
    return [run_experiment(policy, config, rates) for policy in policies]
