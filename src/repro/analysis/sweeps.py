"""Parameter-sweep harnesses over the experiment runner.

Benchmarks express "run these policies at these intervals under this
workload" once, through these helpers, and get back result grids ready for
:mod:`repro.analysis.tables`.

All sweeps accept ``jobs``: with ``jobs > 1`` the independent runs fan out
across a process pool (:mod:`repro.sim.parallel`) with bit-identical
results — every run's randomness derives from its config seed, never from
worker placement.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.policy import ScrubPolicy
from ..sim.config import SimulationConfig
from ..sim.parallel import RunSpec, parallel_map, run_many
from ..sim.results import RunResult
from ..sim.runner import crossing_distribution_for, run_experiment
from ..workloads.generators import DemandRates

PolicyFactory = Callable[[float], ScrubPolicy]


def _run_prebuilt(
    task: tuple[ScrubPolicy, SimulationConfig, DemandRates | None],
) -> RunResult:
    policy, config, rates = task
    return run_experiment(policy, config, rates)


def sweep_intervals(
    factory: PolicyFactory | str,
    intervals: Sequence[float],
    config: SimulationConfig,
    rates: DemandRates | None = None,
    jobs: int = 1,
) -> list[RunResult]:
    """Run one policy family across scrub intervals.

    ``factory`` maps an interval to a policy (e.g. ``basic_scrub``) or
    names a registered factory (``"basic"``, ``"combined"``, ...) — the
    name form is what the parallel path pickles, so prefer it for
    ``jobs > 1``.
    """
    if not intervals:
        raise ValueError("intervals must be non-empty")
    if isinstance(factory, str):
        specs = [
            RunSpec(
                policy=factory,
                config=config,
                policy_kwargs={"interval": interval},
                rates=rates,
            )
            for interval in intervals
        ]
        return run_many(specs, jobs=jobs)
    return sweep_policies(
        [factory(interval) for interval in intervals], config, rates, jobs=jobs
    )


def sweep_policies(
    policies: Sequence[ScrubPolicy],
    config: SimulationConfig,
    rates: DemandRates | None = None,
    jobs: int = 1,
) -> list[RunResult]:
    """Run several ready-built policies under identical conditions."""
    if not policies:
        raise ValueError("policies must be non-empty")
    if jobs > 1 and len(policies) > 1:
        # Warm the distribution disk cache in the parent so spawn workers
        # load the tabulation instead of recomputing it per process.
        crossing_distribution_for(config)
    tasks = [(policy, config, rates) for policy in policies]
    return parallel_map(_run_prebuilt, tasks, jobs=jobs)


def _provision_task(
    task: tuple[float, int, int, float],
) -> tuple[float, int, float | None, float | None]:
    from ..core.budgeted import reliability_at_budget
    from ..params import CellSpec
    from ..sim.analytic import AnalyticModel
    from ..sim.runner import cached_crossing_distribution

    budget, strength, lines_per_bank, temperature_k = task
    model = AnalyticModel(
        cached_crossing_distribution(CellSpec(), temperature_k), 256
    )
    try:
        interval, failure = reliability_at_budget(
            model, lines_per_bank, budget, strength
        )
    except ValueError:
        return budget, strength, None, None
    return budget, strength, interval, failure


def provision_grid(
    budgets: Sequence[float],
    strengths: Sequence[int],
    lines_per_bank: int,
    temperature_k: float = 300.0,
    jobs: int = 1,
) -> list[tuple[float, int, float | None, float | None]]:
    """Affordable interval and per-visit failure for each (budget, strength).

    Returns ``(budget, strength, interval, failure)`` rows in grid order;
    ``interval``/``failure`` are ``None`` when the budget cannot sustain
    the strength (infeasible point).
    """
    if not budgets or not strengths:
        raise ValueError("budgets and strengths must be non-empty")
    tasks = [
        (budget, strength, lines_per_bank, temperature_k)
        for budget in budgets
        for strength in strengths
    ]
    if jobs > 1 and len(tasks) > 1:
        from ..params import CellSpec
        from ..sim.runner import cached_crossing_distribution

        cached_crossing_distribution(CellSpec(), temperature_k)
    return parallel_map(_provision_task, tasks, jobs=jobs)
