"""Result export: CSV and JSON-lines for downstream analysis.

Benchmarks print human tables; sweeps that feed plotting pipelines or
regression dashboards want machine-readable rows.  One row per
:class:`~repro.sim.results.RunResult`, flat columns, stable ordering.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from ..sim.results import RunResult

#: Flat columns exported for every run, in order.
RESULT_COLUMNS = (
    "policy",
    "workload",
    "num_lines",
    "horizon_s",
    "seed",
    "temperature_k",
    "uncorrectable",
    "scrub_reads",
    "scrub_decodes",
    "scrub_writes",
    "scrub_energy_j",
    "demand_writes",
    "detector_misses",
    "retired",
    "runtime_s",
)


def _row(result: RunResult) -> dict[str, object]:
    blob = result.to_dict()
    return {column: blob[column] for column in RESULT_COLUMNS}


def results_to_csv(results: Sequence[RunResult]) -> str:
    """Render runs as CSV with a header row.

    >>> text = results_to_csv([])
    >>> text.splitlines()[0].startswith("policy,workload")
    True
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(RESULT_COLUMNS))
    writer.writeheader()
    for result in results:
        writer.writerow(_row(result))
    return buffer.getvalue()


def results_to_jsonl(results: Sequence[RunResult]) -> str:
    """One full ``to_dict`` JSON object per line (includes breakdowns)."""
    return "\n".join(json.dumps(result.to_dict()) for result in results)


def write_results(path, results: Sequence[RunResult]) -> None:
    """Write results to ``path``; format chosen by suffix (.csv / .jsonl)."""
    from pathlib import Path

    path = Path(path)
    if path.suffix == ".csv":
        payload = results_to_csv(results)
    elif path.suffix == ".jsonl":
        payload = results_to_jsonl(results) + ("\n" if results else "")
    else:
        raise ValueError(f"unsupported export suffix {path.suffix!r}")
    path.write_text(payload)
