"""Result export: CSV and JSON-lines for downstream analysis.

Benchmarks print human tables; sweeps that feed plotting pipelines or
regression dashboards want machine-readable rows.  One row per
:class:`~repro.sim.results.RunResult`, flat columns, stable ordering.

Runs that collected telemetry (:mod:`repro.obs`) carry it through the
JSONL export automatically (``to_dict`` adds ``timeseries``/``profile``
keys when present); :func:`write_timeseries` exports a sweep's per-run
time series plus their merged fleet view as one JSON document.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from pathlib import Path

from ..obs.sampler import merge_timeseries
from ..sim.results import RunResult

#: Flat columns exported for every run, in order.
RESULT_COLUMNS = (
    "policy",
    "workload",
    "num_lines",
    "horizon_s",
    "seed",
    "temperature_k",
    "uncorrectable",
    "scrub_reads",
    "scrub_decodes",
    "scrub_writes",
    "scrub_energy_j",
    "demand_writes",
    "detector_misses",
    "retired",
    "runtime_s",
)


def _row(result: RunResult) -> dict[str, object]:
    blob = result.to_dict()
    return {column: blob[column] for column in RESULT_COLUMNS}


def results_to_csv(results: Sequence[RunResult]) -> str:
    """Render runs as CSV with a header row.

    >>> text = results_to_csv([])
    >>> text.splitlines()[0].startswith("policy,workload")
    True
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(RESULT_COLUMNS))
    writer.writeheader()
    for result in results:
        writer.writerow(_row(result))
    return buffer.getvalue()


def results_to_jsonl(results: Sequence[RunResult]) -> str:
    """One full ``to_dict`` JSON object per line (includes breakdowns)."""
    return "\n".join(json.dumps(result.to_dict()) for result in results)


def write_timeseries(
    path, labels: Sequence[str], results: Sequence[RunResult]
) -> None:
    """Write per-run labeled time series plus their merged sum as JSON.

    Every result must have been run with sampling enabled
    (``config.obs.sample_every``); the ``merged`` entry is the sample-wise
    sum across runs (:func:`repro.obs.sampler.merge_timeseries`) - the
    fleet view of a sweep.
    """
    if len(labels) != len(results):
        raise ValueError("one label per result required")
    missing = [label for label, r in zip(labels, results) if r.timeseries is None]
    if missing:
        raise ValueError(f"runs without time series: {missing}")
    payload = {
        "runs": [
            {"label": str(label), **result.timeseries.to_dict()}
            for label, result in zip(labels, results)
        ],
        "merged": merge_timeseries([r.timeseries for r in results]).to_dict(),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def write_results(path, results: Sequence[RunResult]) -> None:
    """Write results to ``path``; format chosen by suffix (.csv / .jsonl)."""
    path = Path(path)
    if path.suffix == ".csv":
        payload = results_to_csv(results)
    elif path.suffix == ".jsonl":
        payload = results_to_jsonl(results) + ("\n" if results else "")
    else:
        raise ValueError(f"unsupported export suffix {path.suffix!r}")
    path.write_text(payload)
