"""Summary statistics for reported numbers.

Uncorrectable-error counts are (approximately) Poisson, so their intervals
come from the chi-square construction; continuous metrics (energy, latency)
get t-based mean intervals across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean plus a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} +- {self.half_width:.2g} (n={self.n})"


def summarize(values: list[float] | np.ndarray, confidence: float = 0.95) -> Summary:
    """t-interval summary of repeated-measure values."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize zero values")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(mean=mean, half_width=0.0, n=1)
    stderr = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return Summary(
        mean=mean,
        half_width=_t_critical(arr.size - 1, confidence) * stderr,
        n=int(arr.size),
    )


def mean_confidence_interval(
    values: list[float] | np.ndarray, confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, low, high) convenience wrapper around :func:`summarize`."""
    s = summarize(values, confidence)
    return s.mean, s.low, s.high


def poisson_interval(count: int, confidence: float = 0.95) -> tuple[float, float]:
    """Exact (Garwood) confidence interval for a Poisson count.

    >>> low, high = poisson_interval(0)
    >>> low
    0.0
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    from scipy.stats import chi2

    alpha = 1.0 - confidence
    low = 0.0 if count == 0 else float(chi2.ppf(alpha / 2, 2 * count) / 2)
    high = float(chi2.ppf(1 - alpha / 2, 2 * (count + 1)) / 2)
    return low, high


def binomial_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used for fleet availability (fraction of devices surviving the
    horizon UE-free): well-behaved at the extremes 0/n and n/n where the
    normal approximation collapses.

    >>> low, high = binomial_interval(0, 10)
    >>> low
    0.0
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2))
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denominator
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, center - half), min(1.0, center + half)


def _t_critical(dof: int, confidence: float) -> float:
    from scipy.stats import t

    return float(t.ppf(0.5 + confidence / 2, dof))
