"""Analysis helpers: sweeps, statistics, and table rendering.

Every benchmark builds its output through this package so all reproduced
tables and series share one look: :mod:`repro.analysis.tables` renders
fixed-width tables and x/y series, :mod:`repro.analysis.sweeps` runs
parameter sweeps over the experiment runner, and
:mod:`repro.analysis.stats` provides the summary statistics (means,
Poisson confidence intervals) the reported numbers carry.
"""

from __future__ import annotations

from .stats import mean_confidence_interval, poisson_interval, summarize
from .sweeps import provision_grid, sweep_intervals, sweep_policies
from .tables import format_series, format_table

__all__ = [
    "format_series",
    "format_table",
    "mean_confidence_interval",
    "poisson_interval",
    "summarize",
    "provision_grid",
    "sweep_intervals",
    "sweep_policies",
]
