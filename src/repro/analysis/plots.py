"""ASCII figure rendering: log-scale line charts for terminals.

The benchmarks print numeric series; the examples additionally *draw*
them, because the shapes (orders-of-magnitude gaps, crossovers, knees)
are the point of the paper's figures.  No plotting dependency: fixed-grid
ASCII, one glyph per series, log or linear y.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox*+#@%&"


def ascii_chart(
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    height: int = 12,
    log_y: bool = True,
    title: str | None = None,
    floor: float = 1e-12,
) -> str:
    """Render series as an ASCII chart with a legend.

    ``log_y`` plots log10(max(value, floor)); zeros sit on the floor line.

    >>> text = ascii_chart(["a", "b"], {"s": [1.0, 10.0]}, height=4)
    >>> "s" in text
    True
    """
    if not series:
        raise ValueError("series must be non-empty")
    if height < 3:
        raise ValueError("height must be >= 3")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")
    width = len(x_labels)
    for name, values in series.items():
        if len(values) != width:
            raise ValueError(f"series {name!r} length does not match x labels")
    if width == 0:
        raise ValueError("need at least one x position")

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, floor))
        return value

    transformed = {
        name: [transform(v) for v in values] for name, values in series.items()
    }
    lo = min(min(vals) for vals in transformed.values())
    hi = max(max(vals) for vals in transformed.values())
    if hi == lo:
        hi = lo + 1.0

    # Column spacing: at least 2 chars per x position.
    col_width = max(2, (60 // width) if width else 2)
    grid_width = col_width * width
    grid = [[" "] * grid_width for _ in range(height)]

    for (name, values), glyph in zip(transformed.items(), SERIES_GLYPHS):
        for i, value in enumerate(values):
            row = round((value - lo) / (hi - lo) * (height - 1))
            r = height - 1 - row
            c = i * col_width + col_width // 2
            grid[r][c] = glyph

    def y_label(row: int) -> str:
        value = lo + (height - 1 - row) / (height - 1) * (hi - lo)
        if log_y:
            return f"1e{value:+.0f}"
        return f"{value:.3g}"

    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        label = y_label(r) if r in (0, height // 2, height - 1) else ""
        lines.append(f"{label:>8} |" + "".join(grid[r]))
    lines.append(" " * 9 + "+" + "-" * grid_width)
    # X labels, centered in their columns (truncated to fit).
    cells = []
    for label in x_labels:
        text = str(label)[: col_width]
        cells.append(text.center(col_width))
    lines.append(" " * 10 + "".join(cells))
    legend = "   ".join(
        f"{glyph}={name}" for (name, __), glyph in zip(series.items(), SERIES_GLYPHS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
