"""A7 (ablation): density vs drift vulnerability - 1/2/3 bits per cell.

The reason the paper exists in one chart: packing more levels into the
same resistance window halves every guard band per extra bit, so drift
error rates jump by orders of magnitude while storage density grows
linearly.  Generated from the generalized MLC constructor over a fixed
3-decade window, reporting the worst-level error probability at three
ages plus the scrub interval each geometry sustains under BCH-4.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.pcm.drift import DriftModel
from repro.pcm.mlc import make_mlc_spec
from repro.sim.analytic import AnalyticModel, CrossingDistribution

BITS = [1, 2, 3]
TARGET = 1e-9


def compute() -> list[list[object]]:
    rows = []
    for bits in BITS:
        spec = make_mlc_spec(bits)
        model = DriftModel(spec)
        worst_hour = max(
            model.error_probability(level, units.HOUR)
            for level in range(spec.num_levels)
        )
        worst_day = max(
            model.error_probability(level, units.DAY)
            for level in range(spec.num_levels)
        )
        # Cells per 64-byte line shrinks as density rises.
        cells = 512 // bits
        analytic = AnalyticModel(
            CrossingDistribution(spec), cells_per_line=cells
        )
        try:
            interval = analytic.required_interval(4, TARGET)
            interval_text = units.format_seconds(interval)
        except ValueError:
            interval_text = "< 0.1s"
        rows.append(
            [
                bits,
                spec.num_levels,
                cells,
                f"{worst_hour:.3e}",
                f"{worst_day:.3e}",
                interval_text,
            ]
        )
    return rows


def test_a07_bits_per_cell(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a07_bits_per_cell",
        format_table(
            ["bits/cell", "levels", "cells/line", "worst P(err,1h)",
             "worst P(err,1d)", "bch4 interval @1e-9"],
            rows,
            title="A7: storage density vs drift vulnerability (fixed 3-decade window)",
        ),
    )
    hour = [float(row[3]) for row in rows]
    # SLC is effectively immune; every extra bit costs orders of magnitude.
    assert hour[0] < 1e-12
    assert hour[2] > 10 * hour[1] > 0
