"""A10 (ablation): device-lifetime projection per scrub configuration.

Closes the endurance loop on the headline write reduction: in a
scrub-write-dominated deployment, the threshold mechanism's write factor
is (nearly) a lifetime factor.  Closed form throughout - renewal write
rates against the lognormal endurance budget - with a demand-write column
showing how workload wear dilutes the scrub share.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.params import CellSpec, EnduranceSpec
from repro.sim.analytic import CrossingDistribution
from repro.sim.lifetime import project_lifetime
from repro.sim.renewal import RenewalModel

INTERVAL = units.HOUR
ENDURANCE = EnduranceSpec()  # 1e8 writes
CONFIGS = [
    ("bch4 theta=1 (eager)", 4, 1),
    ("bch4 theta=3", 4, 3),
    ("bch8 theta=1 (eager)", 8, 1),
    ("bch8 theta=6", 8, 6),
]
DEMAND_RATES = [0.0, 1.0 / units.HOUR]


def compute() -> list[list[object]]:
    renewal = RenewalModel(CrossingDistribution(CellSpec()), cells_per_line=256)
    rows = []
    for name, strength, theta in CONFIGS:
        for demand in DEMAND_RATES:
            report = project_lifetime(
                renewal, INTERVAL, strength, theta, ENDURANCE,
                demand_write_rate=demand,
            )
            rows.append(
                [
                    name,
                    "idle" if demand == 0 else "1 wr/h",
                    f"{report.scrub_write_rate:.2e}",
                    f"{report.years_to_wearout:.0f}",
                    f"{report.soft_ue_rate:.2e}",
                ]
            )
    return rows


def test_a10_lifetime(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a10_lifetime",
        format_table(
            ["config", "demand", "scrub wr/line/s", "years to wear-out",
             "soft UE/line/s"],
            rows,
            title=(
                "A10: projected device lifetime (1e8 endurance, 1% spare "
                f"budget, scrub interval {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    idle = {row[0]: float(row[3]) for row in rows if row[1] == "idle"}
    # Threshold write-back extends idle-deployment life substantially.
    assert idle["bch4 theta=3"] > 2 * idle["bch4 theta=1 (eager)"]
    assert idle["bch8 theta=6"] > 5 * idle["bch8 theta=1 (eager)"]
    # Demand wear caps the benefit (lifetimes converge when demand
    # dominates the write budget).
    busy = {row[0]: float(row[3]) for row in rows if row[1] != "idle"}
    spread_idle = idle["bch8 theta=6"] / idle["bch8 theta=1 (eager)"]
    spread_busy = busy["bch8 theta=6"] / busy["bch8 theta=1 (eager)"]
    assert spread_busy < spread_idle