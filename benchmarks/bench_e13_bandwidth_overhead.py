"""E13 (table): scrub bandwidth / bank-occupancy overhead per mechanism.

The fair comparison is at *equal reliability*: each mechanism runs at the
longest interval meeting the same per-visit line-failure budget (from the
analytic model, as in E4b).  SECDED must rescan every line in minutes;
BCH-8 sustains hours - so at equal protection the baseline occupies the
banks for one to two orders of magnitude more time.  Occupancy is scaled
to a realistic bank (2^22 64-byte lines = 256 MiB); write volumes come
from population Monte Carlo at the chosen intervals.

A companion queueing study pushes each mechanism's honest per-bank
operation rates through the low-priority bank queue model under heavy
demand to show the bank-share and demand-latency ordering.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import basic_scrub, combined_scrub, strong_ecc_scrub
from repro.mem.controller import BankQueueModel, ScrubTraffic
from repro.mem.geometry import MemoryGeometry
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import AnalyticModel, CrossingDistribution
from repro.sim.runner import build_stats
from repro.workloads.generators import uniform_rates
from repro.workloads.trace import trace_from_rates

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=7 * units.DAY, endurance=None
)
#: Per-visit line-failure budget all mechanisms are held to.
TARGET = 1e-9
#: Realistic bank: 2^22 64-byte lines (256 MiB).
REAL_LINES_PER_BANK = 1 << 22
GEOMETRY = MemoryGeometry(channels=1, banks_per_channel=8,
                          rows_per_bank=32, lines_per_row=32)
QUEUE_WINDOW = 2.0


def mechanisms(model: AnalyticModel):
    return [
        ("basic(secded)", basic_scrub, model.required_interval(1, TARGET)),
        ("strong(bch4)", lambda T: strong_ecc_scrub(T, 4),
         model.required_interval(4, TARGET)),
        ("combined(bch8)", combined_scrub, model.required_interval(8, TARGET)),
    ]


def compute() -> list[list[object]]:
    model = AnalyticModel(
        CrossingDistribution(CellSpec()), CONFIG.cells_per_line
    )
    demand = uniform_rates(GEOMETRY.num_lines, total_write_rate=20_000.0,
                           read_write_ratio=3.0)
    trace = trace_from_rates(demand, QUEUE_WINDOW, np.random.default_rng(31))
    rows = []
    for name, factory, interval in mechanisms(model):
        policy = factory(interval)
        result = run_experiment(policy, CONFIG)
        stats = result.stats
        # Writes per line-visit, measured; reads are one per line-visit.
        writes_per_visit = stats.scrub_writes / stats.visits
        decodes_per_visit = stats.scrub_decodes / stats.visits
        # Busy seconds per real bank per second of wall clock.
        visits_per_second = REAL_LINES_PER_BANK / interval
        busy = visits_per_second * (
            stats.costs.read_latency
            + decodes_per_visit * stats.costs.decode_latency
            + writes_per_visit * stats.costs.write_latency
        )
        queue_stats = build_stats(policy, CONFIG)
        queue_model = BankQueueModel(GEOMETRY, queue_stats.costs)
        # Honest per-real-bank operation rates feed the queue study.
        scrub = ScrubTraffic(
            reads_per_second=visits_per_second,
            writes_per_second=visits_per_second * writes_per_visit,
        )
        report = queue_model.simulate(trace, scrub, QUEUE_WINDOW,
                                      np.random.default_rng(32))
        rows.append(
            [
                name,
                units.format_seconds(interval),
                f"{busy:.3%}",
                f"{writes_per_visit:.4f}",
                f"{report.scrub_share:.2%}",
                f"{report.mean_read_latency * 1e9:.0f}ns",
            ]
        )
    return rows


def test_e13_bandwidth_overhead(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e13_bandwidth_overhead",
        format_table(
            ["mechanism", f"interval @P<={TARGET:g}", "bank busy",
             "writes/visit", "scrub bank share (queue)", "demand read lat"],
            rows,
            title=(
                "E13: bank time each mechanism costs at EQUAL reliability "
                "(256 MiB banks, honest rates)"
            ),
        ),
    )
    busy = [float(row[2].rstrip("%")) for row in rows]
    # At equal protection the baseline occupies banks >=10x more.
    assert busy[0] > 10 * busy[2]
    assert busy[0] > busy[1] > busy[2]