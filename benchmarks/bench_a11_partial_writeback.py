"""A11 (ablation): cell-selective (partial) write-back.

PCM programs cells individually, so a scrub write-back need only touch
the drifted cells.  Three effects stack:

* **energy** - write energy scales with the handful of corrected cells
  instead of the whole 284-cell line;
* **wear** - per-cell write counts drop by the same factor;
* **selection** - the untouched cells are the proven-slow ones (their
  drift exponents persist until re-programmed), so lines harden over
  successive partial write-backs and even the *event* count falls.

Modelling note: a re-programmed cell redraws its drift exponent (each
programming pulse creates a fresh amorphous configuration); a surviving
cell keeps its clock exactly.  Both follow from the power-law model.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.core import partial_scrub, threshold_scrub
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR
SWEEP = [(4, 3), (8, 6)]


def compute() -> list[list[object]]:
    rows = []
    for strength, theta in SWEEP:
        full = run_experiment(
            threshold_scrub(INTERVAL, strength, threshold=theta), CONFIG
        )
        partial = run_experiment(
            partial_scrub(INTERVAL, strength, threshold=theta), CONFIG
        )
        for label, result in (("full", full), ("partial", partial)):
            rows.append(
                [
                    f"bch{strength}/theta={theta}",
                    label,
                    result.scrub_writes,
                    result.stats.partial_cells,
                    f"{result.stats.energy_breakdown()['write'] * 1e6:.1f}uJ",
                    f"{result.mean_writes_per_line:.2f}",
                    result.uncorrectable,
                ]
            )
    return rows


def test_a11_partial_writeback(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a11_partial_writeback",
        format_table(
            ["config", "writeback", "events", "cells", "write energy",
             "writes/line", "UE"],
            rows,
            title=(
                "A11: full vs cell-selective write-back "
                f"({CONFIG.num_lines} lines, {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    for i in range(0, len(rows), 2):
        full, partial = rows[i], rows[i + 1]
        # Event count falls (selection effect), energy collapses, and
        # wear follows the cell count.
        assert partial[2] < full[2]
        full_energy = float(full[4].rstrip("uJ"))
        partial_energy = float(partial[4].rstrip("uJ"))
        assert partial_energy < full_energy / 10
        assert float(partial[5]) < float(full[5])
        # Protection stays in the same class.
        assert partial[6] <= 3 * max(full[6], 10)
