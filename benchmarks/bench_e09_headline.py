"""E9 (table): the headline comparison - combined mechanism vs basic scrub.

The abstract's three numbers, regenerated: relative to a DRAM-style basic
scrub at the same base interval and under the same skewed demand workload,
the combined mechanism (BCH-8 + CRC detection + threshold write-back +
adaptive per-region intervals) reports

    paper:   96.5 % fewer uncorrectable errors
             24.4x fewer scrub-related writes
             37.8 % less scrub energy

Our absolute device constants differ from the authors' measured hardware,
so EXPERIMENTS.md records measured-vs-paper; the assertions below pin the
direction and rough magnitude.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import basic_scrub, combined_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import zipf_rates

CONFIG = SimulationConfig(
    num_lines=16384, region_size=1024, horizon=21 * units.DAY, endurance=None
)
INTERVAL = units.HOUR


def workload():
    # Server-style skewed traffic: a hot subset absorbs most demand writes,
    # every line averages one demand write per ~8 hours.
    return zipf_rates(
        CONFIG.num_lines,
        total_write_rate=CONFIG.num_lines / (8 * units.HOUR),
        alpha=1.0,
        rng=np.random.default_rng(99),
    )


def compute():
    rates = workload()
    base = run_experiment(basic_scrub(INTERVAL), CONFIG, rates)
    ours = run_experiment(combined_scrub(INTERVAL), CONFIG, rates)
    return base, ours


def test_e09_headline(benchmark, emit):
    base, ours = benchmark.pedantic(compute, rounds=1, iterations=1)
    ue_reduction = ours.ue_reduction_vs(base)
    write_factor = ours.write_factor_vs(base)
    energy_reduction = ours.energy_reduction_vs(base)
    rows = [
        ["uncorrectable errors", base.uncorrectable, ours.uncorrectable,
         f"{ue_reduction:.1%}", "96.5%"],
        ["scrub writes", base.scrub_writes, ours.scrub_writes,
         f"{write_factor:.1f}x", "24.4x"],
        ["scrub energy", units.format_energy(base.scrub_energy),
         units.format_energy(ours.scrub_energy),
         f"{energy_reduction:.1%}", "37.8%"],
    ]
    emit(
        "e09_headline",
        format_table(
            ["metric", "basic", "combined", "measured", "paper"],
            rows,
            title=(
                "E9: headline - combined vs basic scrub "
                f"({CONFIG.num_lines} lines, {units.format_seconds(CONFIG.horizon)}, "
                f"zipf demand, base interval {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    # Direction and rough magnitude of all three abstract numbers.
    assert base.uncorrectable > 100
    assert ue_reduction > 0.9
    assert write_factor > 5.0
    assert energy_reduction > 0.3
