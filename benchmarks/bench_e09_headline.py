"""E9 (table): the headline comparison - combined mechanism vs basic scrub.

The abstract's three numbers, regenerated: relative to a DRAM-style basic
scrub at the same base interval and under the same skewed demand workload,
the combined mechanism (BCH-8 + CRC detection + threshold write-back +
adaptive per-region intervals) reports

    paper:   96.5 % fewer uncorrectable errors
             24.4x fewer scrub-related writes
             37.8 % less scrub energy

Our absolute device constants differ from the authors' measured hardware,
so EXPERIMENTS.md records measured-vs-paper; the assertions below pin the
direction and rough magnitude.
"""

from __future__ import annotations

import time

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.obs import NULL_PROFILER
from repro.sim import RunSpec, SimulationConfig, run_many
from repro.sim.parallel import timing_summary
from repro.workloads.generators import zipf_rates

CONFIG = SimulationConfig(
    num_lines=16384, region_size=1024, horizon=21 * units.DAY, endurance=None
)
INTERVAL = units.HOUR


def workload():
    # Server-style skewed traffic: a hot subset absorbs most demand writes,
    # every line averages one demand write per ~8 hours.
    return zipf_rates(
        CONFIG.num_lines,
        total_write_rate=CONFIG.num_lines / (8 * units.HOUR),
        alpha=1.0,
        rng=np.random.default_rng(99),
    )


def compute(jobs: int = 1, profiler=NULL_PROFILER):
    with profiler.span("e09.workload"):
        rates = workload()
    specs = [
        RunSpec("basic", CONFIG, {"interval": INTERVAL}, rates),
        RunSpec("combined", CONFIG, {"interval": INTERVAL}, rates),
    ]
    with profiler.span("e09.run_many"):
        base, ours = run_many(specs, jobs=jobs)
    return base, ours


def test_e09_headline(benchmark, emit, bench_jobs, bench_summary, bench_profiler):
    started = time.perf_counter()
    base, ours = benchmark.pedantic(
        compute, args=(bench_jobs, bench_profiler), rounds=1, iterations=1
    )
    bench_summary["e09_headline"] = timing_summary(
        [base, ours], time.perf_counter() - started, bench_jobs
    )
    ue_reduction = ours.ue_reduction_vs(base)
    write_factor = ours.write_factor_vs(base)
    energy_reduction = ours.energy_reduction_vs(base)
    rows = [
        ["uncorrectable errors", base.uncorrectable, ours.uncorrectable,
         f"{ue_reduction:.1%}", "96.5%"],
        ["scrub writes", base.scrub_writes, ours.scrub_writes,
         f"{write_factor:.1f}x", "24.4x"],
        ["scrub energy", units.format_energy(base.scrub_energy),
         units.format_energy(ours.scrub_energy),
         f"{energy_reduction:.1%}", "37.8%"],
    ]
    emit(
        "e09_headline",
        format_table(
            ["metric", "basic", "combined", "measured", "paper"],
            rows,
            title=(
                "E9: headline - combined vs basic scrub "
                f"({CONFIG.num_lines} lines, {units.format_seconds(CONFIG.horizon)}, "
                f"zipf demand, base interval {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    # Direction and rough magnitude of all three abstract numbers.
    assert base.uncorrectable > 100
    assert ue_reduction > 0.9
    assert write_factor > 5.0
    assert energy_reduction > 0.3
