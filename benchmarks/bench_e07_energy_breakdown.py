"""E7 (figure): scrub energy breakdown (read/detect/decode/write) per scheme.

Where each mechanism's energy goes: the baseline spends most of its scrub
energy on write-backs; strong ECC adds decode energy; the detector removes
almost all decodes; the threshold removes almost all writes - leaving the
combined scheme paying little beyond the mandatory array reads.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.core import (
    basic_scrub,
    combined_scrub,
    light_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR


def policies():
    return [
        basic_scrub(INTERVAL),
        strong_ecc_scrub(INTERVAL, 4),
        light_scrub(INTERVAL, 4),
        threshold_scrub(INTERVAL, 4),
        combined_scrub(INTERVAL),
    ]


def compute() -> list[list[object]]:
    rows = []
    for policy in policies():
        result = run_experiment(policy, CONFIG)
        breakdown = result.stats.energy_breakdown()
        total = result.scrub_energy
        rows.append(
            [
                result.policy_name,
                units.format_energy(total),
                *(f"{breakdown[k] / total:.1%}" for k in ("read", "detect", "decode", "write")),
                result.uncorrectable,
            ]
        )
    return rows


def test_e07_energy_breakdown(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e07_energy_breakdown",
        format_table(
            ["policy", "scrub E", "read", "detect", "decode", "write", "UE"],
            rows,
            title=f"E7: scrub energy breakdown @ {units.format_seconds(INTERVAL)}",
        ),
    )
    by_name = {row[0]: row for row in rows}

    def write_share(name):
        return float(by_name[name][5].rstrip("%")) / 100

    def decode_share(name):
        return float(by_name[name][4].rstrip("%")) / 100

    # Baseline: write-back dominated.  Combined: read dominated.
    assert write_share("basic(secded)") > 0.3
    assert write_share("combined(t=8,theta=6)") < 0.35
    # The detector removes nearly all decode energy relative to strong.
    assert decode_share("light(bch4+crc)") < 0.5 * decode_share("strong(bch4)")
