"""E1 (figure): per-level drift soft-error probability vs time since write.

The device-level curve that motivates everything: the two intermediate
levels of a 4-level cell drift toward their upper read boundaries, so
their misread probability climbs from negligible (seconds) to severe
(days) - while the fully crystalline and fully amorphous levels stay safe.
Regenerated from the closed-form model; E2 validates it against Monte
Carlo.
"""

from __future__ import annotations

import time

import numpy as np

from repro import units
from repro.analysis.tables import format_series
from repro.params import CellSpec
from repro.pcm.drift import DriftModel
from repro.sim.parallel import parallel_map

POINTS = 13


def _level_curve(level: int) -> list[float]:
    model = DriftModel(CellSpec())
    times = np.logspace(0, 7.5, POINTS)  # 1 s .. ~1 yr
    return [model.error_probability(level, t) for t in times]


def compute_series(jobs: int = 1) -> tuple[list[str], dict[str, list[float]]]:
    times = np.logspace(0, 7.5, POINTS)
    labels = [units.format_seconds(t) for t in times]
    curves = parallel_map(_level_curve, range(4), jobs=jobs)
    series = {f"P(err) L{level}": curve for level, curve in enumerate(curves)}
    return labels, series


def test_e01_drift_error_vs_time(benchmark, emit, bench_jobs, bench_summary, bench_profiler):
    started = time.perf_counter()
    with bench_profiler.span("e01.curves"):
        labels, series = benchmark.pedantic(
            compute_series, args=(bench_jobs,), rounds=1, iterations=1
        )
    bench_summary["e01_drift_error_vs_time"] = {
        "points": POINTS,
        "jobs": bench_jobs,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }
    emit(
        "e01_drift_error_vs_time",
        format_series(
            "age",
            labels,
            series,
            title="E1: per-level drift error probability vs time since write",
        ),
    )
    l2 = series["P(err) L2"]
    # The motivating shape: monotone growth spanning many decades, with the
    # intermediate level far worse than the extremes.
    assert l2 == sorted(l2)
    assert l2[-1] > 0.1
    assert series["P(err) L3"][-1] == 0.0
    assert series["P(err) L0"][-1] < 1e-6
