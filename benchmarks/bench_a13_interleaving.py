"""A13 (ablation): address interleaving vs per-region adaptive scrub.

Performance-oriented address maps rotate consecutive lines across banks
(LINE_INTERLEAVED), which spreads a logical hotspot's demand writes over
every bank - destroying exactly the region-level heterogeneity that
adaptive scrub exploits.  Row-major mapping keeps the hotspot in a few
banks; the adaptive scrubber relaxes the rest.  Same workload, same
policy, two address maps: a system-level interaction neither the memory
mapping nor the scrub papers usually model together.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.core import combined_scrub
from repro.mem.geometry import Interleaving, MemoryGeometry
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import hotspot_rates, remap_rates

GEOMETRY_KW = dict(channels=2, banks_per_channel=4, rows_per_bank=32, lines_per_row=32)
NUM_LINES = MemoryGeometry(**GEOMETRY_KW).num_lines  # 8192
CONFIG = SimulationConfig(
    num_lines=NUM_LINES,
    region_size=MemoryGeometry(**GEOMETRY_KW).lines_per_bank,
    horizon=14 * units.DAY,
    endurance=None,
)
INTERVAL = units.HOUR


def compute() -> list[list[object]]:
    logical = hotspot_rates(
        NUM_LINES,
        total_write_rate=NUM_LINES / (10 * units.MINUTE),
        hot_fraction=0.25,
        hot_share=0.99,
    )
    rows = []
    for interleaving in (Interleaving.ROW_MAJOR, Interleaving.LINE_INTERLEAVED):
        geometry = MemoryGeometry(**GEOMETRY_KW, interleaving=interleaving)
        rates = remap_rates(logical, geometry.bank_major_map())
        result = run_experiment(combined_scrub(INTERVAL), CONFIG, rates)
        rows.append(
            [
                interleaving.value,
                result.stats.visits,
                result.scrub_writes,
                result.uncorrectable,
                units.format_energy(result.scrub_energy),
            ]
        )
    return rows


def test_a13_interleaving(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a13_interleaving",
        format_table(
            ["address map", "scrub visits", "scrub writes", "UE", "scrub E"],
            rows,
            title=(
                "A13: the same logical hotspot under two address maps "
                "(combined scrub; regions = banks)"
            ),
        ),
    )
    by_map = {row[0]: row for row in rows}
    row_major_visits = by_map["row_major"][1]
    interleaved_visits = by_map["line_interleaved"][1]
    # Row-major preserves bank-level heterogeneity: the two hot banks relax
    # to the interval ceiling and all but vanish from the visit count,
    # while under interleaving every bank stays cold-line-limited.  The
    # total is dominated by the 6 cold banks either way, so the aggregate
    # gap is bounded by the hot fraction (~8% here) - asserted directional.
    assert row_major_visits < 0.95 * interleaved_visits
    # Protection equivalent either way.
    assert abs(by_map["row_major"][3] - by_map["line_interleaved"][3]) <= 10