"""P5 (performance): surrogate-first provisioning search vs exhaustive MC.

The acceptance demonstration for `repro.provision`: the bundled
provisioning fleet (two lots, a nominal aisle and a hot fast-drift
corner) swept over an 11-candidate grid - ten detector-less threshold
configurations the renewal surrogate scores exactly, plus one `basic`
(DRAM-style) candidate that is out of the surrogate's regime and must
be Monte-Carlo'd either way.  The screened search must

* recover the *identical* per-lot Pareto frontier (same candidate key
  sets) as ground-truth exhaustive MC evaluation of the whole grid, and
* spend at least 5x fewer MC device-runs doing it.

Both searches run at ``jobs=4``; the provisioning report is
deterministic for any jobs value, so the comparison is exact.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.fleet import FleetSpec
from repro.obs import NULL_PROFILER
from repro.provision import Candidate, CandidateSpace, ProvisionSearch

SPEC_PATH = (
    Path(__file__).resolve().parent.parent
    / "examples"
    / "specs"
    / "fleet_provision.json"
)
JOBS = 4
MIN_MC_SAVINGS_RATIO = 5.0

#: Ten in-regime threshold candidates the renewal surrogate scores
#: exactly...
SPACE = CandidateSpace(
    policies=("threshold",),
    intervals=(900.0, 1800.0, 3600.0, 7200.0, 14400.0),
    strengths=(2, 4),
    thresholds=(None,),
)
#: ...plus a single out-of-regime DRAM-style baseline that must be
#: Monte-Carlo'd either way.
EXTRAS = (Candidate(policy="basic", interval=3600.0),)


def compute(profiler=NULL_PROFILER):
    spec = FleetSpec.from_file(SPEC_PATH)

    screened_started = time.perf_counter()
    with profiler.span("p05.screened"):
        screened = ProvisionSearch(
            spec, SPACE, jobs=JOBS, extra_candidates=EXTRAS
        ).run()
    screened_wall = time.perf_counter() - screened_started

    exhaustive_started = time.perf_counter()
    with profiler.span("p05.exhaustive"):
        exhaustive = ProvisionSearch(
            spec, SPACE, jobs=JOBS, exhaustive=True, extra_candidates=EXTRAS
        ).run()
    exhaustive_wall = time.perf_counter() - exhaustive_started
    return spec, screened, exhaustive, screened_wall, exhaustive_wall


def test_p05_provision(benchmark, emit, bench_summary, bench_profiler):
    spec, screened, exhaustive, screened_wall, exhaustive_wall = (
        benchmark.pedantic(
            compute, args=(bench_profiler,), rounds=1, iterations=1
        )
    )

    # Ground truth spent one MC run per (candidate, device) pair.
    candidates = len(SPACE.candidates()) + len(EXTRAS)
    assert exhaustive.mc_device_runs == candidates * spec.devices

    # Frontier identity: the screened search lands on exactly the same
    # per-lot non-dominated candidate sets as exhaustive MC.
    frontier_match = True
    for lot_s, lot_e in zip(screened.lots, exhaustive.lots):
        assert set(lot_s.frontier) == set(lot_e.frontier), (
            f"lot {lot_s.lot}: screened frontier {lot_s.frontier} != "
            f"exhaustive {lot_e.frontier}"
        )

    # MC savings: >=5x fewer device-runs (only the out-of-regime basic
    # candidate escalates under the screened search).
    savings = exhaustive.mc_device_runs / max(1, screened.mc_device_runs)
    assert savings >= MIN_MC_SAVINGS_RATIO, (
        f"screened search spent {screened.mc_device_runs} MC device-runs "
        f"vs {exhaustive.mc_device_runs} exhaustive ({savings:.1f}x < "
        f"{MIN_MC_SAVINGS_RATIO}x)"
    )

    speedup = exhaustive_wall / screened_wall if screened_wall > 0 else 0.0
    bench_summary["p05_provision"] = {
        "devices": spec.devices,
        "lots": len(spec.lots),
        "candidates": candidates,
        "screened_mc_device_runs": screened.mc_device_runs,
        "exhaustive_mc_device_runs": exhaustive.mc_device_runs,
        "mc_savings_ratio": round(savings, 3),
        "frontier_size": screened.frontier_size,
        "frontier_match": frontier_match,
        "jobs": JOBS,
        "screened_wall_seconds": round(screened_wall, 4),
        "exhaustive_wall_seconds": round(exhaustive_wall, 4),
        "speedup": round(speedup, 3),
        "recommended": screened.recommended,
    }
    emit(
        "p05_provision",
        "\n".join(
            [
                f"P5: per-lot provisioning search ({spec.devices} devices, "
                f"{len(spec.lots)} lots, {candidates} candidates, "
                f"jobs={JOBS})",
                f"  screened search:  {screened_wall:8.2f}s  "
                f"({screened.mc_device_runs} MC device-runs)",
                f"  exhaustive MC:    {exhaustive_wall:8.2f}s  "
                f"({exhaustive.mc_device_runs} MC device-runs)",
                f"  MC savings:       {savings:8.1f}x fewer device-runs",
                f"  wall speedup:     {speedup:8.2f}x",
                f"  frontier:         {screened.frontier_size} points "
                f"across {len(spec.lots)} lots, identical to exhaustive",
                f"  recommendations:  {screened.recommended}",
            ]
        ),
    )
