"""Perf-regression gate: compare a bench run against the committed baseline.

Usage::

    python benchmarks/perf_gate.py [--mode warn|block] \\
        [--summary benchmarks/out/bench_summary.json] \\
        [--baseline benchmarks/out/perf_baseline.json] \\
        [--tolerance 4.0]

Every experiment entry in ``bench_summary.json`` carries one or more
``*wall_seconds`` timings.  Raw wall times do not transfer across machines,
so both sides are first normalized by their own ``_calibration_seconds``
(the fixed reference loop timed by ``benchmarks/conftest.py``): the
comparison is "how many calibration loops does this experiment cost here
vs. at baseline".  A timing only trips the gate when its normalized cost
exceeds the baseline by more than ``--tolerance`` (generous by design —
CI boxes are noisy; the gate exists to catch order-of-magnitude
regressions like an accidentally disabled fast path, not 20% drift).

``--mode warn`` always exits 0 (report only); ``--mode block`` exits 1 on
any regression.  A missing baseline or summary is a warning, never a
failure, so fresh checkouts and partial runs stay green.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
DEFAULT_TOLERANCE = 4.0
#: Timings under this many baseline seconds are reported but never gate:
#: at millisecond scale the ratio measures scheduler noise, not the code.
DEFAULT_MIN_SECONDS = 0.5


def _wall_keys(entry: dict) -> list[str]:
    return sorted(
        key
        for key, value in entry.items()
        if key.endswith("wall_seconds") and isinstance(value, (int, float))
    )


def compare(
    summary: dict,
    baseline: dict,
    tolerance: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing normalized wall times."""
    regressions: list[str] = []
    notes: list[str] = []
    cal_now = summary.get("_calibration_seconds")
    cal_base = baseline.get("_calibration_seconds")
    if not cal_now or not cal_base:
        notes.append("calibration figure missing; cannot normalize - skipping")
        return regressions, notes
    notes.append(
        f"calibration: baseline {cal_base:.4f}s, this machine {cal_now:.4f}s"
    )
    for name, base_entry in sorted(baseline.items()):
        if name.startswith("_") or not isinstance(base_entry, dict):
            continue
        entry = summary.get(name)
        if not isinstance(entry, dict):
            notes.append(f"{name}: not in this run - skipping")
            continue
        for key in _wall_keys(base_entry):
            base_wall = base_entry[key]
            wall = entry.get(key)
            if not isinstance(wall, (int, float)) or base_wall <= 0:
                continue
            ratio = (wall / cal_now) / (base_wall / cal_base)
            line = f"{name}.{key}: {wall:.2f}s vs {base_wall:.2f}s ({ratio:.2f}x normalized)"
            if base_wall < min_seconds:
                notes.append(f"{line} - under {min_seconds}s floor, not gated")
            elif ratio > tolerance:
                regressions.append(line)
            else:
                notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--summary", type=Path, default=OUT_DIR / "bench_summary.json"
    )
    parser.add_argument(
        "--baseline", type=Path, default=OUT_DIR / "perf_baseline.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed normalized slowdown factor (default %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="baseline timings under this are never gated (default %(default)s)",
    )
    parser.add_argument(
        "--mode",
        choices=("warn", "block"),
        default="warn",
        help="warn: always exit 0; block: exit 1 on regression",
    )
    args = parser.parse_args(argv)

    for label, path in (("summary", args.summary), ("baseline", args.baseline)):
        if not path.exists():
            print(f"perf-gate: no {label} at {path} - nothing to compare")
            return 0

    summary = json.loads(args.summary.read_text())
    baseline = json.loads(args.baseline.read_text())
    regressions, notes = compare(
        summary, baseline, args.tolerance, args.min_seconds
    )

    for note in notes:
        print(f"perf-gate: {note}")
    if not regressions:
        print(f"perf-gate: OK (tolerance {args.tolerance}x)")
        return 0
    for line in regressions:
        print(f"perf-gate: REGRESSION {line}")
    if args.mode == "block":
        return 1
    print("perf-gate: mode=warn, not failing the build")
    return 0


if __name__ == "__main__":
    sys.exit(main())
