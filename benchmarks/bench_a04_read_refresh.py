"""A4 (ablation): read-triggered refresh across demand read rates.

Demand reads already pay for an ECC decode, so letting them trigger
refresh write-backs turns read traffic into free scrub coverage.  On
read-heavy (write-light) workloads this substitutes for scrub passes:
UEs drop at fixed scrub rate, or equivalently the scrubber can slow down.
The effect saturates once reads visit lines faster than errors accumulate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import DemandRates

BASE = SimulationConfig(
    num_lines=4096, region_size=512, horizon=14 * units.DAY, endurance=None
)
SCRUB_INTERVAL = 12 * units.HOUR  # deliberately slow: reads must carry it
READS_PER_LINE_PER_HOUR = [0.0, 0.1, 0.5, 2.0]


def read_only(rate_per_hour: float) -> DemandRates:
    reads = np.full(BASE.num_lines, rate_per_hour / units.HOUR)
    return DemandRates(
        write_rate=np.zeros(BASE.num_lines),
        read_rate=reads,
        name=f"reads({rate_per_hour:g}/h)",
    )


def compute() -> list[list[object]]:
    rows = []
    for rate in READS_PER_LINE_PER_HOUR:
        rates = read_only(rate)
        plain = run_experiment(
            threshold_scrub(SCRUB_INTERVAL, 4, threshold=3), BASE, rates
        )
        refreshed = run_experiment(
            threshold_scrub(SCRUB_INTERVAL, 4, threshold=3),
            dataclasses.replace(BASE, read_refresh=True),
            rates,
        )
        rows.append(
            [
                f"{rate:g}/h",
                plain.uncorrectable,
                refreshed.uncorrectable,
                plain.scrub_writes,
                refreshed.scrub_writes,
            ]
        )
    return rows


def test_a04_read_refresh(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a04_read_refresh",
        format_table(
            ["read rate", "UE (scrub only)", "UE (+read refresh)",
             "writes (scrub only)", "writes (+refresh)"],
            rows,
            title=(
                "A4: read-triggered refresh, slow scrubber "
                f"({units.format_seconds(SCRUB_INTERVAL)} interval)"
            ),
        ),
    )
    # Zero reads: identical.
    assert rows[0][1] == rows[0][2]
    # Heavier read traffic -> bigger UE win from read refresh.
    plain_ues = [row[1] for row in rows]
    refreshed_ues = [row[2] for row in rows]
    assert refreshed_ues[-1] < plain_ues[-1] / 3
    assert refreshed_ues[-1] <= refreshed_ues[1]
