"""P4 (performance): analytic-surrogate screening with MC escalation.

The acceptance demonstration for `repro.screen`: the bundled screening
fleet (three lots straddling a FIT limit — a cool aisle that passes
analytically, a recalled lot that fails analytically, a hot aisle whose
predictive interval overlaps the limit) run once screened and once as a
full Monte-Carlo campaign.  The screen must spend MC device-runs on at
most a fifth of the fleet (>=5x fewer), and the screened FIT point must
land inside the full campaign's own Garwood band — the surrogate saves
the work without moving the answer outside MC's uncertainty.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.fleet import FleetSpec, run_campaign
from repro.fleet.report import FIT_HOURS
from repro.obs import NULL_PROFILER
from repro.screen import ScreenConstraints, run_screened_campaign

SPEC_PATH = (
    Path(__file__).resolve().parent.parent
    / "examples"
    / "specs"
    / "fleet_screen.json"
)
JOBS = 4
#: Count budget c* = 4 expected horizon UEs per device: between the cool
#: lot's predictive high and the hot lot's straddle (see docs/screening.md).
COUNT_BUDGET = 4.0
MIN_ESCALATION_RATIO = 5.0
MAX_MC_FRACTION = 0.20


def compute(profiler=NULL_PROFILER):
    spec = FleetSpec.from_file(SPEC_PATH)
    horizon_hours = spec.base_config.horizon / 3600.0
    constraints = ScreenConstraints(
        fit_limit=COUNT_BUDGET * FIT_HOURS * spec.capacity_scale / horizon_hours
    )

    screened_started = time.perf_counter()
    with profiler.span("p04.screened"):
        screened = run_screened_campaign(spec, constraints, jobs=JOBS)
    screened_wall = time.perf_counter() - screened_started

    full_started = time.perf_counter()
    with profiler.span("p04.full_mc"):
        full = run_campaign(spec, jobs=JOBS)
    full_wall = time.perf_counter() - full_started
    return spec, screened, full, screened_wall, full_wall


def test_p04_screening(benchmark, emit, bench_summary, bench_profiler):
    spec, screened, full, screened_wall, full_wall = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )
    assert screened.finished
    report = screened.report

    # MC effort: at most a fifth of the fleet, >=5x fewer device-runs.
    assert report.mc_devices == len(screened.plan.escalated)
    assert screened.plan.mc_fraction <= MAX_MC_FRACTION
    assert report.escalation_ratio >= MIN_ESCALATION_RATIO

    # Accuracy: the screened FIT point sits inside the full campaign's
    # own Garwood band — the surrogate contribution is indistinguishable
    # from MC at MC's own uncertainty.
    assert full.report.fit_low <= report.fit <= full.report.fit_high

    speedup = full_wall / screened_wall if screened_wall > 0 else 0.0
    bench_summary["p04_screening"] = {
        "devices": spec.devices,
        "mc_devices": report.mc_devices,
        "mc_fraction": round(screened.plan.mc_fraction, 4),
        "escalation_ratio": round(report.escalation_ratio, 3),
        "jobs": JOBS,
        "screened_wall_seconds": round(screened_wall, 4),
        "full_wall_seconds": round(full_wall, 4),
        "speedup": round(speedup, 3),
        "screened_fit": round(report.fit, 3),
        "full_fit_band": [
            round(full.report.fit_low, 3),
            round(full.report.fit_high, 3),
        ],
        "inside_full_band": True,
    }
    emit(
        "p04_screening",
        "\n".join(
            [
                f"P4: analytic screening + MC escalation ({spec.devices} "
                f"devices, {len(spec.lots)} lots, jobs={JOBS})",
                f"  screened run:    {screened_wall:8.2f}s  "
                f"({report.mc_devices}/{spec.devices} devices escalated "
                f"to MC, {report.escalation_ratio:.1f}x fewer runs)",
                f"  full MC run:     {full_wall:8.2f}s  "
                f"({spec.devices} devices)",
                f"  speedup:         {speedup:8.2f}x",
                f"  screened FIT:    {report.fit:12.1f} in full band "
                f"[{full.report.fit_low:.1f}, {full.report.fit_high:.1f}]",
                f"  classifications: {screened.plan.counts()}",
            ]
        ),
    )
