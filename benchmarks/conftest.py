"""Shared infrastructure for the experiment benchmarks.

Every experiment (E1..E14 in DESIGN.md) is a pytest-benchmark test that

* times its core computation once (``rounds=1`` - these are simulations,
  not microbenchmarks, and their *output tables* are the deliverable),
* renders the reproduced table/figure through ``repro.analysis.tables``,
* prints it and writes it to ``benchmarks/out/<experiment>.txt`` so the
  artifacts survive the run.

Benchmark scale is chosen so the full suite finishes in a few minutes;
every experiment accepts larger populations/horizons by editing one
module-level constant.

Parallel execution: heavyweight experiments fan their independent runs
across a process pool (``repro.sim.parallel``).  The worker count comes
from the ``bench_jobs`` fixture (``REPRO_BENCH_JOBS`` overrides the
CPU-aware default).  The session writes ``benchmarks/out/bench_summary.json``
mapping experiment id -> wall time / runs / jobs / speedup, plus the
distribution-cache hit counters and the session's per-phase wall-time
profile (the ``bench_profiler`` fixture, ``repro.obs``), to seed the
repo's perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import Profiler
from repro.sim.parallel import default_jobs
from repro.sim.runner import DISTRIBUTION_CACHE_COUNTERS

OUT_DIR = Path(__file__).parent / "out"


def calibration_seconds() -> float:
    """Wall time of a fixed CPU-bound reference loop, for machine normalization.

    Perf-gate comparisons (``benchmarks/perf_gate.py``) divide every
    experiment's wall time by this figure so the committed baseline
    transfers across machines: a box that runs the calibration loop 2x
    slower is allowed 2x the absolute wall time before the gate trips.
    The loop mirrors the simulator's profile — numpy-bound order-statistics
    style array work — and takes a fraction of a second.
    """
    rng = np.random.default_rng(0)
    data = rng.random((256, 4096))
    started = time.perf_counter()
    for __ in range(40):
        np.sort(data, axis=1)[:, :24].min(axis=1).sum()
    return time.perf_counter() - started


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(artifact_dir, capsys):
    """Print a rendered experiment block and persist it to disk."""

    def _emit(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker processes for parallel-capable experiments."""
    override = os.environ.get("REPRO_BENCH_JOBS")
    if override:
        return max(1, int(override))
    return default_jobs()


@pytest.fixture(scope="session")
def bench_profiler() -> Profiler:
    """Session-wide wall-time profiler for per-phase bench timings.

    Experiments wrap their stages in ``with bench_profiler.span("<id>.<phase>")``;
    the accumulated report lands in ``bench_summary.json`` under ``_profile``.
    """
    return Profiler()


@pytest.fixture(scope="session")
def bench_summary(artifact_dir, bench_profiler):
    """Session-wide timing registry, persisted as ``bench_summary.json``.

    Tests record ``bench_summary["<experiment>"] = {...}`` (typically via
    :func:`repro.sim.parallel.timing_summary`); the session finalizer adds
    the distribution-cache counters and the per-phase profile and writes
    the file.
    """
    summary: dict[str, object] = {}
    yield summary
    summary["_calibration_seconds"] = round(calibration_seconds(), 4)
    summary["_distribution_cache"] = dict(DISTRIBUTION_CACHE_COUNTERS)
    profile = bench_profiler.report()
    if profile:
        summary["_profile"] = {
            name: {"calls": entry["calls"], "seconds": round(entry["seconds"], 4)}
            for name, entry in profile.items()
        }
    (artifact_dir / "bench_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
