"""Shared infrastructure for the experiment benchmarks.

Every experiment (E1..E14 in DESIGN.md) is a pytest-benchmark test that

* times its core computation once (``rounds=1`` - these are simulations,
  not microbenchmarks, and their *output tables* are the deliverable),
* renders the reproduced table/figure through ``repro.analysis.tables``,
* prints it and writes it to ``benchmarks/out/<experiment>.txt`` so the
  artifacts survive the run.

Benchmark scale is chosen so the full suite finishes in a few minutes;
every experiment accepts larger populations/horizons by editing one
module-level constant.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(artifact_dir, capsys):
    """Print a rendered experiment block and persist it to disk."""

    def _emit(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
