"""E11 (figure): temperature sensitivity of drift errors and scrub demands.

Structural relaxation accelerates with temperature (Arrhenius), so a
server running its memory at 330-360 K needs substantially faster scrub
than a 300 K part for the same reliability.  Reported two ways: the raw
error-probability shift, and the scrub interval each temperature sustains
at a fixed per-visit failure budget.
"""

from __future__ import annotations

import dataclasses

from repro import units
from repro.analysis.tables import format_series, format_table
from repro.core import strong_ecc_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import AnalyticModel, CrossingDistribution

TEMPERATURES = [300.0, 315.0, 330.0, 345.0, 360.0]
TARGET = 1e-9
MC_CONFIG = SimulationConfig(
    num_lines=4096, region_size=512, horizon=7 * units.DAY, endurance=None
)


def compute():
    prob_series = {"P(err,L2,1h)": [], "P(err,L2,1d)": []}
    interval_rows = []
    mc_rows = []
    for temperature in TEMPERATURES:
        distribution = CrossingDistribution(CellSpec(), temperature_k=temperature)
        prob_series["P(err,L2,1h)"].append(
            float(distribution.level_cdf(2, units.HOUR))
        )
        prob_series["P(err,L2,1d)"].append(
            float(distribution.level_cdf(2, units.DAY))
        )
        model = AnalyticModel(distribution, 256)
        interval_rows.append(
            [f"{temperature:.0f}K",
             units.format_seconds(model.required_interval(4, TARGET))]
        )
        config = dataclasses.replace(MC_CONFIG, temperature_k=temperature)
        result = run_experiment(strong_ecc_scrub(units.HOUR, 4), config)
        mc_rows.append([f"{temperature:.0f}K", result.uncorrectable,
                        result.scrub_writes])
    return prob_series, interval_rows, mc_rows


def test_e11_temperature(benchmark, emit):
    probs, intervals, mc = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_series(
        "T",
        [f"{t:.0f}K" for t in TEMPERATURES],
        probs,
        title="E11: L2 error probability vs operating temperature",
    )
    text += "\n\n" + format_table(
        ["T", f"max bch4 interval @ P<={TARGET:g}"],
        intervals,
        title="E11b: sustainable scrub interval vs temperature",
    )
    text += "\n\n" + format_table(
        ["T", "UE (bch4 @1h)", "scrub writes"],
        mc,
        title="E11c: population Monte Carlo across temperature",
    )
    emit("e11_temperature", text)

    hour = probs["P(err,L2,1h)"]
    assert hour == sorted(hour)
    assert hour[-1] > 3 * hour[0]
    # Hotter parts need shorter intervals (tolerate equal as grid quantizes).
    seconds = [row[1] for row in intervals]
    assert seconds[0] != seconds[-1]
    # Monte-Carlo write volume grows with temperature (more error lines).
    assert mc[-1][2] > mc[0][2]
