"""A5 (ablation): what a fixed bank-time budget buys, per ECC strength.

Provisioning view of the whole design space: grant the scrubber a slice
of bank time, solve for the fastest affordable interval per code (the
stronger code's rarer decodes and write-backs buy a faster scan for the
same budget - but its longer sustainable interval means it does not need
one), and report the reliability each configuration achieves.  The
dominance of strong codes is starkest exactly where budgets are tightest.
"""

from __future__ import annotations

import time

from repro import units
from repro.analysis.sweeps import provision_grid
from repro.analysis.tables import format_table

LINES_PER_BANK = 1 << 22  # 256 MiB bank
BUDGETS = [1e-3, 1e-4, 3e-5, 1e-5]
STRENGTHS = [1, 2, 4, 8]


def compute(jobs: int = 1) -> list[list[object]]:
    rows = []
    for budget, strength, interval, failure in provision_grid(
        BUDGETS, STRENGTHS, LINES_PER_BANK, jobs=jobs
    ):
        if interval is None:
            rows.append([f"{budget:.0e}", f"bch{strength}", "infeasible", "-"])
        else:
            rows.append(
                [
                    f"{budget:.0e}",
                    f"bch{strength}",
                    units.format_seconds(interval),
                    f"{failure:.3e}",
                ]
            )
    return rows


def test_a05_budget_provisioning(benchmark, emit, bench_jobs, bench_summary):
    started = time.perf_counter()
    rows = benchmark.pedantic(compute, args=(bench_jobs,), rounds=1, iterations=1)
    bench_summary["a05_budget_provisioning"] = {
        "runs": len(rows),
        "jobs": bench_jobs,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }
    emit(
        "a05_budget_provisioning",
        format_table(
            ["bank budget", "code", "affordable interval", "P(UE per visit)"],
            rows,
            title=(
                "A5: reliability a fixed bank-time budget buys "
                f"({LINES_PER_BANK} lines/bank)"
            ),
        ),
    )
    # At the tightest budget, only strong codes keep failure low.
    tight = {row[1]: row[3] for row in rows if row[0] == "1e-05"}
    assert tight["bch8"] != "-"
    weak = float(tight["bch1"]) if tight["bch1"] != "-" else 1.0
    strong = float(tight["bch8"])
    assert strong < weak / 100 or weak > 1e-4
