"""E12 (figure): how demand-write locality changes what scrub must do.

Demand writes re-program lines, resetting their drift clocks for free -
so workloads differ enormously in how much scrubbing they actually need.
Uniform traffic refreshes everything a little; Zipf traffic refreshes a
hot set constantly and leaves a cold tail that only scrub protects;
streaming sweeps refresh everything on a period.  Scrub writes and UEs
under one mechanism across these mixes reproduce the workload dimension
of the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import (
    idle_rates,
    streaming_rates,
    uniform_rates,
    zipf_rates,
)

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR
#: One demand write per line per 4 hours, aggregate.
TOTAL_RATE = CONFIG.num_lines / (4 * units.HOUR)


def workloads():
    return [
        idle_rates(CONFIG.num_lines),
        uniform_rates(CONFIG.num_lines, TOTAL_RATE),
        zipf_rates(CONFIG.num_lines, TOTAL_RATE, alpha=0.8,
                   rng=np.random.default_rng(5)),
        zipf_rates(CONFIG.num_lines, TOTAL_RATE, alpha=1.2,
                   rng=np.random.default_rng(6)),
        streaming_rates(CONFIG.num_lines, sweep_period=4 * units.HOUR),
    ]


def compute() -> list[list[object]]:
    rows = []
    for rates in workloads():
        result = run_experiment(
            threshold_scrub(INTERVAL, strength=4, threshold=3), CONFIG, rates
        )
        rows.append(
            [
                rates.name,
                result.stats.demand_writes,
                result.scrub_writes,
                result.uncorrectable,
                units.format_energy(result.scrub_energy),
            ]
        )
    return rows


def test_e12_demand_interaction(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e12_demand_interaction",
        format_table(
            ["workload", "demand writes", "scrub writes", "UE", "scrub energy"],
            rows,
            title=(
                "E12: demand-write locality vs scrub work "
                f"(threshold scrub, {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    by_name = {row[0]: row for row in rows}
    idle_scrub_writes = by_name["idle"][2]
    uniform_scrub_writes = by_name["uniform"][2]
    zipf12_scrub_writes = by_name["zipf(1.2)"][2]
    # Any demand traffic reduces scrub work vs idle; uniform (every line
    # refreshed) reduces it most; heavy skew leaves the cold tail to scrub.
    assert uniform_scrub_writes < idle_scrub_writes
    assert uniform_scrub_writes < zipf12_scrub_writes < idle_scrub_writes
