"""E8 (figure): the soft-vs-hard error trade-off across scrub rates.

Scrubbing faster catches drift (soft) errors sooner, but every write-back
burns endurance, manufacturing stuck-at (hard) faults that permanently
consume ECC budget.  With endurance deliberately scaled down (so the
effect is visible within a 3-week horizon - the trade-off's shape is
endurance-invariant, wear being writes/lifetime) and a modest demand
workload (hard faults only *surface* when data changes), sweeping the
scrub interval of an aggressive write-back policy traces the U-shape the
adaptive mechanism navigates: too slow -> drift escapes; too fast ->
wear-out errors take over.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_series
from repro.core import threshold_scrub
from repro.params import EnduranceSpec
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import uniform_rates

#: ~1000-write endurance makes the write volume of a 3-week run bite; real
#: PCM (1e8) reaches the same regime over a ~decade of deployment.  Worn
#: lines are *retired* (remapped to spares) at 6 stuck cells - without
#: retirement a degraded line write-storms and its terminal state floods
#: the UE counter, hiding the trade-off the experiment is about.
WEAK_ENDURANCE = EnduranceSpec(mean_writes=1000, sigma_log10=0.25)

CONFIG = SimulationConfig(
    num_lines=4096,
    region_size=512,
    horizon=21 * units.DAY,
    endurance=WEAK_ENDURANCE,
    retire_hard_limit=6,
)
INTERVALS = [
    6 * units.MINUTE,
    0.25 * units.HOUR,
    units.HOUR,
    4 * units.HOUR,
    12 * units.HOUR,
]


def workload():
    # One demand write per line per 8 hours: enough data turnover that a
    # frozen cell eventually holds stale data (how hard errors surface).
    return uniform_rates(CONFIG.num_lines, CONFIG.num_lines / (8 * units.HOUR))


def compute() -> dict[str, list[float]]:
    out: dict[str, list[float]] = {
        "soft UE": [], "retired lines": [], "writes/line": [], "scrub writes": [],
    }
    rates = workload()
    for interval in INTERVALS:
        # Immediate write-back maximizes the wear signal.
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=1), CONFIG, rates
        )
        out["soft UE"].append(result.uncorrectable)
        out["retired lines"].append(result.stats.retired)
        out["writes/line"].append(round(result.mean_writes_per_line, 1))
        out["scrub writes"].append(result.scrub_writes)
    return out


def test_e08_soft_hard_tradeoff(benchmark, emit):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e08_soft_hard_tradeoff",
        format_series(
            "interval",
            [units.format_seconds(T) for T in INTERVALS],
            series,
            title=(
                "E8: soft/hard trade-off - faster scrub retires worn lines, "
                f"slower scrub lets drift escape (endurance "
                f"{WEAK_ENDURANCE.mean_writes:g} writes, retire @6 stuck)"
            ),
        ),
    )
    # Hard-error currency: wear (writes/line, retirements) falls as the
    # interval grows.
    assert series["writes/line"][0] > series["writes/line"][-1]
    assert series["retired lines"][0] > 0
    assert series["retired lines"][0] > series["retired lines"][-1]
    # Soft-error currency: drift escapes rise as the interval grows.
    assert series["soft UE"][-1] > series["soft UE"][2] > 0 or (
        series["soft UE"][-1] > 100
    )


def test_e08_endurance_scaling_sanity(benchmark, emit):
    """Companion: with realistic 1e8 endurance, wear is invisible at this
    horizon - confirming the weak-endurance substitution only rescales
    time, not behaviour."""

    def run():
        import dataclasses

        realistic = dataclasses.replace(CONFIG, endurance=EnduranceSpec())
        return run_experiment(
            threshold_scrub(6 * units.MINUTE, strength=4, threshold=1),
            realistic,
            workload(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e08b_realistic_endurance",
        "E8b: same sweep point at realistic 1e8 endurance -> "
        f"stuck={int(result.stuck_cells)}, retired={result.stats.retired}, "
        f"UE={result.uncorrectable} "
        "(wear-driven errors vanish; only drift remains)",
    )
    assert result.stuck_cells == 0
    assert result.stats.retired == 0
