"""P1 (performance): parallel sweep speedup and persistent tabulation cache.

The acceptance demonstration for the parallel execution layer: a 4-point
interval sweep at E9 scale (16384 lines, 21-day horizon) run serially and
with ``jobs=4``, checked bit-identical, with both wall times and the
disk-cache reload timing recorded in ``bench_summary.json``.

The >= 2.5x speedup assertion only fires on machines with >= 4 CPUs -
on smaller workers the parallel path still runs (correctness is always
checked) but can't physically beat serial.
"""

from __future__ import annotations

import os
import time

from repro import units
from repro.analysis.sweeps import sweep_intervals
from repro.obs import NULL_PROFILER
from repro.sim import SimulationConfig, clear_distribution_cache
from repro.sim.analytic import CrossingDistribution, tabulation_cache_dir
from repro.sim.runner import DISTRIBUTION_CACHE_COUNTERS, crossing_distribution_for

CONFIG = SimulationConfig(
    num_lines=16384, region_size=1024, horizon=21 * units.DAY, endurance=None
)
INTERVALS = [0.5 * units.HOUR, units.HOUR, 2 * units.HOUR, 4 * units.HOUR]
JOBS = 4


def compute(profiler=NULL_PROFILER):
    serial_started = time.perf_counter()
    with profiler.span("p01.serial_sweep"):
        serial = sweep_intervals("basic", INTERVALS, CONFIG, jobs=1)
    serial_wall = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    with profiler.span("p01.parallel_sweep"):
        parallel = sweep_intervals("basic", INTERVALS, CONFIG, jobs=JOBS)
    parallel_wall = time.perf_counter() - parallel_started
    return serial, parallel, serial_wall, parallel_wall


def test_p01_parallel_sweep(benchmark, emit, bench_summary, bench_profiler):
    serial, parallel, serial_wall, parallel_wall = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )

    # Bit-identical ScrubStats between serial and parallel execution.
    for a, b in zip(serial, parallel):
        assert a.uncorrectable == b.uncorrectable
        assert a.scrub_writes == b.scrub_writes
        assert a.scrub_energy == b.scrub_energy
        assert a.stats.visits == b.stats.visits
        assert a.final_state == b.final_state

    # Disk-cache reload: a fresh tabulation vs loading the persisted grid.
    tabulate_started = time.perf_counter()
    with bench_profiler.span("p01.tabulate"):
        CrossingDistribution(CONFIG.cell_spec, temperature_k=CONFIG.temperature_k)
    tabulate_seconds = time.perf_counter() - tabulate_started

    crossing_distribution_for(CONFIG)  # ensure the disk entry exists
    clear_distribution_cache()
    reload_started = time.perf_counter()
    with bench_profiler.span("p01.disk_reload"):
        crossing_distribution_for(CONFIG)
    reload_seconds = time.perf_counter() - reload_started

    disk_enabled = tabulation_cache_dir() is not None
    if disk_enabled:
        assert DISTRIBUTION_CACHE_COUNTERS["disk"] >= 1
        assert reload_seconds < tabulate_seconds

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    bench_summary["p01_parallel_sweep"] = {
        "runs": len(INTERVALS),
        "jobs": JOBS,
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "speedup": round(speedup, 3),
        "cpu_count": os.cpu_count() or 1,
        "disk_cache": {
            "enabled": disk_enabled,
            "tabulate_seconds": round(tabulate_seconds, 4),
            "reload_seconds": round(reload_seconds, 4),
        },
    }
    emit(
        "p01_parallel_sweep",
        "\n".join(
            [
                "P1: parallel sweep (4-point basic interval sweep, "
                f"{CONFIG.num_lines} lines, {units.format_seconds(CONFIG.horizon)})",
                f"  serial (jobs=1):   {serial_wall:8.2f}s",
                f"  parallel (jobs={JOBS}): {parallel_wall:8.2f}s",
                f"  speedup:           {speedup:8.2f}x on {os.cpu_count()} CPUs",
                f"  tabulate:          {tabulate_seconds:8.3f}s",
                f"  disk reload:       {reload_seconds:8.3f}s",
                "  results bit-identical: yes",
            ]
        ),
    )

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.5
