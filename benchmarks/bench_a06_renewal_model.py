"""A6 (ablation/validation): renewal-theory model vs Monte Carlo.

The threshold-scrub renewal solver predicts steady-state scrub-write
rates, UE rates, and decode fractions in microseconds per design point;
this bench lines its predictions up against the population engine across
a threshold sweep.  Agreement here means the expensive Monte-Carlo sweeps
elsewhere could be pre-screened analytically - and it is an independent
second implementation of the whole error-accumulation process.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import CrossingDistribution
from repro.sim.renewal import RenewalModel

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR
SWEEP = [(4, 1), (4, 2), (4, 3), (8, 6)]


def compute() -> list[list[object]]:
    model = RenewalModel(CrossingDistribution(CellSpec()), CONFIG.cells_per_line)
    rows = []
    for strength, theta in SWEEP:
        solution = model.solve(INTERVAL, t_ecc=strength, threshold=theta)
        result = run_experiment(
            threshold_scrub(INTERVAL, strength, threshold=theta), CONFIG
        )
        line_seconds = CONFIG.num_lines * CONFIG.horizon
        rows.append(
            [
                f"bch{strength}/theta={theta}",
                f"{solution.write_rate:.3e}",
                f"{result.scrub_writes / line_seconds:.3e}",
                f"{solution.ue_rate:.3e}",
                f"{result.uncorrectable / line_seconds:.3e}",
                f"{solution.error_visit_fraction:.3f}",
                f"{result.stats.scrub_decodes / result.stats.visits:.3f}",
            ]
        )
    return rows


def test_a06_renewal_model(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a06_renewal_model",
        format_table(
            ["config", "write rate (renewal)", "write rate (MC)",
             "UE rate (renewal)", "UE rate (MC)",
             "decode frac (renewal)", "decode frac (MC)"],
            rows,
            title=(
                "A6: renewal-theory predictions vs population Monte Carlo "
                f"(per line per second, interval {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    for row in rows:
        renewal_writes, mc_writes = float(row[1]), float(row[2])
        assert mc_writes == pytest.approx(renewal_writes, rel=0.15)
        renewal_frac, mc_frac = float(row[5]), float(row[6])
        assert mc_frac == pytest.approx(renewal_frac, rel=0.15)