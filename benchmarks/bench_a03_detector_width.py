"""A3 (ablation): lightweight-detector width - misses vs storage.

The CRC gate's only failure mode is aliasing: a true error pattern whose
checksum matches, probability 2^-width per erroneous scrub read.  Missed
lines are caught on a later pass, so the cost of a narrow detector is a
delay, not a loss - until the delay lets the line cross the correction
limit.  Sweeping the width shows CRC-8 already misses few enough to leave
UE unchanged, and CRC-16 (the default) makes misses a curiosity; both
against the 0-bit (decode-always) and infinite-width idealizations.
"""

from __future__ import annotations

import dataclasses

from repro import units
from repro.analysis.tables import format_table
from repro.core.threshold import ThresholdScrubPolicy
from repro.ecc.schemes import scheme_for_strength
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR
WIDTHS = [0, 4, 8, 16, 32]


def policy_with_width(width: int) -> ThresholdScrubPolicy:
    # Immediate write-back (theta=1) isolates the detector's effect: lines
    # are cleaned at the first error, so almost every visit is error-free
    # and gating the decoder pays maximally.  (Threshold policies keep
    # erroneous lines around on purpose, shrinking the detector's win -
    # E7's combined row shows that interaction.)
    scheme = scheme_for_strength(4, with_detector=width > 0)
    if width > 0:
        scheme = dataclasses.replace(scheme, detector_bits=width)
    return ThresholdScrubPolicy(
        scheme, INTERVAL, threshold=1, label=f"crc{width}" if width else "no-detector"
    )


def compute() -> list[list[object]]:
    rows = []
    for width in WIDTHS:
        result = run_experiment(policy_with_width(width), CONFIG)
        rows.append(
            [
                "decode-always" if width == 0 else f"CRC-{width}",
                width,
                result.stats.scrub_decodes,
                result.stats.detector_misses,
                result.uncorrectable,
                units.format_energy(result.scrub_energy),
            ]
        )
    return rows


def test_a03_detector_width(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a03_detector_width",
        format_table(
            ["detector", "bits", "decodes", "misses", "UE", "scrub energy"],
            rows,
            title=(
                "A3: detection-width ablation (bch4, theta=1, "
                f"{units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    by_width = {row[1]: row for row in rows}
    # Any detector collapses decode volume to the error-line fraction
    # (~15 % of visits at this interval: error-free lines are never
    # rewritten, so their ages - and error incidence - exceed one interval).
    assert by_width[8][2] < by_width[0][2] / 5
    # Misses scale ~2^-width.
    assert by_width[4][3] > by_width[8][3] > by_width[16][3]
    assert by_width[32][3] == 0
    # Protection is insensitive to the width (misses only delay detection).
    ues = [row[4] for row in rows]
    assert max(ues) - min(ues) <= max(20, int(0.3 * max(ues)))
