"""A8 (ablation): Reed-Solomon vs BCH under drift error patterns.

Drift corrupts whole cells, and Gray coding makes each drifted cell one
bit flip at that cell's position.  BCH pays correction budget per *bit*;
RS pays per *symbol* (here 8 bits = 4 cells), so clustered cell errors
are cheaper for RS while scattered ones exhaust its budget faster -
against that, RS check symbols cost 16 bits each versus BCH's ~10 bits
per corrected bit.  Both real codecs decode the same sampled error
patterns: k drifted cells at uniform positions per 512-bit line.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.ecc.bch import BchCode
from repro.ecc.rs import RsBitCodec

TRIALS = 400
DATA_BITS = 512
CELL_BITS = 2
CODECS = [
    ("bch4 (40b)", BchCode(DATA_BITS, 4)),
    ("bch6 (60b)", BchCode(DATA_BITS, 6)),
    ("rs2 (32b)", RsBitCodec(DATA_BITS, 2)),
    ("rs4 (64b)", RsBitCodec(DATA_BITS, 4)),
]
CELL_ERRORS = [2, 4, 5, 6, 8]


def drift_pattern(rng: np.random.Generator, codeword_bits: int, k: int) -> list[int]:
    """Bit positions flipped by k drifted cells (one Gray bit per cell)."""
    num_cells = codeword_bits // CELL_BITS
    cells = rng.choice(num_cells, k, replace=False)
    # The flipped bit within the cell depends on which Gray transition the
    # drift step causes; uniform within the cell is the right marginal.
    offsets = rng.integers(0, CELL_BITS, k)
    return [int(c) * CELL_BITS + int(o) for c, o in zip(cells, offsets)]


def survival(codec, rng: np.random.Generator, k: int) -> float:
    ok_count = 0
    for __ in range(TRIALS):
        data = rng.integers(0, 2, DATA_BITS, dtype=np.int8)
        codeword = codec.encode(data)
        corrupted = codeword.copy()
        for pos in drift_pattern(rng, len(codeword), k):
            corrupted[pos] ^= 1
        result = codec.decode(corrupted)
        if result.ok and np.array_equal(
            codec.extract_data(result.bits), data
        ):
            ok_count += 1
    return ok_count / TRIALS


def compute() -> list[list[object]]:
    rng = np.random.default_rng(4242)
    rows = []
    for name, codec in CODECS:
        row = [name, codec.check_bits]
        for k in CELL_ERRORS:
            row.append(f"{survival(codec, rng, k):.2f}")
        rows.append(row)
    return rows


def test_a08_rs_vs_bch(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a08_rs_vs_bch",
        format_table(
            ["codec", "check bits", *(f"k={k}" for k in CELL_ERRORS)],
            rows,
            title=(
                f"A8: P(line survives k drifted cells) - RS vs BCH, "
                f"{TRIALS} sampled patterns per cell"
            ),
        ),
    )
    by_name = {row[0]: row for row in rows}
    # Guaranteed regions hold exactly.
    assert by_name["bch4 (40b)"][2 + CELL_ERRORS.index(4)] == "1.00"
    assert by_name["bch6 (60b)"][2 + CELL_ERRORS.index(6)] == "1.00"
    assert by_name["rs4 (64b)"][2 + CELL_ERRORS.index(4)] == "1.00"
    # Clustering gives RS-4 a nonzero survival beyond its nominal t where
    # smaller-budget BCH-4 is already dead (two drifted cells landing in
    # one 4-cell symbol cost RS a single correction).
    rs4_at_5 = float(by_name["rs4 (64b)"][2 + CELL_ERRORS.index(5)])
    bch4_at_5 = float(by_name["bch4 (40b)"][2 + CELL_ERRORS.index(5)])
    assert rs4_at_5 > bch4_at_5
    assert rs4_at_5 > 0.02
