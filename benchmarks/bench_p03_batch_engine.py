"""P3 (performance): vectorized batch visit engine on a busy device.

The acceptance demonstration for the batch engine: a threshold scrub of a
demand-loaded, drift-compensated device over a month, run once with the
scalar per-visit walk and once with whole-round array evaluation.  Uniform
demand traffic keeps every region FF-ineligible (quiescent-visit
fast-forward is enabled for the scalar run but can never engage), so the
scalar engine must walk all ~92k region visits one by one while the batch
engine folds each 256-region round into a handful of numpy ops.  The two
runs follow the same deterministic visit schedule; multi-region demand in
round mode re-orders the workload-stream draws, so totals agree to a
statistical band rather than bit-for-bit (see docs/performance.md).
"""

from __future__ import annotations

import dataclasses
import time

from repro import units
from repro.core import threshold_scrub
from repro.obs import NULL_PROFILER
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import uniform_rates

#: Many small regions: the per-visit Python and small-array overhead the
#: batch engine amortizes is largest when rounds are wide and rows narrow.
CONFIG = SimulationConfig(
    num_lines=16384,
    region_size=64,
    horizon=30 * units.DAY,
    endurance=None,
    compensated_sensing=True,
)
INTERVAL = 2 * units.HOUR
STRENGTH = 3
#: ~2 writes/line/day across the whole device: every region carries demand.
WRITES_PER_LINE_PER_DAY = 2.0
MIN_SPEEDUP = 5.0
#: Batch and scalar are two independent samples of ~1M Poisson demand
#: writes; their totals agree to a fraction of a percent.
DEMAND_BAND = 0.02


def compute(profiler=NULL_PROFILER):
    rates = uniform_rates(
        CONFIG.num_lines,
        total_write_rate=CONFIG.num_lines * WRITES_PER_LINE_PER_DAY / units.DAY,
    )

    scalar_started = time.perf_counter()
    with profiler.span("p03.scalar_walk"):
        scalar = run_experiment(
            threshold_scrub(INTERVAL, STRENGTH),
            dataclasses.replace(CONFIG, engine="scalar"),
            rates,
        )
    scalar_wall = time.perf_counter() - scalar_started

    batch_started = time.perf_counter()
    with profiler.span("p03.batch_rounds"):
        batch = run_experiment(
            threshold_scrub(INTERVAL, STRENGTH),
            dataclasses.replace(CONFIG, engine="batch"),
            rates,
        )
    batch_wall = time.perf_counter() - batch_started
    return scalar, batch, scalar_wall, batch_wall


def test_p03_batch_engine(benchmark, emit, bench_summary, bench_profiler):
    scalar, batch, scalar_wall, batch_wall = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )

    # Same deterministic visit schedule; fast-forward never engaged.
    assert batch.stats.visits == scalar.stats.visits
    assert scalar.fast_forward["skipped_visits"] == 0

    # Workload totals within the two-independent-samples band.
    assert scalar.stats.demand_writes > 0
    rel = abs(batch.stats.demand_writes - scalar.stats.demand_writes) / float(
        scalar.stats.demand_writes
    )
    assert rel <= DEMAND_BAND

    regions = CONFIG.num_lines // CONFIG.region_size
    region_visits = int(scalar.stats.visits) // CONFIG.region_size
    speedup = scalar_wall / batch_wall if batch_wall > 0 else 0.0
    bench_summary["p03_batch_engine"] = {
        "scalar_wall_seconds": round(scalar_wall, 4),
        "batch_wall_seconds": round(batch_wall, 4),
        "speedup": round(speedup, 3),
        "engines": ["scalar", "batch"],
        "regions": regions,
        "region_visits": region_visits,
        "demand_writes_rel_diff": round(rel, 6),
    }
    emit(
        "p03_batch_engine",
        "\n".join(
            [
                "P3: vectorized batch visit engine (busy threshold scrub, "
                f"{CONFIG.num_lines} lines / {regions} regions, "
                f"{units.format_seconds(CONFIG.horizon)})",
                f"  scalar walk:     {scalar_wall:8.2f}s  "
                f"({region_visits} region visits, one at a time)",
                f"  batch rounds:    {batch_wall:8.2f}s  "
                f"({region_visits // regions} whole-round evaluations)",
                f"  speedup:         {speedup:8.2f}x",
                f"  demand writes:   {int(scalar.stats.demand_writes)} scalar "
                f"vs {int(batch.stats.demand_writes)} batch "
                f"({100 * rel:.3f}% apart)",
            ]
        ),
    )

    assert speedup >= MIN_SPEEDUP
