"""A1 (ablation): Start-Gap wear leveling under scrub + demand writes.

DESIGN.md lists wear leveling as the complementary endurance substrate;
this ablation shows why scrub studies assume it: a skewed write stream
(demand hotspot plus the scrub write-backs it provokes) kills the hottest
physical line ~50x early without leveling, while Start-Gap at 1 % write
overhead flattens the wear profile to within a few x of ideal.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.mem.wearlevel import simulate_wear, wear_ratio

#: Start-Gap spreads a *static* hotspot one start-position per full gap
#: rotation, so the stream must be long enough for the start register to
#: sweep the array (~ num_lines^2 * psi writes); real devices get there
#: thousands of times over within their 1e8-write lifetime.
NUM_LINES = 64
NUM_WRITES = 500_000
GAP_INTERVALS = [None, 200, 100, 50, 10]


def hotspot_stream(rng: np.random.Generator) -> np.ndarray:
    """90 % of writes to 10 % of lines - demand hotspot + its scrub echo."""
    hot = rng.integers(0, NUM_LINES // 10, NUM_WRITES)
    cold = rng.integers(0, NUM_LINES, NUM_WRITES)
    choose_hot = rng.random(NUM_WRITES) < 0.9
    return np.where(choose_hot, hot, cold)


def compute() -> list[list[object]]:
    rng = np.random.default_rng(808)
    stream = hotspot_stream(rng)
    rows = []
    for gap_interval in GAP_INTERVALS:
        wear = simulate_wear(NUM_LINES, stream, gap_interval=gap_interval)
        overhead = (wear.sum() - NUM_WRITES) / NUM_WRITES
        rows.append(
            [
                "off" if gap_interval is None else f"psi={gap_interval}",
                f"{wear_ratio(wear):.2f}",
                int(wear.max()),
                f"{overhead:.1%}",
            ]
        )
    return rows


def test_a01_wear_leveling(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a01_wear_leveling",
        format_table(
            ["start-gap", "max/mean wear", "max line wear", "write overhead"],
            rows,
            title=(
                f"A1: Start-Gap under a 90/10 hotspot write stream "
                f"({NUM_WRITES} writes over {NUM_LINES} lines)"
            ),
        ),
    )
    ratios = [float(row[1]) for row in rows]
    # Unleveled hotspot is ~9x worse than mean; psi=10 approaches ideal.
    assert ratios[0] > 5.0
    assert ratios[-1] < 2.0
    # More frequent gap movement -> flatter wear, at higher overhead.
    assert ratios == sorted(ratios, reverse=True)
