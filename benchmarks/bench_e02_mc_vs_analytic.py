"""E2 (figure): Monte-Carlo engines vs the closed-form model (validation).

Three independent implementations of the same physics - the analytic
integral, the order-statistics population sampler, and the bit-exact cell
array - must agree on the per-cell error probability.  This is the
methodological check that licenses using the fast engine for every other
experiment.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_series
from repro.params import CellSpec
from repro.pcm.array import LineArray
from repro.pcm.variation import VariationSpec
from repro.sim.analytic import CrossingDistribution
from repro.sim.population import LinePopulation

POPULATION_LINES = 8192
BITEXACT_LINES = 48
AGES = [units.HOUR, 6 * units.HOUR, units.DAY, 3 * units.DAY, units.WEEK]


def compute() -> dict:
    distribution = CrossingDistribution(CellSpec())
    population = LinePopulation(
        num_lines=POPULATION_LINES,
        cells_per_line=256,
        distribution=distribution,
        rng=np.random.default_rng(20),
    )
    array = LineArray(
        BITEXACT_LINES,
        256,
        rng=np.random.default_rng(21),
        variation=VariationSpec(0.0, 0.0),
        endurance=None,
    )
    array.write_random(0.0)

    idx = np.arange(POPULATION_LINES)
    rows = {"analytic": [], "population MC": [], "bit-exact": []}
    for age in AGES:
        rows["analytic"].append(float(distribution.cdf(age)))
        rows["population MC"].append(
            population.error_counts(idx, age).sum() / (POPULATION_LINES * 256)
        )
        rows["bit-exact"].append(
            array.total_errors(age) / (BITEXACT_LINES * 256)
        )
    return rows


def test_e02_mc_vs_analytic(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e02_mc_vs_analytic",
        format_series(
            "age",
            [units.format_seconds(a) for a in AGES],
            rows,
            title="E2: per-cell error probability - three engines (validation)",
        ),
    )
    for analytic, mc, exact in zip(
        rows["analytic"], rows["population MC"], rows["bit-exact"]
    ):
        # Population engine: millions of cells, tight agreement.
        np.testing.assert_allclose(mc, analytic, rtol=0.1, atol=2e-5)
        # Bit-exact: ~12k cells, looser Poisson bounds.
        sigma = np.sqrt(max(analytic, 1e-9) / (BITEXACT_LINES * 256))
        assert abs(exact - analytic) < 5 * sigma + 3e-4
