"""A2 (ablation): diurnal thermal cycling vs constant temperatures.

Scrub provisioning by the *mean* temperature is wrong in a useful
direction to know about: drift error probability is convex in the
Arrhenius acceleration, so a 305K/330K day/night cycle produces error
rates between the constant-305K and constant-330K extremes but above the
constant mean-acceleration equivalent's naive midpoint intuition.  The
population engine handles the cycling exactly (effective-age remapping),
so the comparison is apples to apples.
"""

from __future__ import annotations

import dataclasses

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.pcm.thermal import ThermalPhase, ThermalProfile
from repro.sim import SimulationConfig, run_experiment

BASE = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = 2 * units.HOUR

SCENARIOS = [
    ("constant 305K", 305.0, None),
    ("constant 330K", 330.0, None),
    (
        "diurnal 305/330K",
        None,
        ThermalProfile(
            [
                ThermalPhase(12 * units.HOUR, 330.0),
                ThermalPhase(12 * units.HOUR, 305.0),
            ]
        ),
    ),
]


def compute() -> list[list[object]]:
    rows = []
    for name, temperature, profile in SCENARIOS:
        config = dataclasses.replace(
            BASE,
            temperature_k=temperature if temperature else 300.0,
            thermal_profile=profile,
        )
        result = run_experiment(
            threshold_scrub(INTERVAL, strength=4, threshold=3), config
        )
        rows.append(
            [
                name,
                result.uncorrectable,
                result.scrub_writes,
                units.format_energy(result.scrub_energy),
            ]
        )
    return rows


def test_a02_thermal_profile(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a02_thermal_profile",
        format_table(
            ["thermal scenario", "UE", "scrub writes", "scrub energy"],
            rows,
            title=(
                "A2: diurnal cycling vs constant extremes "
                f"(threshold scrub @ {units.format_seconds(INTERVAL)})"
            ),
        ),
    )
    by_name = {row[0]: row for row in rows}
    cold_ue = by_name["constant 305K"][1]
    hot_ue = by_name["constant 330K"][1]
    cycled_ue = by_name["diurnal 305/330K"][1]
    # Cycling lands strictly between the constant extremes.
    assert cold_ue < cycled_ue < hot_ue
    # Same ordering in scrub write volume.
    assert by_name["constant 305K"][2] < by_name["diurnal 305/330K"][2]
    assert by_name["diurnal 305/330K"][2] < by_name["constant 330K"][2]
