"""E6 (figure): scrub writes saved by threshold write-back (theta sweep).

The second cost mechanism: a correctable line need not be written back
until its error count approaches the code's limit.  Sweeping the
write-back threshold for BCH-4 and BCH-8 shows the writes/UE trade-off
knob: each unit of theta defers write-backs by roughly the time the line
takes to accumulate one more error.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR
SWEEP = [(4, 1), (4, 2), (4, 3), (8, 1), (8, 4), (8, 6), (8, 7)]


def compute() -> list[list[object]]:
    rows = []
    for strength, theta in SWEEP:
        result = run_experiment(
            threshold_scrub(INTERVAL, strength, threshold=theta), CONFIG
        )
        rows.append(
            [
                f"bch{strength}",
                theta,
                result.scrub_writes,
                result.uncorrectable,
                units.format_energy(result.scrub_energy),
            ]
        )
    return rows


def test_e06_threshold_writes(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e06_threshold_writes",
        format_table(
            ["code", "theta", "scrub writes", "UE", "scrub energy"],
            rows,
            title=(
                f"E6: write-back threshold sweep @ {units.format_seconds(INTERVAL)} "
                "(writes fall as theta rises; UE creeps toward the limit)"
            ),
        ),
    )
    writes = {(row[0], row[1]): row[2] for row in rows}
    # Writes strictly fall with theta within each code.
    assert writes[("bch4", 1)] > writes[("bch4", 2)] > writes[("bch4", 3)]
    assert writes[("bch8", 1)] > writes[("bch8", 4)] > writes[("bch8", 6)]
    # The strong code at high theta saves an order of magnitude.
    assert writes[("bch8", 6)] < writes[("bch8", 1)] / 8
