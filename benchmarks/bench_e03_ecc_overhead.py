"""E3 (table): ECC storage overhead and decode cost vs correction strength.

The storage argument for strong ECC: a shortened BCH over GF(2^10) pays
~10 check bits per corrected error on a 512-bit line, so even BCH-6
(60 bits, corrects 6) undercuts DRAM-style per-word SECDED (64 bits,
corrects 1 per word).  Decode cost is what grows - which is exactly what
the lightweight-detection mechanism then removes from the common path.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.ecc.schemes import get_scheme, secded_scheme
from repro.params import EnergySpec, LineSpec
from repro.pcm.energy import OperationCosts

SCHEME_NAMES = ["secded", "bch1", "bch2", "bch3", "bch4", "bch6", "bch8", "bch8+crc"]


def compute_rows() -> list[list[object]]:
    energy = EnergySpec()
    line = LineSpec()
    rows = []
    for name in SCHEME_NAMES:
        scheme = get_scheme(name)
        costs = OperationCosts.for_line(
            energy, line, scheme.total_overhead_bits, scheme.t
        )
        rows.append(
            [
                scheme.name,
                scheme.t,
                scheme.check_bits,
                scheme.detector_bits,
                f"{scheme.overhead_fraction(512):.1%}",
                f"{costs.decode_energy * 1e12:.1f}pJ",
                f"{costs.decode_latency * 1e9:.0f}ns",
            ]
        )
    return rows


def test_e03_ecc_overhead(benchmark, emit):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    emit(
        "e03_ecc_overhead",
        format_table(
            ["scheme", "t", "check bits", "detect bits", "overhead", "decode E", "decode lat"],
            rows,
            title="E3: per-line ECC overhead and decode cost (512-bit lines)",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # BCH-6 corrects 6x more than SECDED in fewer bits.
    assert by_name["bch6"][2] < by_name["secded"][2]
    assert secded_scheme().t == 1
    # Check-bit growth is ~10 bits per unit of t.
    assert by_name["bch8"][2] == 80
