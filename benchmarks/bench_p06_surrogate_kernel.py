"""P6 (performance): grid-batched renewal kernel vs per-device recursion.

The acceptance demonstration for `repro.sim.renewal_batch`: a
fleet-scale screening pass and a provisioning grid sweep, each run once
through the batched finite-horizon kernel (the default) and once
through the scalar per-device oracle (``batch=False`` - the original
pure-Python recursion, kept as the reference implementation).  The
batched paths must

* produce *identical* screen classifications, escalation sets, frontier
  key sets, and recommendations (the kernel is a pure optimization; the
  ``surrogate_batch`` verify law separately bounds the numeric gap at
  1e-9 relative), and
* run at least 5x faster on each phase.

Both phases run single-process (``jobs=1``) so the ratio measures the
kernel, not pool fan-out; the ``--jobs`` path is exercised by the CI
planning smoke and by ``tests/screen``.
"""

from __future__ import annotations

import time

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter
from repro.fleet.report import FIT_HOURS
from repro.obs import NULL_PROFILER
from repro.provision import CandidateSpace, ProvisionSearch
from repro.screen import ScreenConstraints, plan_screen
from repro.sim.config import SimulationConfig
from repro.sim.renewal_batch import clear_propagation_cache

MIN_SPEEDUP = 5.0

#: Screening phase: a large three-aisle fleet under one threshold
#: policy.  Zero-spread lots are the realistic fleet shape (devices in
#: an aisle share a qualification corner) and the kernel's best case:
#: the whole fleet collapses to three propagations.
SCREEN_DEVICES = 20_000
#: Count budget (expected horizon UEs per device) splitting the aisles
#: into pass / straddle / fail, mirroring ``examples/specs/fleet_screen``.
SCREEN_COUNT_BUDGET = 4.0

#: Provisioning phase: a smaller two-lot fleet swept over a six-point
#: in-regime candidate grid (3 intervals x 2 strengths).
PROVISION_DEVICES = 1_000
PROVISION_SPACE = CandidateSpace(
    policies=("threshold",),
    intervals=(1800.0, 3600.0, 7200.0),
    strengths=(2, 4),
    thresholds=(None,),
)


def screen_spec() -> FleetSpec:
    return FleetSpec(
        name="p06-screen",
        devices=SCREEN_DEVICES,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 3,
            "threshold": 2,
            "with_detector": False,
        },
        base_config=SimulationConfig(
            num_lines=64, region_size=64, horizon=units.DAY, seed=2012,
            endurance=None,
        ),
        lots=(
            Lot(name="cool", weight=5,
                temperature_k=LotParameter(300.0, 0.0)),
            Lot(name="hot", weight=2,
                temperature_k=LotParameter(316.0, 0.0)),
            Lot(name="recalled", weight=1,
                temperature_k=LotParameter(350.0, 0.0)),
        ),
    )


def provision_spec() -> FleetSpec:
    return FleetSpec(
        name="p06-provision",
        devices=PROVISION_DEVICES,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 4,
            "threshold": 3,
            "with_detector": False,
        },
        base_config=SimulationConfig(
            num_lines=256, region_size=256, horizon=units.DAY, seed=2012,
            endurance=None,
        ),
        lots=(
            Lot(name="nominal", weight=1,
                temperature_k=LotParameter(300.0, 0.0)),
            Lot(name="hot", weight=1,
                temperature_k=LotParameter(312.0, 0.0)),
        ),
    )


def compute(profiler=NULL_PROFILER):
    results: dict[str, object] = {}

    spec = screen_spec()
    horizon_hours = spec.base_config.horizon / units.HOUR
    constraints = ScreenConstraints(
        fit_limit=SCREEN_COUNT_BUDGET
        * FIT_HOURS
        * spec.capacity_scale
        / horizon_hours
    )
    # Cold kernel memo both ways: the ratio measures computation, not a
    # warm cache (the scalar path never consults the propagation memo).
    clear_propagation_cache()
    started = time.perf_counter()
    with profiler.span("p06.screen_batched"):
        plan_batched = plan_screen(spec, constraints)
    results["screen_batched_wall"] = time.perf_counter() - started

    started = time.perf_counter()
    with profiler.span("p06.screen_scalar"):
        plan_scalar = plan_screen(spec, constraints, batch=False)
    results["screen_scalar_wall"] = time.perf_counter() - started
    results["screen"] = (spec, plan_batched, plan_scalar)

    pspec = provision_spec()
    clear_propagation_cache()
    started = time.perf_counter()
    with profiler.span("p06.provision_batched"):
        report_batched = ProvisionSearch(pspec, PROVISION_SPACE).run()
    results["provision_batched_wall"] = time.perf_counter() - started

    started = time.perf_counter()
    with profiler.span("p06.provision_scalar"):
        report_scalar = ProvisionSearch(
            pspec, PROVISION_SPACE, batch=False
        ).run()
    results["provision_scalar_wall"] = time.perf_counter() - started
    results["provision"] = (pspec, report_batched, report_scalar)
    return results


def test_p06_surrogate_kernel(benchmark, emit, bench_summary, bench_profiler):
    results = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )
    spec, plan_batched, plan_scalar = results["screen"]
    pspec, report_batched, report_scalar = results["provision"]

    # Screen identity: same classification, reasons and escalation set
    # for every device.
    assert [
        (d.index, d.classification, d.reasons) for d in plan_batched.decisions
    ] == [
        (d.index, d.classification, d.reasons) for d in plan_scalar.decisions
    ]
    assert plan_batched.escalated == plan_scalar.escalated

    # Provision identity: same frontiers and recommendations per lot.
    for lot_b, lot_s in zip(report_batched.lots, report_scalar.lots):
        assert lot_b.frontier == lot_s.frontier, (
            f"lot {lot_b.lot}: batched frontier != scalar"
        )
        assert lot_b.recommended == lot_s.recommended
    assert report_batched.mc_device_runs == report_scalar.mc_device_runs == 0

    screen_speedup = results["screen_scalar_wall"] / max(
        1e-9, results["screen_batched_wall"]
    )
    provision_speedup = results["provision_scalar_wall"] / max(
        1e-9, results["provision_batched_wall"]
    )
    assert screen_speedup >= MIN_SPEEDUP, (
        f"screen batched only {screen_speedup:.1f}x faster"
    )
    assert provision_speedup >= MIN_SPEEDUP, (
        f"provision batched only {provision_speedup:.1f}x faster"
    )

    bench_summary["p06_surrogate_kernel"] = {
        "screen_devices": spec.devices,
        "provision_devices": pspec.devices,
        "provision_candidates": len(PROVISION_SPACE.candidates()),
        "screen_batched_wall_seconds": round(
            results["screen_batched_wall"], 4
        ),
        "screen_scalar_wall_seconds": round(results["screen_scalar_wall"], 4),
        "provision_batched_wall_seconds": round(
            results["provision_batched_wall"], 4
        ),
        "provision_scalar_wall_seconds": round(
            results["provision_scalar_wall"], 4
        ),
        "screen_speedup": round(screen_speedup, 2),
        "provision_speedup": round(provision_speedup, 2),
    }
    emit(
        "p06_surrogate_kernel",
        "\n".join(
            [
                "P6: grid-batched renewal kernel vs scalar recursion",
                f"  screen ({spec.devices} devices, {len(spec.lots)} lots):",
                f"    batched: {results['screen_batched_wall']:8.2f}s",
                f"    scalar:  {results['screen_scalar_wall']:8.2f}s"
                f"  ({screen_speedup:.1f}x)",
                f"  provision ({pspec.devices} devices, "
                f"{len(PROVISION_SPACE.candidates())} candidates, "
                f"{len(pspec.lots)} lots):",
                f"    batched: {results['provision_batched_wall']:8.2f}s",
                f"    scalar:  {results['provision_scalar_wall']:8.2f}s"
                f"  ({provision_speedup:.1f}x)",
                f"  classifications: {plan_batched.counts()}",
            ]
        ),
    )
