"""E4 (figure): line-failure probability vs scrub interval, per ECC strength.

The design-space chart behind the strong-ECC mechanism: for each scrub
interval T, the probability that a (freshly rewritten) line accumulates
more than t errors before its next visit.  SECDED (t=1) forces intervals
of minutes; BCH-8 tolerates hours to days at the same reliability - the
orders-of-magnitude gap the paper exploits.  Closed form (binomial tail
over the drift mixture).
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_series, format_table
from repro.params import CellSpec
from repro.sim.analytic import AnalyticModel, CrossingDistribution

INTERVALS = [
    units.MINUTE,
    10 * units.MINUTE,
    units.HOUR,
    6 * units.HOUR,
    units.DAY,
    units.WEEK,
]
STRENGTHS = [1, 2, 4, 8]
#: Per-visit failure-probability budget used for the "required interval"
#: companion table.
TARGET = 1e-9


def compute() -> tuple[dict[str, list[float]], list[list[object]]]:
    model = AnalyticModel(CrossingDistribution(CellSpec()), cells_per_line=256)
    series = {
        f"t={t}": [model.line_failure_probability(T, t) for T in INTERVALS]
        for t in STRENGTHS
    }
    required = [
        [f"t={t}", units.format_seconds(model.required_interval(t, TARGET))]
        for t in STRENGTHS
    ]
    return series, required


def test_e04_ue_vs_interval(benchmark, emit):
    series, required = benchmark.pedantic(compute, rounds=1, iterations=1)
    figure = format_series(
        "interval",
        [units.format_seconds(T) for T in INTERVALS],
        series,
        title="E4: P(line uncorrectable within one scrub interval) per ECC strength",
    )
    table = format_table(
        ["code", f"max interval @ P<={TARGET:g}"],
        required,
        title="E4b: scrub interval each code sustains at equal reliability",
    )
    emit("e04_ue_vs_interval", figure + "\n\n" + table)

    # Monotone in T for every strength; stronger code never worse.
    for values in series.values():
        assert values == sorted(values)
    for a, b in zip(STRENGTHS, STRENGTHS[1:]):
        for i in range(len(INTERVALS)):
            assert series[f"t={b}"][i] <= series[f"t={a}"][i]
    # The headline gap: at a 1-hour interval strong ECC wins by >=10^3.
    hour = INTERVALS.index(units.HOUR)
    assert series["t=1"][hour] > 1e3 * series["t=8"][hour]
