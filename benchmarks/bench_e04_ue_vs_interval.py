"""E4 (figure): line-failure probability vs scrub interval, per ECC strength.

The design-space chart behind the strong-ECC mechanism: for each scrub
interval T, the probability that a (freshly rewritten) line accumulates
more than t errors before its next visit.  SECDED (t=1) forces intervals
of minutes; BCH-8 tolerates hours to days at the same reliability - the
orders-of-magnitude gap the paper exploits.  Closed form (binomial tail
over the drift mixture).
"""

from __future__ import annotations

import time

from repro import units
from repro.analysis.tables import format_series, format_table
from repro.params import CellSpec
from repro.sim.analytic import AnalyticModel
from repro.sim.parallel import parallel_map
from repro.sim.runner import cached_crossing_distribution

INTERVALS = [
    units.MINUTE,
    10 * units.MINUTE,
    units.HOUR,
    6 * units.HOUR,
    units.DAY,
    units.WEEK,
]
STRENGTHS = [1, 2, 4, 8]
#: Per-visit failure-probability budget used for the "required interval"
#: companion table.
TARGET = 1e-9


def _strength_task(strength: int) -> tuple[int, list[float], float]:
    spec = CellSpec()
    model = AnalyticModel(
        cached_crossing_distribution(spec, spec.reference_temperature_k),
        cells_per_line=256,
    )
    failures = [model.line_failure_probability(T, strength) for T in INTERVALS]
    return strength, failures, model.required_interval(strength, TARGET)


def compute(jobs: int = 1) -> tuple[dict[str, list[float]], list[list[object]]]:
    per_strength = parallel_map(_strength_task, STRENGTHS, jobs=jobs)
    series = {f"t={t}": failures for t, failures, _ in per_strength}
    required = [
        [f"t={t}", units.format_seconds(interval)]
        for t, _, interval in per_strength
    ]
    return series, required


def test_e04_ue_vs_interval(benchmark, emit, bench_jobs, bench_summary):
    started = time.perf_counter()
    series, required = benchmark.pedantic(
        compute, args=(bench_jobs,), rounds=1, iterations=1
    )
    bench_summary["e04_ue_vs_interval"] = {
        "runs": len(STRENGTHS),
        "jobs": bench_jobs,
        "wall_seconds": round(time.perf_counter() - started, 4),
    }
    figure = format_series(
        "interval",
        [units.format_seconds(T) for T in INTERVALS],
        series,
        title="E4: P(line uncorrectable within one scrub interval) per ECC strength",
    )
    table = format_table(
        ["code", f"max interval @ P<={TARGET:g}"],
        required,
        title="E4b: scrub interval each code sustains at equal reliability",
    )
    emit("e04_ue_vs_interval", figure + "\n\n" + table)

    # Monotone in T for every strength; stronger code never worse.
    for values in series.values():
        assert values == sorted(values)
    for a, b in zip(STRENGTHS, STRENGTHS[1:]):
        for i in range(len(INTERVALS)):
            assert series[f"t={b}"][i] <= series[f"t={a}"][i]
    # The headline gap: at a 1-hour interval strong ECC wins by >=10^3.
    hour = INTERVALS.index(units.HOUR)
    assert series["t=1"][hour] > 1e3 * series["t=8"][hour]
