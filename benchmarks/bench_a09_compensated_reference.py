"""A9 (ablation): time-aware read references under the same scrub.

Sliding each read boundary with the tracked mean drift removes the
*predictable* part of drift; the per-cell spread (and the new
overtaken-from-below failure mode) is what remains for ECC and scrub.
Same policies, same engine, two sensing models - the comparison shows
compensation buying orders of magnitude in sustainable scrub interval,
while scrub remains necessary (the spread still accumulates errors).
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.core.stats import ScrubStats
from repro.params import CellSpec
from repro.pcm.energy import OperationCosts
from repro.pcm.reference import CompensatedSensing
from repro.params import EnergySpec, LineSpec
from repro.sim.analytic import AnalyticModel, CrossingDistribution
from repro.sim.population import LinePopulation, PopulationEngine
from repro.sim.rng import RngStreams

NUM_LINES = 8192
REGION = 1024
HORIZON = 14 * units.DAY
TARGET = 1e-9


def run_with_distribution(distribution, policy) -> ScrubStats:
    population = LinePopulation(
        num_lines=NUM_LINES,
        cells_per_line=256,
        distribution=distribution,
        rng=np.random.default_rng(77),
    )
    costs = OperationCosts.for_line(
        EnergySpec(), LineSpec(),
        policy.scheme.total_overhead_bits, policy.scheme.t,
    )
    stats = ScrubStats(costs=costs)
    PopulationEngine(
        population=population,
        policy=policy,
        stats=stats,
        streams=RngStreams(78),
        horizon=HORIZON,
        region_size=REGION,
    ).simulate()
    return stats


def compute() -> tuple[list[list[object]], list[list[object]]]:
    plain = CrossingDistribution(CellSpec())
    compensated = CrossingDistribution(model=CompensatedSensing(CellSpec()))

    mc_rows = []
    for name, distribution, interval in [
        ("plain sensing @1h", plain, units.HOUR),
        ("compensated @1h", compensated, units.HOUR),
        ("compensated @1d", compensated, units.DAY),
    ]:
        stats = run_with_distribution(
            distribution, threshold_scrub(interval, strength=4, threshold=3)
        )
        mc_rows.append(
            [name, stats.uncorrectable, stats.scrub_writes,
             units.format_energy(stats.scrub_energy)]
        )

    interval_rows = []
    for name, distribution in [("plain", plain), ("compensated", compensated)]:
        model = AnalyticModel(distribution, 256)
        for t in (1, 4):
            interval_rows.append(
                [name, f"t={t}",
                 units.format_seconds(model.required_interval(t, TARGET))]
            )
    return mc_rows, interval_rows


def test_a09_compensated_reference(benchmark, emit):
    mc_rows, interval_rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "UE", "scrub writes", "scrub energy"],
        mc_rows,
        title=(
            "A9: scrub under plain vs drift-compensated read references "
            f"({NUM_LINES} lines, {units.format_seconds(HORIZON)})"
        ),
    )
    text += "\n\n" + format_table(
        ["sensing", "code", f"max interval @ P<={TARGET:g}"],
        interval_rows,
        title="A9b: sustainable scrub interval per sensing model",
    )
    emit("a09_compensated_reference", text)

    by_name = {row[0]: row for row in mc_rows}
    # At the same interval, compensation crushes scrub work and UEs.
    assert by_name["compensated @1h"][2] < by_name["plain sensing @1h"][2] / 10
    assert by_name["compensated @1h"][1] <= by_name["plain sensing @1h"][1]
    # Even at 24x the interval, compensated sensing stays comparable.
    assert by_name["compensated @1d"][1] <= max(
        10, by_name["plain sensing @1h"][1]
    )
    # Sustainable intervals stretch by well over an order of magnitude.
    plain_t4 = [row for row in interval_rows if row[0] == "plain" and row[1] == "t=4"]
    comp_t4 = [
        row for row in interval_rows if row[0] == "compensated" and row[1] == "t=4"
    ]
    assert plain_t4[0][2] != comp_t4[0][2]
