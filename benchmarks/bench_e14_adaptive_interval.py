"""E14 (figure): per-region adaptive intervals vs static, hot/cold memory.

The adaptive mechanism's showcase: half of memory is write-hot (demand
traffic resets its drift clocks every few minutes), half is cold.  A
static scrubber pays full price everywhere; the adaptive scrubber relaxes
the hot banks' intervals (up to 16x) while holding or tightening the cold
banks - fewer visits, fewer reads, equal-or-better UE.
"""

from __future__ import annotations

import time

from repro import units
from repro.analysis.tables import format_table
from repro.sim import RunSpec, SimulationConfig, run_many
from repro.sim.parallel import timing_summary
from repro.workloads.generators import hotspot_rates

CONFIG = SimulationConfig(
    num_lines=8192, region_size=512, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR

STATIC_KWARGS = {"interval": INTERVAL, "strength": 8, "threshold": 6}


def workload():
    return hotspot_rates(
        CONFIG.num_lines,
        total_write_rate=CONFIG.num_lines / (10 * units.MINUTE),
        hot_fraction=0.5,
        hot_share=0.99,
    )


def compute(jobs: int = 1):
    rates = workload()
    specs = [
        RunSpec("threshold", CONFIG, STATIC_KWARGS, rates),
        RunSpec("combined", CONFIG, {"interval": INTERVAL}, rates),
        RunSpec("threshold", CONFIG, STATIC_KWARGS),
        RunSpec("combined", CONFIG, {"interval": INTERVAL}),
    ]
    return tuple(run_many(specs, jobs=jobs))


def test_e14_adaptive_interval(benchmark, emit, bench_jobs, bench_summary):
    started = time.perf_counter()
    static, adaptive, idle_static, idle_adaptive = benchmark.pedantic(
        compute, args=(bench_jobs,), rounds=1, iterations=1
    )
    bench_summary["e14_adaptive_interval"] = timing_summary(
        [static, adaptive, idle_static, idle_adaptive],
        time.perf_counter() - started,
        bench_jobs,
    )

    def row(label, result):
        return [
            label,
            result.stats.visits,
            result.scrub_writes,
            result.uncorrectable,
            units.format_energy(result.scrub_energy),
        ]

    rows = [
        row("static  / hot+cold", static),
        row("adaptive/ hot+cold", adaptive),
        row("static  / idle", idle_static),
        row("adaptive/ idle", idle_adaptive),
    ]
    emit(
        "e14_adaptive_interval",
        format_table(
            ["policy/workload", "scrub visits", "scrub writes", "UE", "scrub E"],
            rows,
            title=(
                "E14: adaptive per-region intervals vs static "
                "(hot half of memory demand-refreshed every ~minutes)"
            ),
        ),
    )
    # Under hot/cold traffic the adaptive scrubber visits far less...
    assert adaptive.stats.visits < 0.8 * static.stats.visits
    # ...without losing protection.
    assert adaptive.uncorrectable <= static.uncorrectable + 5
    # In idle memory there is nothing to relax into: visit counts converge.
    ratio = idle_adaptive.stats.visits / idle_static.stats.visits
    assert 0.5 < ratio < 2.0
