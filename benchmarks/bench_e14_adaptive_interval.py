"""E14 (figure): per-region adaptive intervals vs static, hot/cold memory.

The adaptive mechanism's showcase: half of memory is write-hot (demand
traffic resets its drift clocks every few minutes), half is cold.  A
static scrubber pays full price everywhere; the adaptive scrubber relaxes
the hot banks' intervals (up to 16x) while holding or tightening the cold
banks - fewer visits, fewer reads, equal-or-better UE.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_table
from repro.core import combined_scrub, threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import hotspot_rates

CONFIG = SimulationConfig(
    num_lines=8192, region_size=512, horizon=14 * units.DAY, endurance=None
)
INTERVAL = units.HOUR


def workload():
    return hotspot_rates(
        CONFIG.num_lines,
        total_write_rate=CONFIG.num_lines / (10 * units.MINUTE),
        hot_fraction=0.5,
        hot_share=0.99,
    )


def compute():
    rates = workload()
    static = run_experiment(
        threshold_scrub(INTERVAL, strength=8, threshold=6), CONFIG, rates
    )
    adaptive = run_experiment(combined_scrub(INTERVAL), CONFIG, rates)
    idle_static = run_experiment(
        threshold_scrub(INTERVAL, strength=8, threshold=6), CONFIG
    )
    idle_adaptive = run_experiment(combined_scrub(INTERVAL), CONFIG)
    return static, adaptive, idle_static, idle_adaptive


def test_e14_adaptive_interval(benchmark, emit):
    static, adaptive, idle_static, idle_adaptive = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    def row(label, result):
        return [
            label,
            result.stats.visits,
            result.scrub_writes,
            result.uncorrectable,
            units.format_energy(result.scrub_energy),
        ]

    rows = [
        row("static  / hot+cold", static),
        row("adaptive/ hot+cold", adaptive),
        row("static  / idle", idle_static),
        row("adaptive/ idle", idle_adaptive),
    ]
    emit(
        "e14_adaptive_interval",
        format_table(
            ["policy/workload", "scrub visits", "scrub writes", "UE", "scrub E"],
            rows,
            title=(
                "E14: adaptive per-region intervals vs static "
                "(hot half of memory demand-refreshed every ~minutes)"
            ),
        ),
    )
    # Under hot/cold traffic the adaptive scrubber visits far less...
    assert adaptive.stats.visits < 0.8 * static.stats.visits
    # ...without losing protection.
    assert adaptive.uncorrectable <= static.uncorrectable + 5
    # In idle memory there is nothing to relax into: visit counts converge.
    ratio = idle_adaptive.stats.visits / idle_static.stats.visits
    assert 0.5 < ratio < 2.0
