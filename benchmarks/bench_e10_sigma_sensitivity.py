"""E10 (figure): sensitivity to the drift-exponent spread sigma_nu.

Drift errors are a tail phenomenon: the mean drift exponent would take
weeks to cross a guard band, but cells drawn a few sigma high cross in
hours.  Scaling sigma_nu/nu-bar shows error probability is dominated by
the spread - the reason the paper's mechanisms must handle per-cell
variation rather than worst-case-design the guard bands.
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_series
from repro.params import CellSpec, DriftParams, replace
from repro.pcm.drift import DriftModel

SIGMA_RATIOS = [0.2, 0.3, 0.4, 0.5, 0.6]
AGES = [units.HOUR, units.DAY, units.WEEK]


def spec_with_sigma_ratio(ratio: float) -> CellSpec:
    base = CellSpec()
    return replace(
        base,
        drift=tuple(
            DriftParams(d.nu_mean, d.nu_mean * ratio) for d in base.drift
        ),
    )


def compute() -> dict[str, list[float]]:
    series: dict[str, list[float]] = {
        units.format_seconds(age): [] for age in AGES
    }
    for ratio in SIGMA_RATIOS:
        model = DriftModel(spec_with_sigma_ratio(ratio))
        for age in AGES:
            # L2 is the vulnerable level; report its error probability.
            series[units.format_seconds(age)].append(
                model.error_probability(2, age)
            )
    return series


def test_e10_sigma_sensitivity(benchmark, emit):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e10_sigma_sensitivity",
        format_series(
            "sigma/nu",
            [f"{r:.1f}" for r in SIGMA_RATIOS],
            series,
            title="E10: L2 drift error probability vs drift-exponent spread",
        ),
    )
    # Error probability at short ages is driven by the tail: strongly
    # increasing in sigma.
    hour = series[units.format_seconds(units.HOUR)]
    assert hour == sorted(hour)
    assert hour[-1] > 50 * max(hour[0], 1e-12)
