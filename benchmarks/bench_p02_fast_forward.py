"""P2 (performance): quiescent-visit fast-forward on an idle year horizon.

The acceptance demonstration for the fast-forward layer: a basic scrub of
an idle, drift-compensated population over a full year, run once with the
naive per-visit walk and once with event-horizon skipping.  The two runs
must be bit-identical (stats, energy, histogram, final state) and the
fast path must be at least 5x faster in wall-clock — on this operating
point nearly every visit is provably error-free, so the naive walk's
~140k visits collapse into a few thousand bulk jumps.
"""

from __future__ import annotations

import dataclasses
import time

from repro import units
from repro.core import basic_scrub
from repro.obs import NULL_PROFILER
from repro.sim import SimulationConfig, run_experiment

#: Drift-compensated sensing (the a09 operating point): idle regions stay
#: genuinely error-free for long stretches, which is exactly the regime the
#: fast-forward layer exists for.
CONFIG = SimulationConfig(
    num_lines=16384,
    region_size=1024,
    horizon=365 * units.DAY,
    endurance=None,
    compensated_sensing=True,
)
INTERVAL = units.HOUR
MIN_SPEEDUP = 5.0


def compute(profiler=NULL_PROFILER):
    naive_started = time.perf_counter()
    with profiler.span("p02.naive_walk"):
        naive = run_experiment(
            basic_scrub(INTERVAL),
            dataclasses.replace(CONFIG, fast_forward=False),
        )
    naive_wall = time.perf_counter() - naive_started

    fast_started = time.perf_counter()
    with profiler.span("p02.fast_forward"):
        fast = run_experiment(basic_scrub(INTERVAL), CONFIG)
    fast_wall = time.perf_counter() - fast_started
    return naive, fast, naive_wall, fast_wall


def test_p02_fast_forward(benchmark, emit, bench_summary, bench_profiler):
    naive, fast, naive_wall, fast_wall = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )

    # Bit-identical results: the fast-forward contract.
    assert fast.stats.summary() == naive.stats.summary()
    assert fast.stats.energy_breakdown() == naive.stats.energy_breakdown()
    assert (
        fast.stats.error_histogram.tolist()
        == naive.stats.error_histogram.tolist()
    )
    assert fast.stats.visits_with_errors == naive.stats.visits_with_errors
    assert fast.final_state == naive.final_state
    assert naive.fast_forward is None

    skipped = fast.fast_forward["skipped_visits"]
    jumps = fast.fast_forward["jumps"]
    total_visits = int(fast.stats.visits) // CONFIG.region_size
    assert skipped > 0

    speedup = naive_wall / fast_wall if fast_wall > 0 else 0.0
    bench_summary["p02_fast_forward"] = {
        "naive_wall_seconds": round(naive_wall, 4),
        "fast_forward_wall_seconds": round(fast_wall, 4),
        "speedup": round(speedup, 3),
        "region_visits": total_visits,
        "skipped_visits": skipped,
        "jumps": jumps,
    }
    emit(
        "p02_fast_forward",
        "\n".join(
            [
                "P2: quiescent-visit fast-forward (idle basic scrub, "
                f"{CONFIG.num_lines} lines, {units.format_seconds(CONFIG.horizon)})",
                f"  naive walk:      {naive_wall:8.2f}s  "
                f"({total_visits} region visits)",
                f"  fast-forward:    {fast_wall:8.2f}s  "
                f"({skipped} visits folded into {jumps} jumps)",
                f"  speedup:         {speedup:8.2f}x",
                "  results bit-identical: yes",
            ]
        ),
    )

    assert speedup >= MIN_SPEEDUP
