"""E5 (figure): uncorrectable errors - basic SECDED scrub vs strong-ECC scrub.

Full population Monte Carlo (not closed form): both policies run the same
scan-and-write-back-on-error algorithm at the same intervals; only the
code strength differs.  Reproduces the first mechanism's win and shows it
does nothing for write volume (that takes the threshold mechanism, E6).
"""

from __future__ import annotations

from repro import units
from repro.analysis.tables import format_series
from repro.core import basic_scrub, strong_ecc_scrub
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVALS = [0.5 * units.HOUR, units.HOUR, 2 * units.HOUR, 4 * units.HOUR]


def compute() -> dict[str, list[float]]:
    out: dict[str, list[float]] = {
        "basic UE": [], "bch4 UE": [], "basic writes": [], "bch4 writes": [],
    }
    for interval in INTERVALS:
        base = run_experiment(basic_scrub(interval), CONFIG)
        strong = run_experiment(strong_ecc_scrub(interval, 4), CONFIG)
        out["basic UE"].append(base.uncorrectable)
        out["bch4 UE"].append(strong.uncorrectable)
        out["basic writes"].append(base.scrub_writes)
        out["bch4 writes"].append(strong.scrub_writes)
    return out


def test_e05_basic_vs_strong(benchmark, emit):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "e05_basic_vs_strong",
        format_series(
            "interval",
            [units.format_seconds(T) for T in INTERVALS],
            series,
            title=(
                "E5: basic(secded) vs strong(bch4) - population Monte Carlo, "
                f"{CONFIG.num_lines} lines x {units.format_seconds(CONFIG.horizon)}"
            ),
        ),
    )
    for i in range(len(INTERVALS)):
        basic_ue = series["basic UE"][i]
        strong_ue = series["bch4 UE"][i]
        assert basic_ue > 50  # baseline visibly suffers at every interval
        assert strong_ue < basic_ue / 20
        # Same algorithm, same order of write volume.
        assert series["bch4 writes"][i] > 0.3 * series["basic writes"][i]
