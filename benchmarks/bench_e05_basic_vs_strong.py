"""E5 (figure): uncorrectable errors - basic SECDED scrub vs strong-ECC scrub.

Full population Monte Carlo (not closed form): both policies run the same
scan-and-write-back-on-error algorithm at the same intervals; only the
code strength differs.  Reproduces the first mechanism's win and shows it
does nothing for write volume (that takes the threshold mechanism, E6).
"""

from __future__ import annotations

import time

from repro import units
from repro.analysis.tables import format_series
from repro.sim import RunSpec, SimulationConfig, run_many
from repro.sim.parallel import timing_summary

CONFIG = SimulationConfig(
    num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
)
INTERVALS = [0.5 * units.HOUR, units.HOUR, 2 * units.HOUR, 4 * units.HOUR]


def compute(jobs: int = 1) -> tuple[dict[str, list[float]], list]:
    specs = []
    for interval in INTERVALS:
        specs.append(RunSpec("basic", CONFIG, {"interval": interval}))
        specs.append(RunSpec("strong", CONFIG, {"interval": interval, "strength": 4}))
    results = run_many(specs, jobs=jobs)
    out: dict[str, list[float]] = {
        "basic UE": [], "bch4 UE": [], "basic writes": [], "bch4 writes": [],
    }
    for i in range(len(INTERVALS)):
        base, strong = results[2 * i], results[2 * i + 1]
        out["basic UE"].append(base.uncorrectable)
        out["bch4 UE"].append(strong.uncorrectable)
        out["basic writes"].append(base.scrub_writes)
        out["bch4 writes"].append(strong.scrub_writes)
    return out, results


def test_e05_basic_vs_strong(benchmark, emit, bench_jobs, bench_summary):
    started = time.perf_counter()
    series, results = benchmark.pedantic(
        compute, args=(bench_jobs,), rounds=1, iterations=1
    )
    bench_summary["e05_basic_vs_strong"] = timing_summary(
        results, time.perf_counter() - started, bench_jobs
    )
    emit(
        "e05_basic_vs_strong",
        format_series(
            "interval",
            [units.format_seconds(T) for T in INTERVALS],
            series,
            title=(
                "E5: basic(secded) vs strong(bch4) - population Monte Carlo, "
                f"{CONFIG.num_lines} lines x {units.format_seconds(CONFIG.horizon)}"
            ),
        ),
    )
    for i in range(len(INTERVALS)):
        basic_ue = series["basic UE"][i]
        strong_ue = series["bch4 UE"][i]
        assert basic_ue > 50  # baseline visibly suffers at every interval
        assert strong_ue < basic_ue / 20
        # Same algorithm, same order of write volume.
        assert series["bch4 writes"][i] > 0.3 * series["basic writes"][i]
