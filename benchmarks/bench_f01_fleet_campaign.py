"""F1 (fleet): heterogeneous campaign throughput and resume bit-identity.

The acceptance demonstration for the fleet campaign engine: a 64-device,
three-lot campaign run over the process pool, then interrupted at the
halfway mark and resumed from its checkpoint journal.  The resumed
report must be bit-identical to the uninterrupted one, and the fleet
UE total must equal the sum of the per-lot partial sums (the aggregate
re-checks this internally; we assert it again here from the report).

Timings (devices/second, parallel wall) land in ``bench_summary.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.fleet import FleetSpec, run_campaign
from repro.obs import NULL_PROFILER

SPEC_PATH = Path(__file__).resolve().parent.parent / "examples" / "specs" / "fleet_smoke.json"
JOBS = 4


def compute(profiler=NULL_PROFILER):
    spec = FleetSpec.from_file(SPEC_PATH)
    started = time.perf_counter()
    with profiler.span("f01.campaign"):
        outcome = run_campaign(spec, jobs=JOBS)
    wall = time.perf_counter() - started
    return spec, outcome, wall


def test_f01_fleet_campaign(benchmark, emit, bench_summary, bench_profiler, tmp_path):
    spec, outcome, wall = benchmark.pedantic(
        compute, args=(bench_profiler,), rounds=1, iterations=1
    )
    assert outcome.finished
    report = outcome.report

    # Interrupt at the halfway mark, then resume from the journal: the
    # final report must be bit-identical to the uninterrupted run.
    journal = tmp_path / "campaign.jsonl"
    with bench_profiler.span("f01.interrupted"):
        partial = run_campaign(
            spec, jobs=JOBS, checkpoint=journal, stop_after=spec.devices // 2
        )
    assert not partial.finished
    with bench_profiler.span("f01.resume"):
        resumed = run_campaign(spec, jobs=JOBS, checkpoint=journal, resume=True)
    assert resumed.finished
    assert resumed.executed == spec.devices - partial.completed
    assert json.dumps(resumed.report.to_dict(), sort_keys=True) == json.dumps(
        report.to_dict(), sort_keys=True
    )

    # Fleet UE total re-adds from the per-lot partial sums.
    assert sum(lot.counts["uncorrectable"] for lot in report.lots) == report.uncorrectable

    rate = spec.devices / wall if wall > 0 else 0.0
    bench_summary["f01_fleet_campaign"] = {
        "devices": spec.devices,
        "lots": len(spec.lots),
        "jobs": JOBS,
        "wall_seconds": round(wall, 4),
        "devices_per_second": round(rate, 3),
        "cpu_count": os.cpu_count() or 1,
        "fit": round(report.fit, 3),
        "fit_scaled": round(report.fit_scaled, 3),
        "availability": round(report.availability, 4),
        "uncorrectable": report.uncorrectable,
        "resume_bit_identical": True,
    }
    emit(
        "f01_fleet_campaign",
        "\n".join(
            [
                f"F1: fleet campaign ({spec.devices} devices, "
                f"{len(spec.lots)} lots, jobs={JOBS})",
                f"  wall:              {wall:8.2f}s "
                f"({rate:.1f} devices/s on {os.cpu_count()} CPUs)",
                f"  fleet FIT:         {report.fit:8.1f} "
                f"(scaled to {spec.capacity_gib_per_device:g} GiB: "
                f"{report.fit_scaled:.1f})",
                f"  availability:      {report.availability:8.1%}",
                f"  uncorrectable:     {report.uncorrectable:8d}",
                "  resume report bit-identical: yes",
            ]
        ),
    )
