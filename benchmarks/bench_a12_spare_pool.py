"""A12 (ablation): spare-pool provisioning vs end-of-life behaviour.

Retirement only works while spares remain.  Sweeping the per-region spare
provision under accelerated wear shows the three regimes: generous pools
absorb every wear-terminal line (UEs stay drift-only), thin pools exhaust
mid-deployment (UE inflection as broken lines stay in service), and zero
provision turns the first wear-outs directly into recurring UEs.

Runs through the public ``run_experiment`` entry point (the
``spares_per_region`` config field builds the pool) and fans the
provision sweep across the process pool.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro import units
from repro.analysis.tables import format_table
from repro.params import EnduranceSpec
from repro.sim import RunSpec, SimulationConfig, run_many
from repro.sim.parallel import timing_summary
from repro.workloads.generators import uniform_rates

NUM_LINES = 4096
REGIONS = 8
REGION_SIZE = NUM_LINES // REGIONS
HORIZON = 21 * units.DAY
#: Accelerated endurance calibrated so the lognormal *tail* wears out
#: within the horizon (~2% of lines hit the retirement limit) while the
#: bulk survives - the regime spare pools are provisioned for.
ENDURANCE = EnduranceSpec(mean_writes=1500, sigma_log10=0.25)
PROVISIONS = [0, 2, 8, 512]

CONFIG = SimulationConfig(
    num_lines=NUM_LINES,
    region_size=REGION_SIZE,
    horizon=HORIZON,
    seed=14,
    endurance=ENDURANCE,
    retire_hard_limit=4,
)


def compute(jobs: int = 1) -> tuple[list[list[object]], list]:
    rates = uniform_rates(NUM_LINES, NUM_LINES / (2 * units.HOUR))
    specs = [
        RunSpec(
            "threshold",
            replace(CONFIG, spares_per_region=provision),
            {"interval": units.HOUR, "strength": 4, "threshold": 1},
            rates,
        )
        for provision in PROVISIONS
    ]
    results = run_many(specs, jobs=jobs)
    rows = []
    for provision, result in zip(PROVISIONS, results):
        rows.append(
            [
                provision,
                f"{provision / REGION_SIZE:.1%}",
                result.stats.retired,
                int(result.final_state["spare_exhausted_regions"]),
                result.uncorrectable,
            ]
        )
    return rows, results


def test_a12_spare_pool(benchmark, emit, bench_jobs, bench_summary):
    started = time.perf_counter()
    rows, results = benchmark.pedantic(
        compute, args=(bench_jobs,), rounds=1, iterations=1
    )
    bench_summary["a12_spare_pool"] = timing_summary(
        results, time.perf_counter() - started, bench_jobs
    )
    emit(
        "a12_spare_pool",
        format_table(
            ["spares/region", "provision", "retired", "exhausted regions", "UE"],
            rows,
            title=(
                "A12: spare provisioning under accelerated wear "
                f"(endurance {ENDURANCE.mean_writes:g}, {units.format_seconds(HORIZON)})"
            ),
        ),
    )
    by_provision = {row[0]: row for row in rows}
    # Zero provision: no retirement, worst UE.  Generous: no exhaustion.
    assert by_provision[0][2] == 0
    assert by_provision[512][3] < REGIONS
    ues = [row[4] for row in rows]
    # More spares never hurt; the extremes differ substantially.
    assert ues[0] > 2 * ues[-1]
    assert sorted(ues, reverse=True) == ues
