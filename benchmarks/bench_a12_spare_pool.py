"""A12 (ablation): spare-pool provisioning vs end-of-life behaviour.

Retirement only works while spares remain.  Sweeping the per-region spare
provision under accelerated wear shows the three regimes: generous pools
absorb every wear-terminal line (UEs stay drift-only), thin pools exhaust
mid-deployment (UE inflection as broken lines stay in service), and zero
provision turns the first wear-outs directly into recurring UEs.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.core.stats import ScrubStats
from repro.mem.sparing import SparePool
from repro.params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from repro.pcm.endurance import EnduranceModel
from repro.pcm.energy import OperationCosts
from repro.sim.analytic import CrossingDistribution
from repro.sim.population import LinePopulation, PopulationEngine
from repro.sim.rng import RngStreams
from repro.workloads.generators import uniform_rates

NUM_LINES = 4096
REGIONS = 8
REGION_SIZE = NUM_LINES // REGIONS
HORIZON = 21 * units.DAY
#: Accelerated endurance calibrated so the lognormal *tail* wears out
#: within the horizon (~2% of lines hit the retirement limit) while the
#: bulk survives - the regime spare pools are provisioned for.
ENDURANCE = EnduranceSpec(mean_writes=1500, sigma_log10=0.25)
PROVISIONS = [0, 2, 8, 512]


def run(spares_per_region: int):
    distribution = CrossingDistribution(CellSpec())
    population = LinePopulation(
        num_lines=NUM_LINES,
        cells_per_line=256,
        distribution=distribution,
        rng=np.random.default_rng(13),
        endurance=EnduranceModel(ENDURANCE),
    )
    costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 40, 4)
    stats = ScrubStats(costs=costs)
    pool = SparePool(num_regions=REGIONS, spares_per_region=spares_per_region)
    PopulationEngine(
        population=population,
        policy=threshold_scrub(units.HOUR, 4, threshold=1),
        stats=stats,
        streams=RngStreams(14),
        horizon=HORIZON,
        region_size=REGION_SIZE,
        rates=uniform_rates(NUM_LINES, NUM_LINES / (2 * units.HOUR)),
        retire_hard_limit=4,
        spare_pool=pool,
    ).simulate()
    return stats, pool.report()


def compute() -> list[list[object]]:
    rows = []
    for provision in PROVISIONS:
        stats, report = run(provision)
        rows.append(
            [
                provision,
                f"{provision / REGION_SIZE:.1%}",
                stats.retired,
                report.exhausted_regions,
                stats.uncorrectable,
            ]
        )
    return rows


def test_a12_spare_pool(benchmark, emit):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "a12_spare_pool",
        format_table(
            ["spares/region", "provision", "retired", "exhausted regions", "UE"],
            rows,
            title=(
                "A12: spare provisioning under accelerated wear "
                f"(endurance {ENDURANCE.mean_writes:g}, {units.format_seconds(HORIZON)})"
            ),
        ),
    )
    by_provision = {row[0]: row for row in rows}
    # Zero provision: no retirement, worst UE.  Generous: no exhaustion.
    assert by_provision[0][2] == 0
    assert by_provision[512][3] < REGIONS
    ues = [row[4] for row in rows]
    # More spares never hurt; the extremes differ substantially.
    assert ues[0] > 2 * ues[-1]
    assert sorted(ues, reverse=True) == ues