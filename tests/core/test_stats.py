"""Scrub statistics ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import ScrubStats
from repro.params import EnergySpec, LineSpec
from repro.pcm.energy import OperationCosts


@pytest.fixture
def stats() -> ScrubStats:
    costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 80, 8)
    return ScrubStats(costs=costs)


class TestRecording:
    def test_reads_count_as_visits(self, stats):
        stats.record_reads(100)
        assert stats.visits == 100
        assert stats.scrub_reads == 100
        assert stats.ledger.energy["scrub_read"] > 0

    def test_energy_accumulates_per_category(self, stats):
        stats.record_reads(10)
        stats.record_detects(10)
        stats.record_decodes(2)
        stats.record_scrub_writes(1)
        breakdown = stats.energy_breakdown()
        assert set(breakdown) == {"read", "detect", "decode", "write"}
        assert breakdown["write"] == pytest.approx(stats.costs.write_energy)
        assert stats.scrub_energy == pytest.approx(sum(breakdown.values()))

    def test_demand_writes_outside_scrub_energy(self, stats):
        stats.record_demand_writes(5)
        assert stats.scrub_energy == 0.0
        assert stats.demand_writes == 5
        assert stats.ledger.total_energy > 0

    def test_error_histogram(self, stats):
        stats.record_error_counts(np.array([0, 0, 1, 3, 3, 40]))
        assert stats.error_histogram[0] == 2
        assert stats.error_histogram[1] == 1
        assert stats.error_histogram[3] == 2
        assert stats.error_histogram[-1] == 1  # capped bucket
        assert stats.visits_with_errors == 4

    def test_empty_error_counts_noop(self, stats):
        stats.record_error_counts(np.array([], dtype=np.int64))
        assert stats.error_histogram.sum() == 0


class TestDerived:
    def test_busy_time(self, stats):
        stats.record_reads(10)
        stats.record_decodes(4)
        stats.record_scrub_writes(2)
        expected = (
            10 * stats.costs.read_latency
            + 4 * stats.costs.decode_latency
            + 2 * stats.costs.write_latency
        )
        assert stats.scrub_busy_time() == pytest.approx(expected)

    def test_summary_keys_stable(self, stats):
        summary = stats.summary()
        assert {
            "visits",
            "uncorrectable",
            "scrub_reads",
            "scrub_decodes",
            "scrub_writes",
            "scrub_energy_j",
            "detector_misses",
            "retired",
            "demand_writes",
        } == set(summary)
