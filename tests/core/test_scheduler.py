"""Scrub scheduler: ordering, staggering, and rescheduling."""

from __future__ import annotations

import pytest

from repro.core.scheduler import ScrubScheduler


class TestScheduling:
    def test_initial_visits_staggered_within_interval(self):
        scheduler = ScrubScheduler(4, [100.0] * 4)
        times = sorted(scheduler.pop().time for __ in range(4))
        assert times == [25.0, 50.0, 75.0, 100.0]

    def test_pops_in_time_order(self):
        scheduler = ScrubScheduler(3, [30.0, 10.0, 20.0])
        order = [scheduler.pop() for __ in range(3)]
        times = [visit.time for visit in order]
        assert times == sorted(times)

    def test_push_reschedules(self):
        scheduler = ScrubScheduler(2, [10.0, 10.0])
        first = scheduler.pop()
        scheduler.push(first.time + 10.0, first.region)
        assert len(scheduler) == 2

    def test_heterogeneous_intervals_interleave(self):
        scheduler = ScrubScheduler(2, [10.0, 100.0])
        # Simulate: region 0 re-arms at +10s each pop, region 1 at +100s.
        seen = []
        for __ in range(12):
            visit = scheduler.pop()
            seen.append(visit.region)
            interval = 10.0 if visit.region == 0 else 100.0
            scheduler.push(visit.time + interval, visit.region)
        assert seen.count(0) > 8  # fast region dominates

    def test_empty_scheduler_raises(self):
        scheduler = ScrubScheduler(1, [5.0])
        scheduler.pop()
        with pytest.raises(IndexError):
            scheduler.pop()
        with pytest.raises(IndexError):
            scheduler.peek_time()

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubScheduler(0, [])
        with pytest.raises(ValueError):
            ScrubScheduler(2, [1.0])
        with pytest.raises(ValueError):
            ScrubScheduler(1, [0.0])
        scheduler = ScrubScheduler(1, [1.0])
        with pytest.raises(ValueError):
            scheduler.push(2.0, region=5)
