"""Scrub scheduler: ordering, staggering, and rescheduling."""

from __future__ import annotations

import pytest

from repro.core.scheduler import ScrubScheduler


class TestScheduling:
    def test_initial_visits_staggered_within_interval(self):
        scheduler = ScrubScheduler(4, [100.0] * 4)
        times = sorted(scheduler.pop().time for __ in range(4))
        assert times == [25.0, 50.0, 75.0, 100.0]

    def test_pops_in_time_order(self):
        scheduler = ScrubScheduler(3, [30.0, 10.0, 20.0])
        order = [scheduler.pop() for __ in range(3)]
        times = [visit.time for visit in order]
        assert times == sorted(times)

    def test_push_reschedules(self):
        scheduler = ScrubScheduler(2, [10.0, 10.0])
        first = scheduler.pop()
        scheduler.push(first.time + 10.0, first.region)
        assert len(scheduler) == 2

    def test_heterogeneous_intervals_interleave(self):
        scheduler = ScrubScheduler(2, [10.0, 100.0])
        # Simulate: region 0 re-arms at +10s each pop, region 1 at +100s.
        seen = []
        for __ in range(12):
            visit = scheduler.pop()
            seen.append(visit.region)
            interval = 10.0 if visit.region == 0 else 100.0
            scheduler.push(visit.time + interval, visit.region)
        assert seen.count(0) > 8  # fast region dominates

    def test_empty_scheduler_raises(self):
        scheduler = ScrubScheduler(1, [5.0])
        scheduler.pop()
        with pytest.raises(IndexError):
            scheduler.pop()
        with pytest.raises(IndexError):
            scheduler.peek_time()

    def test_same_time_breaks_ties_by_region(self):
        # ScheduledVisit orders by (time, region); equal times must pop in
        # region order, deterministically, so runs never depend on heap
        # internals.
        scheduler = ScrubScheduler(3, [9.0, 6.0, 18.0])
        for region in (2, 0, 1):
            scheduler.pop()  # drain the staggered first visits
        for region in (2, 0, 1):
            scheduler.push(50.0, region)
        assert [scheduler.pop().region for __ in range(3)] == [0, 1, 2]

    def test_stagger_phase_layout(self):
        # Region r's first visit lands at interval * (r + 1) / num_regions:
        # evenly spread across one interval, last region exactly at it.
        scheduler = ScrubScheduler(4, [40.0, 80.0, 40.0, 80.0])
        visits = sorted(
            (scheduler.pop() for __ in range(4)), key=lambda v: v.region
        )
        assert [v.time for v in visits] == [10.0, 40.0, 30.0, 80.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubScheduler(0, [])
        with pytest.raises(ValueError):
            ScrubScheduler(2, [1.0])
        with pytest.raises(ValueError):
            ScrubScheduler(1, [0.0])
        scheduler = ScrubScheduler(1, [1.0])
        with pytest.raises(ValueError):
            scheduler.push(2.0, region=5)


class TestAdvanceTo:
    def test_jumps_region_past_skipped_visits(self):
        scheduler = ScrubScheduler(2, [10.0, 10.0])
        first = scheduler.pop()  # region 0 at t=5
        scheduler.advance_to(95.0, first.region)
        nxt = scheduler.pop()
        assert (nxt.time, nxt.region) == (10.0, 1)
        jumped = scheduler.pop()
        assert (jumped.time, jumped.region) == (95.0, 0)

    def test_now_tracks_pops(self):
        scheduler = ScrubScheduler(2, [10.0, 10.0])
        assert scheduler.now == 0.0
        visit = scheduler.pop()
        assert scheduler.now == visit.time

    def test_rejects_time_travel(self):
        scheduler = ScrubScheduler(1, [10.0])
        scheduler.pop()  # now = 10.0
        with pytest.raises(ValueError, match="before current time"):
            scheduler.advance_to(9.0, 0)
        scheduler.advance_to(10.0, 0)  # resuming at `now` itself is fine

    def test_rejects_bad_region(self):
        scheduler = ScrubScheduler(2, [10.0, 10.0])
        with pytest.raises(ValueError, match="out of range"):
            scheduler.advance_to(50.0, 2)
        with pytest.raises(ValueError, match="out of range"):
            scheduler.advance_to(50.0, -1)
