"""Policy base machinery: detector gating, classification, decisions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import ScrubPolicy, VisitDecision
from repro.core.threshold import ThresholdScrubPolicy
from repro.ecc.schemes import get_scheme


def make_policy(scheme_name="bch4", threshold=1, interval=100.0):
    return ThresholdScrubPolicy(get_scheme(scheme_name), interval, threshold)


class TestVisitDecision:
    def test_mask_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VisitDecision(
                decoded=np.ones(4, dtype=bool),
                written_back=np.ones(3, dtype=bool),
                uncorrectable=np.zeros(4, dtype=bool),
                missed=np.zeros(4, dtype=bool),
                next_interval=1.0,
            )

    def test_nonpositive_interval_rejected(self):
        masks = np.zeros(2, dtype=bool)
        with pytest.raises(ValueError):
            VisitDecision(masks, masks, masks, masks, next_interval=0.0)

    def test_writeback_and_ue_exclusive(self):
        flag = np.ones(1, dtype=bool)
        clear = np.zeros(1, dtype=bool)
        with pytest.raises(ValueError):
            VisitDecision(flag, flag, flag, clear, next_interval=1.0)


class TestDetectorGating:
    def test_no_detector_decodes_everything(self, rng):
        policy = make_policy("bch4")  # no detector
        counts = np.array([0, 0, 1, 3, 9])
        flagged, missed = policy._detect(counts, rng)
        assert flagged.all()
        assert not missed.any()

    def test_detector_skips_clean_lines(self, rng):
        policy = make_policy("bch4+crc")
        counts = np.array([0, 0, 1, 3, 0])
        flagged, missed = policy._detect(counts, rng)
        assert not flagged[[0, 1, 4]].any()
        # With miss probability 2^-16, five lines essentially never miss.
        assert flagged[[2, 3]].all()
        assert not missed.any()

    def test_detector_miss_probability_statistics(self):
        # Force a 1-bit "CRC": half the erroneous lines alias.
        scheme = get_scheme("bch4+crc")
        import dataclasses

        weak = dataclasses.replace(scheme, detector_bits=1)
        policy = ThresholdScrubPolicy(weak, 100.0, 1)
        rng = np.random.default_rng(0)
        counts = np.ones(20_000, dtype=np.int64)
        flagged, missed = policy._detect(counts, rng)
        assert missed.sum() == pytest.approx(10_000, rel=0.05)
        assert (flagged ^ missed).all()


class TestClassification:
    def test_split_by_strength(self):
        policy = make_policy("bch4")
        counts = np.array([0, 1, 4, 5, 12])
        decoded = np.ones(5, dtype=bool)
        correctable, uncorrectable = policy._classify(counts, decoded)
        assert correctable.tolist() == [True, True, True, False, False]
        assert uncorrectable.tolist() == [False, False, False, True, True]

    def test_undetected_lines_not_classified(self):
        policy = make_policy("bch4")
        counts = np.array([9, 9])
        decoded = np.array([True, False])
        correctable, uncorrectable = policy._classify(counts, decoded)
        assert uncorrectable.tolist() == [True, False]
        assert correctable.tolist() == [False, False]


class TestBaseValidation:
    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            make_policy(interval=0.0)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            ScrubPolicy(get_scheme("bch4"), 1.0)
