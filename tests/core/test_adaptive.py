"""Adaptive-interval controller and policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import adaptive_scrub, combined_scrub
from repro.core.adaptive import AdaptiveIntervalController, AdaptiveScrubPolicy
from repro.ecc.schemes import get_scheme


def make_controller(base=100.0, lo=25.0, hi=1600.0) -> AdaptiveIntervalController:
    return AdaptiveIntervalController(base, lo, hi)


class TestController:
    def test_defaults_to_base(self):
        controller = make_controller()
        assert controller.interval(0) == 100.0
        assert controller.interval(99) == 100.0

    def test_panic_halves_until_floor(self):
        controller = make_controller()
        assert controller.panic(0) == 50.0
        assert controller.panic(0) == 25.0
        assert controller.panic(0) == 25.0  # clamped

    def test_relax_grows_until_ceiling(self):
        controller = make_controller(base=1000.0, lo=10.0, hi=1500.0)
        assert controller.relax(0) == 1250.0
        assert controller.relax(0) == 1500.0  # clamped at ceiling
        assert controller.relax(0) == 1500.0

    def test_regions_independent(self):
        controller = make_controller()
        controller.panic(0)
        assert controller.interval(1) == 100.0

    def test_hold_is_identity(self):
        controller = make_controller()
        controller.panic(2)
        assert controller.hold(2) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveIntervalController(100.0, 200.0, 400.0)
        with pytest.raises(ValueError):
            AdaptiveIntervalController(100.0, 10.0, 50.0)
        with pytest.raises(ValueError):
            AdaptiveIntervalController(100.0, 10.0, 200.0, panic_divisor=1.0)
        with pytest.raises(ValueError):
            AdaptiveIntervalController(100.0, 10.0, 200.0, relax_factor=0.9)


class TestAdaptivePolicy:
    def make_policy(self, threshold=2, panic=None, relax=None):
        return AdaptiveScrubPolicy(
            get_scheme("bch4+crc"),
            make_controller(),
            threshold=threshold,
            panic_level=panic,
            relax_level=relax,
        )

    def test_panic_on_line_at_limit(self, rng):
        policy = self.make_policy()
        counts = np.array([0, 1, 4, 0])  # one line at t=4
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.next_interval == 50.0

    def test_panic_on_uncorrectable(self, rng):
        policy = self.make_policy()
        counts = np.array([0, 9, 0])
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.uncorrectable.any()
        assert decision.next_interval == 50.0

    def test_relax_when_clean(self, rng):
        policy = self.make_policy()
        counts = np.array([0, 1, 0, 0])  # worst below threshold 2
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.next_interval == 125.0

    def test_hold_in_routine_band(self, rng):
        policy = self.make_policy()
        counts = np.array([0, 3, 2])  # worst 3: >= threshold, < panic 4
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.next_interval == 100.0

    def test_initial_interval_tracks_controller(self):
        policy = self.make_policy()
        policy.controller.panic(5)
        assert policy.initial_interval(5) == 50.0
        assert policy.initial_interval(6) == 100.0

    def test_panic_must_exceed_threshold(self):
        with pytest.raises(ValueError):
            self.make_policy(threshold=4)  # default panic = t = 4

    def test_relax_must_be_below_panic(self):
        with pytest.raises(ValueError):
            self.make_policy(panic=2, relax=2)


class TestFactories:
    def test_adaptive_defaults(self):
        policy = adaptive_scrub(3600.0, strength=4)
        assert policy.threshold == 2
        assert policy.panic_level == 4
        assert policy.relax_level == 1
        assert policy.controller.min_interval == pytest.approx(900.0)
        assert policy.controller.max_interval == pytest.approx(57600.0)

    def test_combined_defaults(self):
        policy = combined_scrub(3600.0)
        assert policy.scheme.name == "bch8+crc"
        assert policy.threshold == 6
        assert policy.panic_level == 8

    def test_combined_custom_strength(self):
        policy = combined_scrub(3600.0, strength=6, threshold=3)
        assert policy.scheme.t == 6
        assert policy.threshold == 3
