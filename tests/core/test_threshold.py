"""Threshold write-back policy and the basic/strong/light configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import basic_scrub, light_scrub, strong_ecc_scrub, threshold_scrub
from repro.core.threshold import ThresholdScrubPolicy
from repro.ecc.schemes import get_scheme


class TestThresholdSemantics:
    def test_writes_back_only_at_threshold(self, rng):
        policy = ThresholdScrubPolicy(get_scheme("bch4"), 100.0, threshold=3)
        counts = np.array([0, 1, 2, 3, 4, 5])
        decision = policy.visit(0.0, 0, counts, rng)
        # Written back: correctable (k <= 4) and k >= 3.
        assert decision.written_back.tolist() == [
            False, False, False, True, True, False,
        ]
        assert decision.uncorrectable.tolist() == [
            False, False, False, False, False, True,
        ]

    def test_threshold_one_writes_any_error(self, rng):
        policy = ThresholdScrubPolicy(get_scheme("bch2"), 100.0, threshold=1)
        counts = np.array([0, 1, 2])
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.written_back.tolist() == [False, True, True]

    def test_threshold_bounds_enforced(self):
        scheme = get_scheme("bch4")
        with pytest.raises(ValueError):
            ThresholdScrubPolicy(scheme, 100.0, threshold=0)
        with pytest.raises(ValueError):
            ThresholdScrubPolicy(scheme, 100.0, threshold=5)

    def test_static_interval_returned(self, rng):
        policy = ThresholdScrubPolicy(get_scheme("bch4"), 42.0, threshold=2)
        decision = policy.visit(0.0, 3, np.zeros(4, dtype=np.int64), rng)
        assert decision.next_interval == 42.0
        assert policy.initial_interval(7) == 42.0


class TestFactories:
    def test_basic_is_secded_writeback_all(self):
        policy = basic_scrub(3600.0)
        assert policy.scheme.name == "secded"
        assert policy.scheme.t == 1
        assert policy.threshold == 1
        assert not policy.scheme.has_detector
        assert policy.name == "basic(secded)"

    def test_strong_keeps_algorithm_changes_code(self):
        policy = strong_ecc_scrub(3600.0, strength=8)
        assert policy.scheme.t == 8
        assert policy.threshold == 1
        assert not policy.scheme.has_detector

    def test_light_adds_detector(self):
        policy = light_scrub(3600.0, strength=4)
        assert policy.scheme.has_detector
        assert policy.threshold == 1

    def test_threshold_factory_default_is_t_minus_one(self):
        policy = threshold_scrub(3600.0, strength=4)
        assert policy.threshold == 3
        assert policy.scheme.has_detector

    def test_threshold_factory_explicit(self):
        policy = threshold_scrub(3600.0, strength=8, threshold=5)
        assert policy.threshold == 5


class TestUncorrectableHandling:
    def test_ue_lines_never_written_back(self, rng):
        policy = ThresholdScrubPolicy(get_scheme("bch2"), 10.0, threshold=2)
        counts = np.array([7, 2])
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.uncorrectable.tolist() == [True, False]
        assert decision.written_back.tolist() == [False, True]

    def test_secded_two_errors_uncorrectable(self, rng):
        policy = basic_scrub(10.0)
        counts = np.array([0, 1, 2])
        decision = policy.visit(0.0, 0, counts, rng)
        assert decision.uncorrectable.tolist() == [False, False, True]
        assert decision.written_back.tolist() == [False, True, False]
