"""Bandwidth-budgeted scrub: interval solving and reliability reporting."""

from __future__ import annotations

import pytest

from repro.core.budgeted import (
    budgeted_scrub,
    interval_for_budget,
    reliability_at_budget,
)
from repro.ecc.schemes import scheme_for_strength
from repro.params import CellSpec, EnergySpec, LineSpec
from repro.pcm.energy import OperationCosts
from repro.sim.analytic import AnalyticModel, CrossingDistribution

LINES_PER_BANK = 1 << 20  # 64 MiB bank


@pytest.fixture(scope="module")
def model() -> AnalyticModel:
    return AnalyticModel(CrossingDistribution(CellSpec()), 256)


def make_costs(strength: int) -> OperationCosts:
    scheme = scheme_for_strength(strength, with_detector=True)
    return OperationCosts.for_line(
        EnergySpec(), LineSpec(), scheme.total_overhead_bits, scheme.t
    )


class TestIntervalSolving:
    def test_budget_is_respected(self, model):
        scheme = scheme_for_strength(4, with_detector=True)
        costs = make_costs(4)
        budget = 1e-3
        interval = interval_for_budget(
            model, scheme, costs, LINES_PER_BANK, budget, threshold=3
        )
        # Recompute the occupancy at the solution: must fit the budget.
        pmf = model.line_error_count_pmf(interval, scheme.t + 1)
        p_decode = 1.0 - float(pmf[0])
        p_write = 1.0 - float(pmf[:3].sum())
        occupancy = LINES_PER_BANK * (
            costs.read_latency
            + p_decode * costs.decode_latency
            + p_write * costs.write_latency
        ) / interval
        assert occupancy <= budget * 1.0001

    def test_bigger_budget_buys_shorter_interval(self, model):
        scheme = scheme_for_strength(4, with_detector=True)
        costs = make_costs(4)
        tight = interval_for_budget(model, scheme, costs, LINES_PER_BANK, 1e-4)
        loose = interval_for_budget(model, scheme, costs, LINES_PER_BANK, 1e-2)
        assert loose < tight

    def test_impossible_budget_raises(self, model):
        scheme = scheme_for_strength(4, with_detector=True)
        costs = make_costs(4)
        with pytest.raises(ValueError, match="cannot be met"):
            interval_for_budget(
                model, scheme, costs, LINES_PER_BANK, 1e-12,
                max_interval=3600.0,
            )

    def test_validation(self, model):
        scheme = scheme_for_strength(4, with_detector=True)
        costs = make_costs(4)
        with pytest.raises(ValueError):
            interval_for_budget(model, scheme, costs, 0, 1e-3)
        with pytest.raises(ValueError):
            interval_for_budget(model, scheme, costs, 10, 1.5)
        with pytest.raises(ValueError):
            interval_for_budget(
                model, scheme, costs, 10, 1e-3, min_interval=10.0,
                max_interval=5.0,
            )


class TestPolicyFactory:
    def test_policy_is_runnable_configuration(self, model):
        policy = budgeted_scrub(model, LINES_PER_BANK, budget_fraction=1e-3)
        assert policy.scheme.has_detector
        assert policy.threshold == 3
        assert policy.interval > 0
        assert "budgeted" in policy.name

    def test_threshold_override(self, model):
        policy = budgeted_scrub(
            model, LINES_PER_BANK, budget_fraction=1e-3, strength=8, threshold=5
        )
        assert policy.threshold == 5
        assert policy.scheme.t == 8


class TestProvisioning:
    def test_stronger_code_buys_reliability_at_equal_budget(self, model):
        # A tight budget forces multi-hour intervals, where the code
        # strength is the whole game: t=1 fails with high probability,
        # t=8 remains orders of magnitude safer.
        budget = 2e-5
        __, weak_failure = reliability_at_budget(
            model, LINES_PER_BANK, budget, strength=1
        )
        __, strong_failure = reliability_at_budget(
            model, LINES_PER_BANK, budget, strength=8
        )
        assert weak_failure > 1e-4
        assert strong_failure < weak_failure / 100

    def test_interval_and_failure_consistent(self, model):
        interval, failure = reliability_at_budget(
            model, LINES_PER_BANK, 1e-3, strength=4
        )
        assert failure == pytest.approx(
            model.line_failure_probability(interval, 4)
        )
