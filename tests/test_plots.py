"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis.plots import SERIES_GLYPHS, ascii_chart


class TestAsciiChart:
    def test_basic_structure(self):
        text = ascii_chart(
            ["1h", "1d", "1wk"],
            {"basic": [1e-3, 1e-2, 0.3], "strong": [1e-9, 1e-6, 1e-3]},
            height=8,
            title="UE probability",
        )
        lines = text.splitlines()
        assert lines[0] == "UE probability"
        assert len(lines) == 1 + 8 + 2 + 1  # title + grid + axis/labels + legend
        assert "o=basic" in lines[-1]
        assert "x=strong" in lines[-1]

    def test_glyphs_placed(self):
        text = ascii_chart(["a", "b"], {"s": [1.0, 100.0]}, height=5)
        # Higher value sits on a higher row than the lower one.
        rows_with_glyph = [
            i for i, line in enumerate(text.splitlines()) if "o" in line and "|" in line
        ]
        assert len(rows_with_glyph) == 2

    def test_monotone_series_monotone_rows(self):
        values = [1e-6, 1e-4, 1e-2, 1.0]
        text = ascii_chart([str(i) for i in range(4)], {"s": values}, height=9)
        grid_lines = [line for line in text.splitlines() if "|" in line]
        positions = {}
        for row, line in enumerate(grid_lines):
            body = line.split("|", 1)[1]
            for col, char in enumerate(body):
                if char == "o":
                    positions[col] = row
        cols = sorted(positions)
        rows = [positions[c] for c in cols]
        assert rows == sorted(rows, reverse=True)

    def test_linear_mode(self):
        text = ascii_chart(["a", "b"], {"s": [0.0, 10.0]}, log_y=False, height=4)
        assert "|" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_chart(["a", "b"], {"s": [5.0, 5.0]})
        assert "o" in text

    def test_zeros_sit_on_floor(self):
        text = ascii_chart(["a", "b"], {"s": [0.0, 1.0]}, height=5)
        assert "1e-12" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart(["a"], {})
        with pytest.raises(ValueError):
            ascii_chart(["a"], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart(["a"], {"s": [1.0]}, height=1)
        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        too_many = {f"s{i}": [1.0] for i in range(len(SERIES_GLYPHS) + 1)}
        with pytest.raises(ValueError):
            ascii_chart(["a"], too_many)

    def test_error_messages_name_the_problem(self):
        # The messages are the API for a CLI user staring at a traceback.
        with pytest.raises(ValueError, match="series must be non-empty"):
            ascii_chart(["a"], {})
        with pytest.raises(ValueError, match="height must be >= 3"):
            ascii_chart(["a"], {"s": [1.0]}, height=2)
        with pytest.raises(ValueError, match="'short'"):
            ascii_chart(["a", "b"], {"short": [1.0]})
        with pytest.raises(ValueError, match="at least one x position"):
            ascii_chart([], {"s": []})

    def test_mismatch_checked_per_series(self):
        # One good series does not excuse a bad one.
        with pytest.raises(ValueError, match="'bad'"):
            ascii_chart(["a", "b"], {"good": [1.0, 2.0], "bad": [1.0]})

    def test_single_point_chart(self):
        text = ascii_chart(["only"], {"s": [3.0]}, height=3)
        assert "o" in text
        assert "only" in text

    def test_max_series_supported_exactly(self):
        exact = {f"s{i}": [1.0] for i in range(len(SERIES_GLYPHS))}
        text = ascii_chart(["a"], exact)
        for glyph in SERIES_GLYPHS:
            assert f"{glyph}=" in text
