"""The perf-regression gate's normalization and tolerance logic."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GATE_PATH = Path(__file__).parent.parent / "benchmarks" / "perf_gate.py"
spec = importlib.util.spec_from_file_location("perf_gate", GATE_PATH)
perf_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_gate)


def summary(calibration, wall):
    return {
        "_calibration_seconds": calibration,
        "p02_fast_forward": {"fast_forward_wall_seconds": wall, "jumps": 3},
    }


class TestCompare:
    def test_identical_run_passes(self):
        base = summary(0.25, 2.0)
        regressions, __ = perf_gate.compare(base, base, tolerance=4.0)
        assert regressions == []

    def test_slower_machine_is_normalized_away(self):
        # 3x slower calibration loop excuses 3x slower experiments.
        regressions, __ = perf_gate.compare(
            summary(0.75, 6.0), summary(0.25, 2.0), tolerance=4.0
        )
        assert regressions == []

    def test_real_regression_trips(self):
        # Same machine speed, 10x slower experiment: beyond any tolerance.
        regressions, __ = perf_gate.compare(
            summary(0.25, 20.0), summary(0.25, 2.0), tolerance=4.0
        )
        assert len(regressions) == 1
        assert "p02_fast_forward.fast_forward_wall_seconds" in regressions[0]

    def test_missing_experiment_is_a_note_not_a_failure(self):
        current = {"_calibration_seconds": 0.25}
        regressions, notes = perf_gate.compare(
            current, summary(0.25, 2.0), tolerance=4.0
        )
        assert regressions == []
        assert any("not in this run" in note for note in notes)

    def test_sub_floor_timings_never_gate(self):
        # Millisecond-scale measurements are scheduler noise; a huge ratio
        # on one must not trip the gate.
        regressions, notes = perf_gate.compare(
            summary(0.25, 0.09), summary(0.25, 0.003), tolerance=4.0
        )
        assert regressions == []
        assert any("floor, not gated" in note for note in notes)

    def test_missing_calibration_skips_comparison(self):
        regressions, notes = perf_gate.compare(
            {"p02_fast_forward": {"fast_forward_wall_seconds": 99.0}},
            summary(0.25, 2.0),
            tolerance=4.0,
        )
        assert regressions == []
        assert any("cannot normalize" in note for note in notes)


class TestMain:
    def write(self, path, blob):
        path.write_text(json.dumps(blob))

    def test_missing_baseline_exits_zero(self, tmp_path, capsys):
        s = tmp_path / "summary.json"
        self.write(s, summary(0.25, 2.0))
        code = perf_gate.main(
            ["--summary", str(s), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 0
        assert "nothing to compare" in capsys.readouterr().out

    @pytest.mark.parametrize("mode,expected", [("warn", 0), ("block", 1)])
    def test_regression_exit_codes(self, tmp_path, mode, expected):
        s, b = tmp_path / "summary.json", tmp_path / "baseline.json"
        self.write(s, summary(0.25, 20.0))
        self.write(b, summary(0.25, 2.0))
        code = perf_gate.main(
            ["--summary", str(s), "--baseline", str(b), "--mode", mode]
        )
        assert code == expected

    def test_clean_run_blocks_nothing(self, tmp_path):
        s, b = tmp_path / "summary.json", tmp_path / "baseline.json"
        self.write(s, summary(0.3, 2.2))
        self.write(b, summary(0.25, 2.0))
        code = perf_gate.main(
            ["--summary", str(s), "--baseline", str(b), "--mode", "block"]
        )
        assert code == 0
