"""Run the library's inline doctests.

Public-API docstrings carry usage examples; this keeps them honest.
Modules whose examples are stochastic or expensive are exercised by their
own test files instead.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

DOCTESTED_MODULES = [
    "repro.units",
    "repro.params",
    "repro.pcm.levels",
    "repro.pcm.drift",
    "repro.pcm.mlc",
    "repro.pcm.thermal",
    "repro.ecc.crc",
    "repro.ecc.schemes",
    "repro.ecc.hamming",
    "repro.core.basic",
    "repro.core.strong",
    "repro.core.light",
    "repro.core.combined",
    "repro.core.scheduler",
    "repro.analysis.tables",
    "repro.analysis.plots",
    "repro.analysis.export",
    "repro.analysis.stats",
    "repro.sim.lifetime",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
