"""Fleet aggregation: FIT math, invariant cross-checks, survival curves."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.analysis.stats import binomial_interval
from repro.fleet import FleetInvariantError, FleetSpec, Lot, aggregate
from repro.fleet.report import FIT_HOURS, DeviceRecord
from repro.sim.config import SimulationConfig


def make_spec(devices=4, lots=None) -> FleetSpec:
    return FleetSpec(
        name="agg-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={"interval": 4 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=SimulationConfig(
            num_lines=256, region_size=256, horizon=units.DAY, seed=1, endurance=None
        ),
        lots=lots if lots is not None else (Lot(name="default"),),
        capacity_gib_per_device=16.0,
    )


def record(index, lot="default", ue=0, energy=0.5, writes=10) -> DeviceRecord:
    return DeviceRecord(
        index=index,
        lot=lot,
        seed=1 + index,
        temperature_k=300.0,
        nu_mu_scale=1.0,
        nu_sigma_scale=1.0,
        endurance_mean=None,
        summary={
            "uncorrectable": float(ue),
            "scrub_writes": float(writes),
            "scrub_energy_j": energy,
            "visits": 100.0,
        },
    )


class TestAggregate:
    def test_fit_and_totals(self):
        spec = make_spec(devices=4)
        records = [record(i, ue=i) for i in range(4)]
        report = aggregate(spec, records)
        assert report.uncorrectable == 6
        assert report.counts["scrub_writes"] == 40
        assert report.scrub_energy_j == pytest.approx(2.0)
        assert report.device_hours == pytest.approx(4 * 24.0)
        assert report.fit == pytest.approx(6 / (4 * 24.0) * FIT_HOURS)
        assert report.fit_low < report.fit < report.fit_high
        # Linear capacity scale-up.
        scale = spec.capacity_scale
        assert report.fit_scaled == pytest.approx(report.fit * scale)

    def test_availability_and_survival(self):
        spec = make_spec(devices=4)
        report = aggregate(spec, [record(i, ue=(0 if i < 3 else 5)) for i in range(4)])
        assert report.availability == pytest.approx(0.75)
        low, high = binomial_interval(3, 4)
        assert (report.availability_low, report.availability_high) == (low, high)
        assert dict(report.survival) == {0: 1.0, 5: 0.25}

    def test_order_independent(self):
        spec = make_spec(devices=4)
        records = [record(i, ue=i) for i in range(4)]
        forward = aggregate(spec, records)
        backward = aggregate(spec, list(reversed(records)))
        assert forward.to_dict() == backward.to_dict()

    def test_lot_partition(self):
        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        records = [record(i, lot=("a" if i < 2 else "b"), ue=i) for i in range(4)]
        report = aggregate(spec, records)
        assert [lot.name for lot in report.lots] == ["a", "b"]
        assert [lot.counts["uncorrectable"] for lot in report.lots] == [1, 5]
        assert sum(lot.counts["uncorrectable"] for lot in report.lots) == (
            report.uncorrectable
        )

    def test_energy_per_gib(self):
        spec = make_spec(devices=2)
        report = aggregate(spec, [record(0, energy=1.0), record(1, energy=3.0)])
        total_gib = 2 * spec.simulated_gib_per_device
        assert report.energy_per_gib_j == pytest.approx(4.0 / total_gib)


class TestInvariants:
    def test_missing_record_raises(self):
        spec = make_spec(devices=4)
        with pytest.raises(FleetInvariantError, match="expected device records"):
            aggregate(spec, [record(i) for i in (0, 1, 3)])

    def test_duplicate_index_raises(self):
        spec = make_spec(devices=2)
        with pytest.raises(FleetInvariantError):
            aggregate(spec, [record(0), record(0)])

    def test_unknown_lot_raises(self):
        spec = make_spec(devices=2)
        with pytest.raises(FleetInvariantError):
            aggregate(spec, [record(0), record(1, lot="phantom")])

    def test_lot_apportionment_mismatch_raises(self):
        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        records = [record(i, lot="a") for i in range(4)]  # all in one lot
        with pytest.raises(FleetInvariantError, match="apportions"):
            aggregate(spec, records)


class TestDeviceRecord:
    def test_round_trip(self):
        original = record(3, ue=2, energy=0.123456789)
        clone = DeviceRecord.from_dict(original.to_dict())
        assert clone == original

    def test_normalized_is_value_identity(self):
        original = record(0, energy=1 / 3)
        assert original.normalized() == original

    def test_uncorrectable_property(self):
        assert record(0, ue=7).uncorrectable == 7


class TestBinomialInterval:
    def test_midpoint(self):
        low, high = binomial_interval(5, 10)
        assert 0.0 < low < 0.5 < high < 1.0

    def test_extremes_stay_in_unit_interval(self):
        low, high = binomial_interval(0, 10)
        assert low == 0.0 and 0.0 < high < 0.5
        low, high = binomial_interval(10, 10)
        assert 0.5 < low < 1.0 and high == pytest.approx(1.0)

    def test_wider_at_smaller_n(self):
        narrow = binomial_interval(50, 100)
        wide = binomial_interval(5, 10)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_interval(-1, 10)
        with pytest.raises(ValueError):
            binomial_interval(11, 10)
        with pytest.raises(ValueError):
            binomial_interval(0, 0)

    def test_interval_is_finite(self):
        low, high = binomial_interval(3, 7, confidence=0.99)
        assert math.isfinite(low) and math.isfinite(high)


class TestMergeRecords:
    """Shard-merge algebra: union of records, associative and exact."""

    def _records(self, spec):
        return [record(i, ue=i % 3, energy=0.1 + 0.01 * i) for i in range(spec.devices)]

    def test_any_bracketing_aggregates_identically(self):
        from repro.fleet import merge_records

        spec = make_spec(devices=9)
        records = self._records(spec)
        a, b, c = records[:3], records[3:5], records[5:]
        left = merge_records(merge_records(a, b), c)
        right = merge_records(a, merge_records(b, c))
        assert aggregate(spec, left.values()).to_dict() == \
            aggregate(spec, right.values()).to_dict()

    def test_random_partitions_equal_unsharded_report(self):
        import numpy as np

        from repro.fleet import merge_records

        spec = make_spec(devices=12)
        records = self._records(spec)
        unsharded = aggregate(spec, records).to_json()
        rng = np.random.default_rng(42)
        for _ in range(10):
            order = rng.permutation(spec.devices)
            cuts = sorted(rng.choice(range(1, spec.devices), size=3, replace=False))
            parts = [
                [records[i] for i in order[lo:hi]]
                for lo, hi in zip([0, *cuts], [*cuts, spec.devices])
            ]
            rng.shuffle(parts)
            merged = merge_records(*parts)
            assert aggregate(spec, merged.values()).to_json() == unsharded

    def test_identical_duplicates_tolerated(self):
        from repro.fleet import merge_records

        first = record(0, ue=2)
        merged = merge_records([first], [record(0, ue=2)])
        assert merged[0] == first

    def test_conflicting_duplicates_raise(self):
        from repro.fleet import merge_records

        with pytest.raises(FleetInvariantError, match="conflicting"):
            merge_records([record(0, ue=1)], [record(0, ue=2)])


class TestAggregatePartial:
    def test_complete_set_is_byte_identical_to_aggregate(self):
        from repro.fleet import aggregate_partial

        spec = make_spec(devices=5)
        records = [record(i, ue=i) for i in range(5)]
        assert aggregate_partial(spec, records).to_json() == \
            aggregate(spec, records).to_json()

    def test_partial_uses_completed_denominators(self):
        from repro.fleet import aggregate_partial

        spec = make_spec(devices=10)
        records = [record(i, ue=(1 if i == 0 else 0)) for i in range(4)]
        report = aggregate_partial(spec, records)
        assert report.devices == 4
        assert report.device_hours == pytest.approx(4 * 24.0)
        assert report.availability == pytest.approx(3 / 4)
        assert report.fit == pytest.approx(1 / (4 * 24.0) * FIT_HOURS)

    def test_monotone_growth_never_shrinks(self):
        from repro.fleet import aggregate_partial

        spec = make_spec(devices=6)
        records = [record(i, ue=1) for i in range(6)]
        seen = 0
        for upto in range(1, 7):
            report = aggregate_partial(spec, records[:upto])
            assert report.devices >= seen
            seen = report.devices

    def test_relaxes_lot_apportionment(self):
        from repro.fleet import aggregate_partial

        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        # Only lot-a devices done so far: full aggregate would reject this.
        lot_of = {i: spec.device_spec(i).lot for i in range(4)}
        a_indices = [i for i, lot in lot_of.items() if lot == "a"]
        records = [record(i, lot="a") for i in a_indices[:1]]
        report = aggregate_partial(spec, records)
        assert report.devices == 1

    def test_empty_rejected(self):
        from repro.fleet import aggregate_partial

        with pytest.raises(FleetInvariantError, match="at least one"):
            aggregate_partial(make_spec(devices=3), [])

    def test_duplicate_and_out_of_range_rejected(self):
        from repro.fleet import aggregate_partial

        spec = make_spec(devices=3)
        with pytest.raises(FleetInvariantError, match="duplicate"):
            aggregate_partial(spec, [record(1), record(1)])
        with pytest.raises(FleetInvariantError, match="outside"):
            aggregate_partial(spec, [record(7)])


class TestPerGib:
    def test_zero_capacity_zero_total_reads_as_zero(self):
        from repro.fleet.report import per_gib

        assert per_gib(0.0, 0.0, "test metric") == 0.0

    def test_zero_capacity_nonzero_total_raises_invariant_error(self):
        # Regression: this used to surface as a bare ZeroDivisionError
        # deep inside report aggregation.
        from repro.fleet.report import per_gib

        with pytest.raises(FleetInvariantError, match="test metric"):
            per_gib(1.5, 0.0, "test metric")

    def test_positive_capacity_divides(self):
        from repro.fleet.report import per_gib

        assert per_gib(6.0, 3.0, "test metric") == pytest.approx(2.0)

    def test_lot_summaries_carry_energy_per_gib(self):
        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        records = [
            record(i, lot=("a" if i < 2 else "b"), energy=float(i))
            for i in range(4)
        ]
        report = aggregate(spec, records)
        for lot, expected_energy in zip(report.lots, (1.0, 5.0)):
            gib = lot.devices * spec.simulated_gib_per_device
            assert lot.energy_per_gib_j == pytest.approx(expected_energy / gib)
            assert lot.to_dict()["energy_per_gib_j"] == lot.energy_per_gib_j

    def test_empty_lot_in_partial_aggregate_reports_zero_per_gib(self):
        # A mid-fill campaign can have a lot with no completed devices
        # yet; its per-GiB energy is legitimately zero, not an error.
        from repro.fleet import aggregate_partial

        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        a_only = [record(i, lot="a", energy=1.0) for i in range(2)]
        report = aggregate_partial(spec, a_only)
        by_name = {lot.name: lot for lot in report.lots}
        assert by_name["b"].devices == 0
        assert by_name["b"].energy_per_gib_j == 0.0
