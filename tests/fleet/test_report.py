"""Fleet aggregation: FIT math, invariant cross-checks, survival curves."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.analysis.stats import binomial_interval
from repro.fleet import FleetInvariantError, FleetSpec, Lot, aggregate
from repro.fleet.report import FIT_HOURS, DeviceRecord
from repro.sim.config import SimulationConfig


def make_spec(devices=4, lots=None) -> FleetSpec:
    return FleetSpec(
        name="agg-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={"interval": 4 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=SimulationConfig(
            num_lines=256, region_size=256, horizon=units.DAY, seed=1, endurance=None
        ),
        lots=lots if lots is not None else (Lot(name="default"),),
        capacity_gib_per_device=16.0,
    )


def record(index, lot="default", ue=0, energy=0.5, writes=10) -> DeviceRecord:
    return DeviceRecord(
        index=index,
        lot=lot,
        seed=1 + index,
        temperature_k=300.0,
        nu_mu_scale=1.0,
        nu_sigma_scale=1.0,
        endurance_mean=None,
        summary={
            "uncorrectable": float(ue),
            "scrub_writes": float(writes),
            "scrub_energy_j": energy,
            "visits": 100.0,
        },
    )


class TestAggregate:
    def test_fit_and_totals(self):
        spec = make_spec(devices=4)
        records = [record(i, ue=i) for i in range(4)]
        report = aggregate(spec, records)
        assert report.uncorrectable == 6
        assert report.counts["scrub_writes"] == 40
        assert report.scrub_energy_j == pytest.approx(2.0)
        assert report.device_hours == pytest.approx(4 * 24.0)
        assert report.fit == pytest.approx(6 / (4 * 24.0) * FIT_HOURS)
        assert report.fit_low < report.fit < report.fit_high
        # Linear capacity scale-up.
        scale = spec.capacity_scale
        assert report.fit_scaled == pytest.approx(report.fit * scale)

    def test_availability_and_survival(self):
        spec = make_spec(devices=4)
        report = aggregate(spec, [record(i, ue=(0 if i < 3 else 5)) for i in range(4)])
        assert report.availability == pytest.approx(0.75)
        low, high = binomial_interval(3, 4)
        assert (report.availability_low, report.availability_high) == (low, high)
        assert dict(report.survival) == {0: 1.0, 5: 0.25}

    def test_order_independent(self):
        spec = make_spec(devices=4)
        records = [record(i, ue=i) for i in range(4)]
        forward = aggregate(spec, records)
        backward = aggregate(spec, list(reversed(records)))
        assert forward.to_dict() == backward.to_dict()

    def test_lot_partition(self):
        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        records = [record(i, lot=("a" if i < 2 else "b"), ue=i) for i in range(4)]
        report = aggregate(spec, records)
        assert [lot.name for lot in report.lots] == ["a", "b"]
        assert [lot.counts["uncorrectable"] for lot in report.lots] == [1, 5]
        assert sum(lot.counts["uncorrectable"] for lot in report.lots) == (
            report.uncorrectable
        )

    def test_energy_per_gib(self):
        spec = make_spec(devices=2)
        report = aggregate(spec, [record(0, energy=1.0), record(1, energy=3.0)])
        total_gib = 2 * spec.simulated_gib_per_device
        assert report.energy_per_gib_j == pytest.approx(4.0 / total_gib)


class TestInvariants:
    def test_missing_record_raises(self):
        spec = make_spec(devices=4)
        with pytest.raises(FleetInvariantError, match="expected device records"):
            aggregate(spec, [record(i) for i in (0, 1, 3)])

    def test_duplicate_index_raises(self):
        spec = make_spec(devices=2)
        with pytest.raises(FleetInvariantError):
            aggregate(spec, [record(0), record(0)])

    def test_unknown_lot_raises(self):
        spec = make_spec(devices=2)
        with pytest.raises(FleetInvariantError):
            aggregate(spec, [record(0), record(1, lot="phantom")])

    def test_lot_apportionment_mismatch_raises(self):
        spec = make_spec(
            devices=4, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        records = [record(i, lot="a") for i in range(4)]  # all in one lot
        with pytest.raises(FleetInvariantError, match="apportions"):
            aggregate(spec, records)


class TestDeviceRecord:
    def test_round_trip(self):
        original = record(3, ue=2, energy=0.123456789)
        clone = DeviceRecord.from_dict(original.to_dict())
        assert clone == original

    def test_normalized_is_value_identity(self):
        original = record(0, energy=1 / 3)
        assert original.normalized() == original

    def test_uncorrectable_property(self):
        assert record(0, ue=7).uncorrectable == 7


class TestBinomialInterval:
    def test_midpoint(self):
        low, high = binomial_interval(5, 10)
        assert 0.0 < low < 0.5 < high < 1.0

    def test_extremes_stay_in_unit_interval(self):
        low, high = binomial_interval(0, 10)
        assert low == 0.0 and 0.0 < high < 0.5
        low, high = binomial_interval(10, 10)
        assert 0.5 < low < 1.0 and high == pytest.approx(1.0)

    def test_wider_at_smaller_n(self):
        narrow = binomial_interval(50, 100)
        wide = binomial_interval(5, 10)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_interval(-1, 10)
        with pytest.raises(ValueError):
            binomial_interval(11, 10)
        with pytest.raises(ValueError):
            binomial_interval(0, 0)

    def test_interval_is_finite(self):
        low, high = binomial_interval(3, 7, confidence=0.99)
        assert math.isfinite(low) and math.isfinite(high)
